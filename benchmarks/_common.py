"""Shared infrastructure for the per-figure benchmark modules.

Every benchmark regenerates one table or figure of the paper and emits
it twice: the paper-style text table (printed and written to
``benchmarks/results/<name>.txt``) and a machine-readable JSON artifact
(``benchmarks/results/<name>.json``) following the versioned schema in
:mod:`repro.report.schema` — the form ``repro verify`` diffs against
the golden store.

Simulation fidelity knobs are environment-tunable and validated by
:class:`repro.report.config.BenchConfig` (a malformed value fails with
a message naming the variable):

* ``REPRO_BENCH_SCALE`` — threshold/intensity scale divisor (default 24;
  lower = closer to full scale but slower);
* ``REPRO_BENCH_INTERVALS`` — refresh intervals per run (default 2);
* ``REPRO_BENCH_BANKS`` — banks simulated per run (default 1);
* ``REPRO_BENCH_ENGINE`` — ``batched`` (default) or ``scalar``;
* ``REPRO_BENCH_WORKERS`` — process-pool width for sweeps (default 1;
  0 = one worker per CPU).

The environment is re-read lazily on every call, so one process can run
several fidelities (``repro verify`` relies on this).  Sweeps shared by
several figures (e.g. Figure 8 and Figure 9 use the same 18-workload
runs) are cached per (threshold, configuration).
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.report.config import BenchConfig
from repro.report.schema import Artifact, build_artifact, dump_artifact
from repro.sim.metrics import format_table
from repro.sim.runner import simulate_workload
from repro.workloads.suites import WORKLOAD_ORDER

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's per-threshold PRA probabilities (Figure 1 reliability).
PRA_P_FOR_T = {65536: 0.001, 32768: 0.002, 16384: 0.003, 8192: 0.005}

#: Figure 8/9 scheme configurations (dual-core).
FIG8_SCHEMES: list[tuple[str, str, dict]] = [
    ("PRA", "pra", {}),
    ("SCA_64", "sca", {"counters": 64}),
    ("SCA_128", "sca", {"counters": 128}),
    ("PRCAT_64", "prcat", {"counters": 64, "max_levels": 11}),
    ("DRCAT_64", "drcat", {"counters": 64, "max_levels": 11}),
]


def bench_config() -> BenchConfig:
    """The validated ``REPRO_BENCH_*`` configuration, re-read per call."""
    return BenchConfig.from_env()


def sim_kwargs(**overrides) -> dict:
    """Default economy knobs for one simulation run."""
    kw = bench_config().sim_kwargs()
    kw.update(overrides)
    return kw


def fig8_sweep(refresh_threshold: int):
    """The 18-workload × 5-scheme sweep behind Figures 8 and 9.

    Labelled scheme configurations are flattened into independent
    (workload, label) cells so ``REPRO_BENCH_WORKERS`` can spread the
    whole figure over a process pool; per-cell seeding keeps results
    identical at any worker count.  Results are memoised per
    (threshold, result-relevant knobs) — the worker count and fidelity
    label do not affect results and are excluded from the key.
    """
    config = bench_config()
    return _fig8_sweep_cached(
        refresh_threshold,
        config.scale,
        config.n_intervals,
        config.n_banks,
        config.engine,
    )


@functools.lru_cache(maxsize=None)
def _fig8_sweep_cached(refresh_threshold: int, scale: float,
                       n_intervals: int, n_banks: int, engine: str):
    pra_p = PRA_P_FOR_T[refresh_threshold]
    cells = []
    for label, scheme, extra in FIG8_SCHEMES:
        for workload in WORKLOAD_ORDER:
            kw = dict(scale=scale, n_intervals=n_intervals,
                      n_banks=n_banks, engine=engine,
                      refresh_threshold=refresh_threshold,
                      pra_probability=pra_p)
            kw.update(extra)
            cells.append((workload, label, scheme, kw))
    workers = bench_config().workers
    if workers > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(cells))
        ) as pool:
            outputs = list(pool.map(_fig8_cell, cells))
    else:
        outputs = [_fig8_cell(cell) for cell in cells]
    return dict(outputs)


def _fig8_cell(cell):
    """One (workload, labelled scheme) run; module-level for pickling."""
    workload, label, scheme, kw = cell
    return (workload, label), simulate_workload(workload, scheme=scheme, **kw)


def emit(
    name: str,
    title: str,
    rows: list[dict],
    columns: list[str],
    parameters: dict | None = None,
) -> Artifact:
    """Render, print, and persist one paper-style table.

    Writes the text table to ``results/<name>.txt`` and the schema
    artifact to ``results/<name>.json``; returns the artifact so bench
    ``artifacts()`` entry points can hand it to ``repro verify``.
    """
    table = format_table(rows, columns)
    text = f"== {title} ==\n{table}\n"
    print("\n" + text)
    config = bench_config()
    params = {
        "n_banks": config.n_banks,
        "n_intervals": config.n_intervals,
        "fidelity": config.fidelity,
    }
    params.update(parameters or {})
    artifact = build_artifact(
        name,
        title,
        rows,
        columns,
        engine=config.engine,
        scale=config.scale,
        parameters=params,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    dump_artifact(artifact, RESULTS_DIR / f"{name}.json")
    return artifact


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
