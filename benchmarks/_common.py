"""Shared infrastructure for the per-figure benchmark modules.

Every benchmark declares its experiment grid as a
:class:`repro.experiments.Plan` built over :func:`base_spec`, runs it
through :func:`run_bench_plan` (process-pool fan-out plus the on-disk
sweep-cell result cache), and emits its table twice: the paper-style
text form (printed and written to ``benchmarks/results/<name>.txt``)
and a machine-readable JSON artifact (``results/<name>.json``)
following the versioned schema in :mod:`repro.report.schema` — the form
``repro verify`` diffs against the golden store.  Artifacts embed the
producing plan in their additive ``spec`` header.

Simulation fidelity knobs are environment-tunable and validated by
:class:`repro.report.config.BenchConfig` (a malformed value fails with
a message naming the variable):

* ``REPRO_BENCH_SCALE`` — threshold/intensity scale divisor (default 24;
  lower = closer to full scale but slower);
* ``REPRO_BENCH_INTERVALS`` — refresh intervals per run (default 2);
* ``REPRO_BENCH_BANKS`` — banks simulated per run (default 1);
* ``REPRO_BENCH_ENGINE`` — ``batched`` (default) or ``scalar``;
* ``REPRO_BENCH_WORKERS`` — process-pool width for sweeps (default 1;
  0 = one worker per CPU);
* ``REPRO_BENCH_CACHE`` — sweep-cell result cache toggle (default on;
  keyed by spec content hash under a code-fingerprint salt, so any
  source edit invalidates it automatically);
* ``REPRO_BENCH_CACHE_DIR`` — cache location (default
  ``benchmarks/results/sweep_cache``);
* ``REPRO_TRACE_STORE`` / ``REPRO_TRACE_STORE_DIR`` — the
  content-addressed activation-trace store (default on, under
  ``<cache dir>/traces``): scheme-axis grid cells share one stream
  generation pass via memory-mapped entries (see
  :mod:`repro.sim.tracestore`).

The environment is re-read lazily on every call, so one process can run
several fidelities (``repro verify`` relies on this).  Sweeps shared by
several figures (e.g. Figure 8 and Figure 9 use the same 18-workload
runs) are additionally memoised in-process per (threshold, knobs).
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.experiments import (
    ExperimentSpec,
    Plan,
    ResultCache,
    SchemeSpec,
    run_plan,
)
from repro.report.config import BenchConfig
from repro.report.schema import Artifact, build_artifact, dump_artifact
from repro.sim.metrics import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Default sweep-cell cache store (override with REPRO_BENCH_CACHE_DIR).
DEFAULT_CACHE_DIR = RESULTS_DIR / "sweep_cache"

#: The paper's per-threshold PRA probabilities (Figure 1 reliability).
PRA_P_FOR_T = {65536: 0.001, 32768: 0.002, 16384: 0.003, 8192: 0.005}

#: Figure 8/9 labelled scheme axis (dual-core), per threshold T.
FIG8_LABELS = ["PRA", "SCA_64", "SCA_128", "PRCAT_64", "DRCAT_64"]


def fig8_schemes(refresh_threshold: int) -> list[SchemeSpec]:
    """The Figure 8/9 scheme axis with T-matched PRA probability."""
    pra_p = PRA_P_FOR_T[refresh_threshold]
    return [
        SchemeSpec.create("pra", "PRA", probability=pra_p),
        SchemeSpec.create("sca", "SCA_64", n_counters=64),
        SchemeSpec.create("sca", "SCA_128", n_counters=128),
        SchemeSpec.create("prcat", "PRCAT_64", n_counters=64, max_levels=11),
        SchemeSpec.create("drcat", "DRCAT_64", n_counters=64, max_levels=11),
    ]


def bench_config() -> BenchConfig:
    """The validated ``REPRO_BENCH_*`` configuration, re-read per call."""
    return BenchConfig.from_env()


def base_spec(**overrides) -> ExperimentSpec:
    """An ExperimentSpec carrying the environment's economy knobs."""
    config = bench_config()
    fields = dict(
        scheme=SchemeSpec("drcat"),
        scale=config.scale,
        n_banks=config.n_banks,
        n_intervals=config.n_intervals,
        engine=config.engine,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def sim_kwargs(**overrides) -> dict:
    """Legacy economy-knob dict (kept for ad-hoc local experiments)."""
    kw = bench_config().sim_kwargs()
    kw.update(overrides)
    return kw


def bench_cache() -> ResultCache | None:
    """The sweep-cell cache the environment selects (None = disabled)."""
    config = bench_config()
    if not config.cache:
        return None
    return ResultCache(config.cache_dir or DEFAULT_CACHE_DIR)


def run_bench_plan(plan: Plan) -> list:
    """Run one bench plan with the environment's workers and cache."""
    return run_plan(plan, workers=bench_config().workers, cache=bench_cache())


def plan_memo(builder):
    """Memoise a bench's plan builder per (args, result-relevant knobs).

    A bench builds its plan twice — once to run, once for ``emit``'s
    provenance header.  Keying on the env knobs guarantees both calls
    see the *same* Plan object (no drift window if the environment
    mutates in between, no redundant grid expansion), while distinct
    fidelities within one process still get distinct plans.
    """
    cache: dict = {}

    @functools.wraps(builder)
    def wrapper(*args):
        config = bench_config()
        key = (args, config.scale, config.n_intervals, config.n_banks,
               config.engine, config.session)
        if key not in cache:
            cache[key] = builder(*args)
        return cache[key]

    return wrapper


def fig8_sweep(refresh_threshold: int):
    """The 18-workload × 5-scheme sweep behind Figures 8 and 9.

    Returns ``{(workload, label): SimulationResult}``.  The grid is one
    :class:`Plan`; cells fan out over ``REPRO_BENCH_WORKERS`` processes
    and hit the on-disk result cache, and per-cell seeding keeps
    results identical at any worker count.  Results are additionally
    memoised in-process per (threshold, result-relevant knobs) — the
    worker count and fidelity label do not affect results and are
    excluded from the key.
    """
    config = bench_config()
    return _fig8_sweep_cached(
        refresh_threshold,
        config.scale,
        config.n_intervals,
        config.n_banks,
        config.engine,
        config.session,
    )


@plan_memo
def fig8_plan(refresh_threshold: int) -> Plan:
    """The declarative grid :func:`fig8_sweep` runs (for spec headers).

    Memoised per env knobs, so the sweep and ``emit``'s provenance
    header share one Plan object.
    """
    from repro.workloads.suites import WORKLOAD_ORDER

    return Plan.grid(
        base_spec(refresh_threshold=refresh_threshold),
        scheme=fig8_schemes(refresh_threshold),
        workload=list(WORKLOAD_ORDER),
    )


@functools.lru_cache(maxsize=None)
def _fig8_sweep_cached(refresh_threshold: int, scale: float,
                       n_intervals: int, n_banks: int, engine: str,
                       session: str):
    plan = fig8_plan(refresh_threshold)
    results = run_bench_plan(plan)
    return dict(zip(plan.keys(), results))


def emit(
    name: str,
    title: str,
    rows: list[dict],
    columns: list[str],
    parameters: dict | None = None,
    plan: Plan | None = None,
    spec: dict | None = None,
) -> Artifact:
    """Render, print, and persist one paper-style table.

    New figure?  Emitting the artifact is step 1 of 5 — see "Adding a
    new figure" in DESIGN.md for the full checklist (bench → register
    in BENCH_MODULES → bless goldens → renderer in
    src/repro/figures/paper.py → docs/REPORT.md entry).

    Writes the text table to ``results/<name>.txt`` and the schema
    artifact to ``results/<name>.json``; returns the artifact so bench
    ``artifacts()`` entry points can hand it to ``repro verify``.
    ``plan`` (or a pre-built ``spec`` dict) becomes the artifact's
    additive provenance header.
    """
    table = format_table(rows, columns)
    text = f"== {title} ==\n{table}\n"
    print("\n" + text)
    config = bench_config()
    params = {
        "n_banks": config.n_banks,
        "n_intervals": config.n_intervals,
        "fidelity": config.fidelity,
    }
    params.update(parameters or {})
    if spec is None and plan is not None:
        spec = plan.summary()
    artifact = build_artifact(
        name,
        title,
        rows,
        columns,
        engine=config.engine,
        scale=config.scale,
        parameters=params,
        spec=spec,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    dump_artifact(artifact, RESULTS_DIR / f"{name}.json")
    return artifact


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
