"""Shared infrastructure for the per-figure benchmark modules.

Every benchmark regenerates one table or figure of the paper and prints
(and writes to ``benchmarks/results/``) the same rows/series the paper
reports.  Simulation fidelity knobs are environment-tunable:

* ``REPRO_BENCH_SCALE`` — threshold/intensity scale divisor (default 24;
  lower = closer to full scale but slower);
* ``REPRO_BENCH_INTERVALS`` — refresh intervals per run (default 2);
* ``REPRO_BENCH_BANKS`` — banks simulated per run (default 1);
* ``REPRO_BENCH_ENGINE`` — ``batched`` (default) or ``scalar``;
* ``REPRO_BENCH_WORKERS`` — process-pool width for sweeps (default 1;
  0 = one worker per CPU).

Sweeps shared by several figures (e.g. Figure 8 and Figure 9 use the
same 18-workload runs) are cached per process.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.sim.metrics import format_table
from repro.sim.runner import simulate_workload, sweep
from repro.workloads.suites import WORKLOAD_ORDER

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "24"))
BENCH_INTERVALS = int(os.environ.get("REPRO_BENCH_INTERVALS", "2"))
BENCH_BANKS = int(os.environ.get("REPRO_BENCH_BANKS", "1"))
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "batched")
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
if BENCH_WORKERS == 0:
    BENCH_WORKERS = os.cpu_count() or 1

#: The paper's per-threshold PRA probabilities (Figure 1 reliability).
PRA_P_FOR_T = {65536: 0.001, 32768: 0.002, 16384: 0.003, 8192: 0.005}

#: Figure 8/9 scheme configurations (dual-core).
FIG8_SCHEMES: list[tuple[str, str, dict]] = [
    ("PRA", "pra", {}),
    ("SCA_64", "sca", {"counters": 64}),
    ("SCA_128", "sca", {"counters": 128}),
    ("PRCAT_64", "prcat", {"counters": 64, "max_levels": 11}),
    ("DRCAT_64", "drcat", {"counters": 64, "max_levels": 11}),
]


def sim_kwargs(**overrides) -> dict:
    """Default economy knobs for one simulation run."""
    kw = dict(
        scale=BENCH_SCALE,
        n_banks=BENCH_BANKS,
        n_intervals=BENCH_INTERVALS,
        engine=BENCH_ENGINE,
    )
    kw.update(overrides)
    return kw


@functools.lru_cache(maxsize=None)
def fig8_sweep(refresh_threshold: int):
    """The 18-workload × 5-scheme sweep behind Figures 8 and 9.

    Labelled scheme configurations are flattened into independent
    (workload, label) cells so ``REPRO_BENCH_WORKERS`` can spread the
    whole figure over a process pool; per-cell seeding keeps results
    identical at any worker count.
    """
    pra_p = PRA_P_FOR_T[refresh_threshold]
    cells = []
    for label, scheme, extra in FIG8_SCHEMES:
        for workload in WORKLOAD_ORDER:
            kw = sim_kwargs(
                refresh_threshold=refresh_threshold, pra_probability=pra_p
            )
            kw.update(extra)
            cells.append((workload, label, scheme, kw))
    if BENCH_WORKERS > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(BENCH_WORKERS, len(cells))
        ) as pool:
            outputs = list(pool.map(_fig8_cell, cells))
    else:
        outputs = [_fig8_cell(cell) for cell in cells]
    return dict(outputs)


def _fig8_cell(cell):
    """One (workload, labelled scheme) run; module-level for pickling."""
    workload, label, scheme, kw = cell
    return (workload, label), simulate_workload(workload, scheme=scheme, **kw)


def emit(name: str, title: str, rows: list[dict], columns: list[str]) -> str:
    """Render, print, and persist one paper-style table."""
    table = format_table(rows, columns)
    text = f"== {title} ==\n{table}\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    return text


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
