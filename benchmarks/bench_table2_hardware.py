"""Table II: hardware energy (per bank) and area for DRCAT/PRCAT/SCA.

Regenerates the table rows for M in {32..512} at T=32K / L=11 from the
calibrated hardware model, plus the PRNG block for PRA, and checks the
paper's stated relations (iso-area PRCAT64 ~ SCA128, DRCAT ~ +4% area
over PRCAT, PRA's 9-bit draw energy).
"""

import pytest
from _common import emit

from repro.energy.hardware_model import (
    DRCAT_LATENCY_NS,
    DRCAT_RECONFIG_LATENCY_NS,
    PRCAT_LATENCY_NS,
    TABLE2_M,
    iso_area_counters,
    pra_hardware,
    scheme_hardware,
)


def build_rows():
    rows = []
    for m in TABLE2_M:
        row = {"M": m}
        for scheme in ("drcat", "prcat", "sca"):
            hw = scheme_hardware(scheme, m)
            row[f"{scheme}_dyn_nJ"] = f"{hw.dynamic_nj_per_access:.2e}"
            row[f"{scheme}_static_nJ"] = f"{hw.static_nj_per_interval:.2e}"
            row[f"{scheme}_area_mm2"] = f"{hw.area_mm2:.2e}"
        rows.append(row)
    return rows


def emit_hardware(rows):
    columns = ["M"]
    for scheme in ("drcat", "prcat", "sca"):
        columns += [
            f"{scheme}_dyn_nJ",
            f"{scheme}_static_nJ",
            f"{scheme}_area_mm2",
        ]
    return emit(
        "table2_hardware", "Table II: per-bank energy and area", rows, columns,
        spec={"analytic": "table2",
              "grid": {"M": list(TABLE2_M),
                       "scheme": ["drcat", "prcat", "sca"]}},
    )


def emit_prng():
    prng = pra_hardware()
    return emit(
        "table2_prng",
        "Table II (right): PRNG specification for PRA",
        [
            {
                "area_mm2": f"{prng.area_mm2:.3e}",
                "throughput_Gbps": prng.throughput_gbps,
                "power_mW": prng.power_mw,
                "eff_nJ_per_bit": f"{prng.energy_per_bit_nj:.2e}",
                "eng_PRNG_9b_nJ": f"{prng.energy_per_access_nj:.3e}",
            }
        ],
        [
            "area_mm2",
            "throughput_Gbps",
            "power_mW",
            "eff_nJ_per_bit",
            "eng_PRNG_9b_nJ",
        ],
        spec={"analytic": "table2_prng"},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_hardware(build_rows()), emit_prng()]


def test_table2_hardware(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_hardware(rows)
    prng = pra_hardware()
    emit_prng()
    # Paper relations.
    assert iso_area_counters("prcat", 64, "sca") == 128
    drcat64 = scheme_hardware("drcat", 64)
    prcat64 = scheme_hardware("prcat", 64)
    assert drcat64.area_mm2 / prcat64.area_mm2 == pytest.approx(1.044, abs=0.03)
    assert prng.energy_per_access_nj == pytest.approx(2.625e-2, rel=0.01)
    assert (PRCAT_LATENCY_NS, DRCAT_LATENCY_NS, DRCAT_RECONFIG_LATENCY_NS) == (
        3.6,
        4.0,
        7.5,
    )
