"""Table I: system configuration.

Prints the simulated system's configuration and checks it against the
paper's Table I values.
"""

from _common import emit

from repro.dram.config import DUAL_CORE_2CH, NAMED_CONFIGS


def build_rows():
    rows = []
    for name, config in NAMED_CONFIGS.items():
        rows.append(
            {
                "config": name,
                "cores": config.n_cores,
                "channels": config.n_channels,
                "ranks/ch": config.ranks_per_channel,
                "banks": config.n_banks,
                "rows/bank": config.rows_per_bank,
                "mapping": config.address_mapping,
                "policy": config.page_policy,
            }
        )
    return rows


def emit_rows(rows):
    return emit(
        "table1_config",
        "Table I: system configurations",
        rows,
        [
            "config",
            "cores",
            "channels",
            "ranks/ch",
            "banks",
            "rows/bank",
            "mapping",
            "policy",
        ],
        spec={"analytic": "table1", "grid": {"config": list(NAMED_CONFIGS)}},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_table1_system_config(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    c = DUAL_CORE_2CH
    assert c.n_cores == 2 and c.core_freq_ghz == 3.2
    assert c.bus_freq_mhz == 800.0
    assert c.n_channels == 2 and c.banks_per_rank == 8
    assert c.rows_per_bank == 65536 and c.cache_line_bytes == 64
    assert c.rob_entries == 128 and c.fetch_width == 4 and c.retire_width == 2
    assert c.pipeline_depth == 10 and c.write_queue_capacity == 64
    assert c.scheduling == "FRFCFS" and c.page_policy == "closed"
