"""Figure 11: effect of mapping policy and core count on CMRPO.

Paper shape (T=16K, iso-area configurations): quad-core/2-channel is
the most stressed configuration — SCA's CMRPO blows up to ~21% and PRA
to ~18% while DRCAT stays at ~7%; the 4-channel policy (4x the banks)
relieves pressure for every scheme.  Quad-core systems use 128K-row
banks and double the counters (SCA_256 / CAT_128) per the paper.
"""

from _common import PRA_P_FOR_T, base_spec, emit, mean, plan_memo, run_bench_plan

from repro.experiments import Plan, SchemeSpec

WORKLOADS = ("comm1", "black", "MTC", "face")

#: (config name, intensity multiplier, SCA M, CAT M).  Quad-core systems
#: generate more memory traffic (less L2 locality, paper Section VIII-B)
#: and use doubled iso-area counter budgets.
CONFIG_ROWS = [
    ("dual-core/2channels", 1.0, 128, 64),
    ("quad-core/2channels", 2.2, 256, 128),
    ("quad-core/4channels", 0.55, 256, 128),
]


def _config_schemes(pra_p, sca_m, cat_m):
    return [
        SchemeSpec.create("pra", "PRA", probability=pra_p),
        SchemeSpec.create("sca", "SCA", n_counters=sca_m),
        SchemeSpec.create("prcat", "PRCAT", n_counters=cat_m),
        SchemeSpec.create("drcat", "DRCAT", n_counters=cat_m),
    ]


@plan_memo
def build_plan(refresh_threshold) -> Plan:
    """One grid per iso-area configuration row, concatenated."""
    pra_p = PRA_P_FOR_T[refresh_threshold]
    plan = None
    for name, traffic_mult, sca_m, cat_m in CONFIG_ROWS:
        grid = Plan.grid(
            base_spec(
                system=name,
                intensity_scale=traffic_mult,
                refresh_threshold=refresh_threshold,
            ),
            scheme=_config_schemes(pra_p, sca_m, cat_m),
            workload=list(WORKLOADS),
        )
        plan = grid if plan is None else plan + grid
    return plan


def build_rows(refresh_threshold):
    plan = build_plan(refresh_threshold)
    results = run_bench_plan(plan)
    rows = []
    cells_per_config = 4 * len(WORKLOADS)
    for i, (name, _mult, _sca_m, _cat_m) in enumerate(CONFIG_ROWS):
        row = {"config": name}
        block = list(zip(
            plan.keys()[i * cells_per_config:(i + 1) * cells_per_config],
            results[i * cells_per_config:(i + 1) * cells_per_config],
        ))
        for label in ("PRA", "SCA", "PRCAT", "DRCAT"):
            row[label] = 100.0 * mean(
                result.cmrpo
                for (_w, cell_label), result in block
                if cell_label == label
            )
        rows.append(row)
    return rows


def emit_threshold(refresh_threshold, rows):
    t = refresh_threshold // 1024
    return emit(
        f"fig11_mapping_t{t}k",
        f"Figure 11 (T={t}K): CMRPO (%) vs cores and mapping policy",
        rows,
        ["config", "PRA", "SCA", "PRCAT", "DRCAT"],
        parameters={"refresh_threshold": refresh_threshold},
        plan=build_plan(refresh_threshold),
    )


def artifacts():
    """JSON artifacts for ``repro verify`` (both thresholds)."""
    return [emit_threshold(t, build_rows(t)) for t in (16384, 32768)]


def test_fig11_mapping_and_cores_t16k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(16384,), iterations=1, rounds=1
    )
    emit_threshold(16384, rows)
    by_config = {row["config"]: row for row in rows}
    quad2 = by_config["quad-core/2channels"]
    quad4 = by_config["quad-core/4channels"]
    dual2 = by_config["dual-core/2channels"]
    # Paper shape: quad-core/2ch is the worst case for SCA; DRCAT keeps a
    # large margin there.
    assert quad2["SCA"] > dual2["SCA"]
    assert quad2["DRCAT"] < 0.75 * quad2["SCA"]
    assert quad2["DRCAT"] < 0.75 * quad2["PRA"]
    # The 4-channel policy relieves every scheme.
    for scheme in ("SCA", "PRCAT", "DRCAT"):
        assert quad4[scheme] < quad2[scheme]


def test_fig11_mapping_and_cores_t32k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(32768,), iterations=1, rounds=1
    )
    emit_threshold(32768, rows)
    by_config = {row["config"]: row for row in rows}
    quad2 = by_config["quad-core/2channels"]
    assert quad2["DRCAT"] < quad2["SCA"]
