"""Figure 11: effect of mapping policy and core count on CMRPO.

Paper shape (T=16K, iso-area configurations): quad-core/2-channel is
the most stressed configuration — SCA's CMRPO blows up to ~21% and PRA
to ~18% while DRCAT stays at ~7%; the 4-channel policy (4x the banks)
relieves pressure for every scheme.  Quad-core systems use 128K-row
banks and double the counters (SCA_256 / CAT_128) per the paper.
"""

from _common import PRA_P_FOR_T, emit, mean, sim_kwargs

from repro.dram.config import NAMED_CONFIGS
from repro.sim.runner import simulate_workload

WORKLOADS = ("comm1", "black", "MTC", "face")

#: (config name, intensity multiplier, SCA M, CAT M).  Quad-core systems
#: generate more memory traffic (less L2 locality, paper Section VIII-B)
#: and use doubled iso-area counter budgets.
CONFIG_ROWS = [
    ("dual-core/2channels", 1.0, 128, 64),
    ("quad-core/2channels", 2.2, 256, 128),
    ("quad-core/4channels", 0.55, 256, 128),
]


def build_rows(refresh_threshold):
    from dataclasses import replace

    rows = []
    pra_p = PRA_P_FOR_T[refresh_threshold]
    for name, traffic_mult, sca_m, cat_m in CONFIG_ROWS:
        config = NAMED_CONFIGS[name]
        row = {"config": name}
        for label, scheme, counters in (
            (f"PRA_{pra_p}", "pra", 0),
            (f"SCA_{sca_m}", "sca", sca_m),
            (f"PRCAT_{cat_m}", "prcat", cat_m),
            (f"DRCAT_{cat_m}", "drcat", cat_m),
        ):
            values = []
            for wname in WORKLOADS:
                from repro.workloads.suites import get_workload

                spec = get_workload(wname)
                spec = replace(
                    spec, intensity=spec.intensity * traffic_mult
                )
                kw = sim_kwargs(
                    config=config,
                    refresh_threshold=refresh_threshold,
                    pra_probability=pra_p,
                )
                if counters:
                    kw["counters"] = counters
                values.append(
                    simulate_workload(spec, scheme=scheme, **kw).cmrpo
                )
            row[label.split("_")[0]] = 100.0 * mean(values)
        rows.append(row)
    return rows


def emit_threshold(refresh_threshold, rows):
    t = refresh_threshold // 1024
    return emit(
        f"fig11_mapping_t{t}k",
        f"Figure 11 (T={t}K): CMRPO (%) vs cores and mapping policy",
        rows,
        ["config", "PRA", "SCA", "PRCAT", "DRCAT"],
        parameters={"refresh_threshold": refresh_threshold},
    )


def artifacts():
    """JSON artifacts for ``repro verify`` (both thresholds)."""
    return [emit_threshold(t, build_rows(t)) for t in (16384, 32768)]


def test_fig11_mapping_and_cores_t16k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(16384,), iterations=1, rounds=1
    )
    emit_threshold(16384, rows)
    by_config = {row["config"]: row for row in rows}
    quad2 = by_config["quad-core/2channels"]
    quad4 = by_config["quad-core/4channels"]
    dual2 = by_config["dual-core/2channels"]
    # Paper shape: quad-core/2ch is the worst case for SCA; DRCAT keeps a
    # large margin there.
    assert quad2["SCA"] > dual2["SCA"]
    assert quad2["DRCAT"] < 0.75 * quad2["SCA"]
    assert quad2["DRCAT"] < 0.75 * quad2["PRA"]
    # The 4-channel policy relieves every scheme.
    for scheme in ("SCA", "PRCAT", "DRCAT"):
        assert quad4[scheme] < quad2[scheme]


def test_fig11_mapping_and_cores_t32k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(32768,), iterations=1, rounds=1
    )
    emit_threshold(32768, rows)
    by_config = {row["config"]: row for row in rows}
    quad2 = by_config["quad-core/2channels"]
    assert quad2["DRCAT"] < quad2["SCA"]
