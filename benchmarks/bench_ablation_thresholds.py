"""Ablation: split-threshold schedule strategy (ours).

DESIGN.md calls out the split-threshold schedule as the CAT's key
tuning knob (Section IV-D).  This ablation compares the cost-balance
"model" schedule against the naive repeated-doubling "geometric"
schedule on skewed and uniform workloads, confirming the paper's claim
that the schedule shapes the tree to the access pattern: on biased
workloads the model schedule should refresh no more rows than the
geometric one, and on uniform workloads both degenerate to SCA-like
behaviour.
"""

from _common import base_spec, emit, mean, plan_memo, run_bench_plan

from repro.experiments import Plan, SchemeSpec

SKEWED = ("black", "face", "mum")
UNIFORM = ("libq", "str")


@plan_memo
def build_plan() -> Plan:
    """The strategy x workload grid (PRCAT_64, default T)."""
    return Plan.grid(
        base_spec(),
        scheme=[
            SchemeSpec.create(
                "prcat", strategy, threshold_strategy=strategy
            )
            for strategy in ("model", "geometric")
        ],
        workload=list(SKEWED + UNIFORM),
    )


def build_rows():
    plan = build_plan()
    cells = list(zip(plan.keys(), run_bench_plan(plan)))
    rows = []
    for strategy in ("model", "geometric"):
        row = {"strategy": strategy}
        for group, names in (("skewed", SKEWED), ("uniform", UNIFORM)):
            group_results = [
                result
                for (workload, label), result in cells
                if label == strategy and workload in names
            ]
            row[f"{group}_cmrpo_pct"] = 100.0 * mean(
                r.cmrpo for r in group_results
            )
            row[f"{group}_rows_per_interval"] = mean(
                r.totals.rows_refreshed_per_bank_interval
                for r in group_results
            )
        rows.append(row)
    return rows


def emit_rows(rows):
    return emit(
        "ablation_thresholds",
        "Ablation: split-threshold schedule strategy (PRCAT_64, T=32K)",
        rows,
        [
            "strategy",
            "skewed_cmrpo_pct",
            "skewed_rows_per_interval",
            "uniform_cmrpo_pct",
            "uniform_rows_per_interval",
        ],
        plan=build_plan(),
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_ablation_threshold_strategy(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    by_strategy = {row["strategy"]: row for row in rows}
    model = by_strategy["model"]
    geometric = by_strategy["geometric"]
    # The cost-balance schedule should not lose to naive doubling on the
    # skewed workloads it was derived for (some tolerance: both shape
    # the same tree eventually).
    assert (
        model["skewed_rows_per_interval"]
        <= geometric["skewed_rows_per_interval"] * 1.25
    )
    # On uniform workloads the schedule choice is immaterial (both
    # converge to the SCA-like balanced tree).
    assert model["uniform_cmrpo_pct"] == (
        __import__("pytest").approx(geometric["uniform_cmrpo_pct"], rel=0.35)
    )
