"""Figure 8: CMRPO per workload for T=32K and T=16K (dual-core).

Regenerates the paper's headline comparison: PRA, SCA_64, SCA_128,
PRCAT_64 and DRCAT_64 over the 18 MSC workloads.  The grid is declared
as a :class:`repro.experiments.Plan` (see ``_common.fig8_plan``), shared
with Figure 9.  Paper shape at T=32K: the CAT schemes' mean sits far
below SCA's and PRA's; at T=16K SCA_64 degrades sharply (paper: 22%)
while DRCAT barely moves (4 -> 4.5%).
"""

from _common import FIG8_LABELS, emit, fig8_plan, fig8_sweep, mean

from repro.workloads.suites import WORKLOAD_ORDER

LABELS = FIG8_LABELS


def build_rows(refresh_threshold):
    results = fig8_sweep(refresh_threshold)
    rows = []
    for workload in WORKLOAD_ORDER:
        row = {"workload": workload}
        for label in LABELS:
            row[label] = 100.0 * results[(workload, label)].cmrpo
        rows.append(row)
    mean_row = {"workload": "Mean"}
    for label in LABELS:
        mean_row[label] = mean(row[label] for row in rows)
    rows.append(mean_row)
    return rows


def emit_threshold(refresh_threshold, rows):
    t = refresh_threshold // 1024
    return emit(
        f"fig8_cmrpo_t{t}k",
        f"Figure 8 (T={t}K): CMRPO per workload (%)",
        rows,
        ["workload"] + LABELS,
        parameters={"refresh_threshold": refresh_threshold},
        plan=fig8_plan(refresh_threshold),
    )


def artifacts():
    """JSON artifacts for ``repro verify`` (both thresholds)."""
    return [emit_threshold(t, build_rows(t)) for t in (32768, 16384)]


def test_fig8_cmrpo_t32k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(32768,), iterations=1, rounds=1
    )
    emit_threshold(32768, rows)
    means = rows[-1]
    # Paper shape: CAT schemes beat SCA_64 and PRA by a wide margin.
    assert means["DRCAT_64"] < 0.6 * means["SCA_64"]
    assert means["PRCAT_64"] < 0.6 * means["SCA_64"]
    assert means["DRCAT_64"] < 0.6 * means["PRA"]
    # Absolute plausibility: single-digit CMRPO for CAT, ~10% for PRA.
    assert means["DRCAT_64"] < 8.0
    assert 5.0 < means["PRA"] < 18.0


def test_fig8_cmrpo_t16k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(16384,), iterations=1, rounds=1
    )
    emit_threshold(16384, rows)
    means = rows[-1]
    means32 = build_rows(32768)[-1]
    # Paper shape: halving T hits SCA hard, CAT only slightly.
    sca_growth = means["SCA_64"] - means32["SCA_64"]
    drcat_growth = means["DRCAT_64"] - means32["DRCAT_64"]
    assert sca_growth > 2.0 * max(drcat_growth, 0.1)
    assert means["DRCAT_64"] < means["SCA_128"] < means["SCA_64"]
