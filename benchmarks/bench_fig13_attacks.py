"""Figure 13: ETO of benign workloads under kernel rowhammer attacks.

Three attack mixes (heavy 75%, medium 50%, light 25% target-row
traffic) at T in {32K, 16K, 8K}, with iso-area budgets (SCA_128/CAT_64
for 32K/16K; SCA_256/CAT_128 at 8K).  Paper shape: heavier attacks cost
more ETO; SCA grows to several percent at T=16K heavy while the CAT
schemes stay below ~1%; T=8K is *lower* than 16K because the counter
budget doubles.
"""

from _common import base_spec, emit, mean, plan_memo, run_bench_plan

from repro.experiments import Plan, SchemeSpec
from repro.workloads.attacks import ATTACK_KERNELS

#: (T, SCA M, CAT M) per the paper's Figure 13 groups.
THRESHOLD_CONFIGS = [(32768, 128, 64), (16384, 128, 64), (8192, 256, 128)]
MODES = ("heavy", "medium", "light")
#: subset of the 12 kernels per cell (REPRO_BENCH_* knobs raise this)
KERNELS = ATTACK_KERNELS[:4]


@plan_memo
def build_plan() -> Plan:
    """Attack grids: (scheme x mode x kernel) per iso-area threshold row.

    Attack cells are ordinary ExperimentSpecs with ``kind="attack"``;
    the kernel and mix mode are plan axes like any other spec field.
    """
    plan = None
    for t, sca_m, cat_m in THRESHOLD_CONFIGS:
        grid = Plan.grid(
            base_spec(
                kind="attack",
                attack_kernel=KERNELS[0].name,
                attack_mode=MODES[0],
                workload="libq",
                refresh_threshold=t,
            ),
            scheme=[
                SchemeSpec.create("sca", "SCA", n_counters=sca_m),
                SchemeSpec.create("prcat", "PRCAT", n_counters=cat_m),
                SchemeSpec.create("drcat", "DRCAT", n_counters=cat_m),
            ],
            attack_mode=list(MODES),
            attack_kernel=[k.name for k in KERNELS],
        )
        plan = grid if plan is None else plan + grid
    return plan


def build_rows():
    plan = build_plan()
    results = run_bench_plan(plan)
    cells = list(zip(plan.specs, results))
    rows = []
    for t, _sca_m, _cat_m in THRESHOLD_CONFIGS:
        for mode in MODES:
            row = {"T": f"{t // 1024}K", "mode": mode}
            for label in ("SCA", "PRCAT", "DRCAT"):
                row[label] = 100.0 * mean(
                    result.eto
                    for spec, result in cells
                    if spec.refresh_threshold == t
                    and spec.attack_mode == mode
                    and spec.scheme.display_label == label
                )
            rows.append(row)
    return rows


def emit_rows(rows):
    return emit(
        "fig13_attacks",
        "Figure 13: mean ETO (%) under kernel attacks "
        f"({len(KERNELS)} kernels per cell)",
        rows,
        ["T", "mode", "SCA", "PRCAT", "DRCAT"],
        parameters={"n_kernels": len(KERNELS)},
        plan=build_plan(),
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_fig13_kernel_attacks(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    cell = {(row["T"], row["mode"]): row for row in rows}
    # Heavier attacks cost more for SCA at every threshold.
    for t in ("32K", "16K", "8K"):
        assert cell[(t, "heavy")]["SCA"] >= cell[(t, "light")]["SCA"]
    # Paper shape: CAT confines attacks to small groups, SCA does not.
    worst_sca = cell[("16K", "heavy")]["SCA"]
    assert cell[("16K", "heavy")]["DRCAT"] < 0.5 * worst_sca
    assert cell[("16K", "heavy")]["PRCAT"] < 0.7 * worst_sca
    # T=8K stays in the same range as 16K despite the halved threshold,
    # because the counter budget doubles (the paper reports a slight
    # *decrease*; our model reproduces parity within 25%).
    assert cell[("8K", "heavy")]["SCA"] < 1.25 * cell[("16K", "heavy")]["SCA"]
