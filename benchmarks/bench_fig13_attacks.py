"""Figure 13: ETO of benign workloads under kernel rowhammer attacks.

Three attack mixes (heavy 75%, medium 50%, light 25% target-row
traffic) at T in {32K, 16K, 8K}, with iso-area budgets (SCA_128/CAT_64
for 32K/16K; SCA_256/CAT_128 at 8K).  Paper shape: heavier attacks cost
more ETO; SCA grows to several percent at T=16K heavy while the CAT
schemes stay below ~1%; T=8K is *lower* than 16K because the counter
budget doubles.
"""

from _common import emit, mean, sim_kwargs

from repro.sim.runner import simulate_attack
from repro.workloads.attacks import ATTACK_KERNELS

#: (T, SCA M, CAT M) per the paper's Figure 13 groups.
THRESHOLD_CONFIGS = [(32768, 128, 64), (16384, 128, 64), (8192, 256, 128)]
MODES = ("heavy", "medium", "light")
#: subset of the 12 kernels per cell (REPRO_BENCH_* knobs raise this)
KERNELS = ATTACK_KERNELS[:4]


def build_rows():
    rows = []
    for t, sca_m, cat_m in THRESHOLD_CONFIGS:
        for mode in MODES:
            row = {"T": f"{t // 1024}K", "mode": mode}
            for label, scheme, m in (
                (f"SCA_{sca_m}", "sca", sca_m),
                (f"PRCAT_{cat_m}", "prcat", cat_m),
                (f"DRCAT_{cat_m}", "drcat", cat_m),
            ):
                eto = mean(
                    simulate_attack(
                        kernel,
                        mode,
                        scheme,
                        counters=m,
                        refresh_threshold=t,
                        **sim_kwargs(),
                    ).eto
                    for kernel in KERNELS
                )
                row[label.split("_")[0]] = 100.0 * eto
            rows.append(row)
    return rows


def emit_rows(rows):
    return emit(
        "fig13_attacks",
        "Figure 13: mean ETO (%) under kernel attacks "
        f"({len(KERNELS)} kernels per cell)",
        rows,
        ["T", "mode", "SCA", "PRCAT", "DRCAT"],
        parameters={"n_kernels": len(KERNELS)},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_fig13_kernel_attacks(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    cell = {(row["T"], row["mode"]): row for row in rows}
    # Heavier attacks cost more for SCA at every threshold.
    for t in ("32K", "16K", "8K"):
        assert cell[(t, "heavy")]["SCA"] >= cell[(t, "light")]["SCA"]
    # Paper shape: CAT confines attacks to small groups, SCA does not.
    worst_sca = cell[("16K", "heavy")]["SCA"]
    assert cell[("16K", "heavy")]["DRCAT"] < 0.5 * worst_sca
    assert cell[("16K", "heavy")]["PRCAT"] < 0.7 * worst_sca
    # T=8K stays in the same range as 16K despite the halved threshold,
    # because the counter budget doubles (the paper reports a slight
    # *decrease*; our model reproduces parity within 25%).
    assert cell[("8K", "heavy")]["SCA"] < 1.25 * cell[("16K", "heavy")]["SCA"]
