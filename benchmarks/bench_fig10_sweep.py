"""Figure 10: DRCAT CMRPO vs counters (32-512) and max depth (6-14).

The paper sweeps DRCAT over M in {32..512} and L in {6..14} against SCA
at each M, for T=32K and T=16K, finding: (a) with many counters static
power dominates and depth stops mattering; (b) with few counters deeper
trees save refresh energy; (c) the minimum sits at DRCAT_64 / L=11 and
SCA's own optimum at 128 counters; (d) at T=16K SCA degrades while
DRCAT's minimum barely moves.

The reproduction sweeps a representative workload subset and a trimmed
L grid (7/9/11/13) to keep runtime sane; REPRO_BENCH_* env knobs raise
fidelity.
"""

from _common import base_spec, emit, mean, plan_memo, run_bench_plan

from repro.experiments import Plan, SchemeSpec

WORKLOADS = ("black", "face", "comm1")
M_VALUES = (32, 64, 128, 256, 512)
L_VALUES = (7, 9, 11, 13)


def valid_levels(m: int, l: int) -> bool:
    # the tree must be allowed to grow past the balanced log2(M) depth
    return l > m.bit_length() - 1


@plan_memo
def build_plan(refresh_threshold) -> Plan:
    """The declarative M x L x workload grid (invalid L cells omitted)."""
    schemes = [
        SchemeSpec.create("sca", f"SCA_{m}", n_counters=m) for m in M_VALUES
    ] + [
        SchemeSpec.create(
            "drcat", f"DRCAT_{m}_L{l}", n_counters=m, max_levels=l
        )
        for m in M_VALUES
        for l in L_VALUES
        if valid_levels(m, l)
    ]
    return Plan.grid(
        base_spec(refresh_threshold=refresh_threshold),
        scheme=schemes,
        workload=list(WORKLOADS),
    )


def build_rows(refresh_threshold):
    plan = build_plan(refresh_threshold)
    by_label: dict[str, list[float]] = {}
    for (workload, label), result in zip(
        plan.keys(), run_bench_plan(plan)
    ):
        by_label.setdefault(label, []).append(result.cmrpo)
    rows = []
    for m in M_VALUES:
        row = {"M": m}
        row["SCA"] = 100.0 * mean(by_label[f"SCA_{m}"])
        for l in L_VALUES:
            if not valid_levels(m, l):
                row[f"DRCAT_L{l}"] = float("nan")
                continue
            row[f"DRCAT_L{l}"] = 100.0 * mean(by_label[f"DRCAT_{m}_L{l}"])
        rows.append(row)
    return rows


def _min_drcat(row):
    import math

    vals = [
        v
        for k, v in row.items()
        if k.startswith("DRCAT") and isinstance(v, float) and not math.isnan(v)
    ]
    return min(vals) if vals else float("inf")


def emit_threshold(refresh_threshold, rows):
    t = refresh_threshold // 1024
    return emit(
        f"fig10_sweep_t{t}k",
        f"Figure 10 (T={t}K): mean CMRPO (%) vs M and max depth L",
        rows,
        ["M", "SCA"] + [f"DRCAT_L{l}" for l in L_VALUES],
        parameters={"refresh_threshold": refresh_threshold},
        plan=build_plan(refresh_threshold),
    )


def artifacts():
    """JSON artifacts for ``repro verify`` (both thresholds)."""
    return [emit_threshold(t, build_rows(t)) for t in (32768, 16384)]


def test_fig10_counter_depth_sweep_t32k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(32768,), iterations=1, rounds=1
    )
    emit_threshold(32768, rows)
    by_m = {row["M"]: row for row in rows}
    # Paper shape (a): at M=512 static power dominates -> depth barely
    # matters and DRCAT loses its edge over SCA.
    import math

    big = [
        v
        for k, v in by_m[512].items()
        if k.startswith("DRCAT") and not math.isnan(v)
    ]
    assert max(big) - min(big) < 0.35 * max(big)
    # Paper shape (c): the global DRCAT minimum sits at moderate M.
    best_m = min(by_m, key=lambda m: _min_drcat(by_m[m]))
    assert best_m in (32, 64, 128)
    # DRCAT at its optimum beats SCA at the same M.
    assert _min_drcat(by_m[best_m]) < by_m[best_m]["SCA"]


def test_fig10_counter_depth_sweep_t16k(benchmark):
    rows16 = benchmark.pedantic(
        build_rows, args=(16384,), iterations=1, rounds=1
    )
    emit_threshold(16384, rows16)
    rows32 = build_rows(32768)
    by16 = {row["M"]: row for row in rows16}
    by32 = {row["M"]: row for row in rows32}
    # Paper shape (d): lowering T inflates SCA's CMRPO at its optimum far
    # more than DRCAT's minimum.
    sca_growth = by16[64]["SCA"] - by32[64]["SCA"]
    drcat_growth = _min_drcat(by16[64]) - _min_drcat(by32[64])
    assert sca_growth > drcat_growth
