"""Figure 3: row-address access frequency of one DRAM bank.

The paper plots per-row activation counts over one refresh interval for
blackscholes and facesim, showing a small row group dominating.  This
bench regenerates the histograms from the workload models and prints
their concentration statistics.
"""

import numpy as np
from _common import emit

from repro.workloads.suites import get_workload, row_frequency_histogram

N_ROWS = 65536


def build_histograms():
    out = {}
    for name in ("black", "face", "libq"):
        spec = get_workload(name)
        hist = row_frequency_histogram(spec, N_ROWS, int(spec.intensity))
        out[name] = hist
    return out


def concentration(hist, k):
    top = np.sort(hist)[::-1]
    return float(top[:k].sum()) / float(hist.sum())


def build_rows(hists):
    rows = []
    for name, hist in hists.items():
        rows.append(
            {
                "workload": name,
                "accesses": int(hist.sum()),
                "max_row_freq": int(hist.max()),
                "rows_touched": int((hist > 0).sum()),
                "top64_share": f"{concentration(hist, 64):.2f}",
                "top1024_share": f"{concentration(hist, 1024):.2f}",
            }
        )
    return rows


def emit_rows(rows):
    return emit(
        "fig3_row_frequency",
        "Figure 3: row access frequency in a 64K-row bank (one interval)",
        rows,
        [
            "workload",
            "accesses",
            "max_row_freq",
            "rows_touched",
            "top64_share",
            "top1024_share",
        ],
        parameters={"n_rows": N_ROWS},
        spec={"analytic": "fig3",
              "grid": {"workload": ["black", "face", "libq"],
                       "n_rows": N_ROWS}},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows(build_histograms()))]


def test_fig3_row_frequency(benchmark):
    hists = benchmark.pedantic(build_histograms, iterations=1, rounds=1)
    emit_rows(build_rows(hists))
    # Paper shape: blackscholes and facesim are dominated by a small
    # group of rows; libquantum is not.
    assert concentration(hists["black"], 64) > 0.5
    assert concentration(hists["face"], 64) > 0.5
    assert concentration(hists["libq"], 64) < 0.4
    # Hot rows see ~1E4-1E5 activations per interval as in the figure.
    assert hists["black"].max() > 5_000
