"""Figure 12: CMRPO vs refresh threshold T in {64K, 32K, 16K, 8K}.

The paper pairs each threshold with the minimum reliable PRA p
(0.001/0.002/0.003/0.005) and iso-area counter budgets (SCA_128 /
CAT_32-64 for larger T; doubled at T=8K).  Shape: DRCAT stays below 5%
for 64K-16K and below 10% at 8K with doubled counters; SCA grows
steeply as T shrinks; DRCAT <= PRCAT throughout.
"""

from _common import PRA_P_FOR_T, base_spec, emit, mean, plan_memo, run_bench_plan

from repro.experiments import Plan, SchemeSpec

WORKLOADS = ("comm1", "black", "face", "mum", "libq")

#: (T, SCA M, CAT M) — iso-area pairings from the paper's Figure 12.
THRESHOLD_CONFIGS = [
    (65536, 128, 32),
    (32768, 128, 64),
    (16384, 128, 64),
    (8192, 256, 128),
]


@plan_memo
def build_plan() -> Plan:
    """One iso-area grid per threshold row, concatenated."""
    plan = None
    for t, sca_m, cat_m in THRESHOLD_CONFIGS:
        pra_p = PRA_P_FOR_T[t]
        grid = Plan.grid(
            base_spec(refresh_threshold=t),
            scheme=[
                SchemeSpec.create("pra", "PRA", probability=pra_p),
                SchemeSpec.create("sca", "SCA", n_counters=sca_m),
                SchemeSpec.create("prcat", "PRCAT", n_counters=cat_m),
                SchemeSpec.create("drcat", "DRCAT", n_counters=cat_m),
            ],
            workload=list(WORKLOADS),
        )
        plan = grid if plan is None else plan + grid
    return plan


def build_rows():
    plan = build_plan()
    results = run_bench_plan(plan)
    cells = list(zip(plan.specs, plan.keys(), results))
    rows = []
    for t, sca_m, cat_m in THRESHOLD_CONFIGS:
        pra_p = PRA_P_FOR_T[t]
        row = {"T": f"{t // 1024}K"}
        means = {}
        for label in ("PRA", "SCA", "PRCAT", "DRCAT"):
            means[label] = 100.0 * mean(
                result.cmrpo
                for spec, (_w, cell_label), result in cells
                if spec.refresh_threshold == t and cell_label == label
            )
        row[f"PRA_{pra_p}"] = means["PRA"]
        row[f"SCA_{sca_m}"] = means["SCA"]
        row[f"PRCAT_{cat_m}"] = means["PRCAT"]
        row[f"DRCAT_{cat_m}"] = means["DRCAT"]
        # normalise keys for assertions
        row.update(means)
        rows.append(row)
    return rows


def emit_rows(rows):
    return emit(
        "fig12_thresholds",
        "Figure 12: mean CMRPO (%) vs refresh threshold (iso-area)",
        rows,
        ["T", "PRA", "SCA", "PRCAT", "DRCAT"],
        parameters={"workloads": ",".join(WORKLOADS)},
        plan=build_plan(),
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_fig12_threshold_sensitivity(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    by_t = {row["T"]: row for row in rows}
    # Paper shape: DRCAT < 5% down to 16K; < 10% at 8K (doubled M).  Our
    # drift model is harsher than the paper's traces (hot sets relocate
    # mid-epoch), so the 16K bound is relaxed to 7.5% (see
    # EXPERIMENTS.md).
    for t in ("64K", "32K"):
        assert by_t[t]["DRCAT"] < 5.0
    assert by_t["16K"]["DRCAT"] < 7.5
    assert by_t["8K"]["DRCAT"] < 10.0
    # DRCAT improves on PRA everywhere (paper: <5% vs ~12%).
    for row in rows:
        assert row["DRCAT"] < row["PRA"]
    # SCA's growth as T shrinks far outpaces DRCAT's.
    sca_growth = by_t["16K"]["SCA"] - by_t["32K"]["SCA"]
    drcat_growth = by_t["16K"]["DRCAT"] - by_t["32K"]["DRCAT"]
    assert sca_growth > drcat_growth
    # DRCAT <= PRCAT (dynamic reconfiguration beats periodic reset).
    for row in rows:
        assert row["DRCAT"] <= row["PRCAT"] * 1.15
