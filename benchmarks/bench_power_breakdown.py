"""Power figure (Section VII-B): CMRPO component breakdown per scheme.

The Figure 13/14-style power comparison: for each Figure 8 scheme at
T=32K and T=16K, the 18-workload mean of the three CMRPO power
components (dynamic counter/PRNG energy, counter SRAM leakage, victim-
row refresh energy) plus their total, all in mW per bank.  Reuses the
Figure 8/9 sweep, so the rows are means of exactly the runs those
figures plot.  Paper shape: PRA's cost is the TRNG energy drawn on
every activation (its refresh component is tiny); SCA's is the victim
refreshes of whole counter groups, exploding as T halves; the CAT
schemes keep every component small and their totals sit well below
SCA_64's.
"""

from _common import FIG8_LABELS, emit, fig8_plan, fig8_sweep

from repro.energy.cmrpo import mean_breakdown
from repro.workloads.suites import WORKLOAD_ORDER

THRESHOLDS = (32768, 16384)

COLUMNS = ["scheme", "T", "dynamic_mw", "static_mw", "refresh_mw",
           "total_mw"]


def scheme_breakdowns(refresh_threshold):
    """{label: 18-workload mean CMRPOBreakdown} at one threshold."""
    results = fig8_sweep(refresh_threshold)
    return {
        label: mean_breakdown(
            results[(workload, label)].cmrpo_breakdown
            for workload in WORKLOAD_ORDER
        )
        for label in FIG8_LABELS
    }


def build_rows():
    rows = []
    for threshold in THRESHOLDS:
        means = scheme_breakdowns(threshold)
        for label in FIG8_LABELS:
            b = means[label]
            rows.append({
                "scheme": label,
                "T": threshold,
                "dynamic_mw": b.dynamic_mw,
                "static_mw": b.static_mw,
                "refresh_mw": b.refresh_mw,
                "total_mw": b.total_mw,
            })
    return rows


def emit_rows(rows):
    return emit(
        "power_breakdown",
        "Power: mean CMRPO component breakdown (mW per bank)",
        rows,
        COLUMNS,
        parameters={"thresholds": ",".join(str(t) for t in THRESHOLDS)},
        plan=fig8_plan(THRESHOLDS[0]) + fig8_plan(THRESHOLDS[1]),
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_power_breakdown(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    by_key = {(row["scheme"], row["T"]): row for row in rows}
    for row in rows:
        # Components are non-negative and sum to the reported total.
        assert row["dynamic_mw"] >= 0 and row["static_mw"] >= 0
        assert row["refresh_mw"] >= 0
        total = row["dynamic_mw"] + row["static_mw"] + row["refresh_mw"]
        assert abs(total - row["total_mw"]) < 1e-9
    for t in THRESHOLDS:
        # Paper shape: CAT totals sit well below SCA_64's...
        assert by_key[("DRCAT_64", t)]["total_mw"] < \
            0.6 * by_key[("SCA_64", t)]["total_mw"]
        # ...PRA's cost is the TRNG draw per activation, not refreshes...
        pra = by_key[("PRA", t)]
        assert pra["dynamic_mw"] > 10.0 * pra["refresh_mw"]
        # ...while SCA's is dominated by over-refreshing whole groups.
        sca = by_key[("SCA_64", t)]
        assert sca["refresh_mw"] > sca["dynamic_mw"] + sca["static_mw"]
