"""Ablation: pre-split depth λ vs traversal cost (ours, Section IV-C).

The paper notes that starting the CAT from a complete balanced tree
with λ <= log2(M) levels cuts the worst-case SRAM traversal from L to
L - λ + 1 accesses at the cost of committing 2^(λ-1) counters up
front.  This ablation measures both effects: the mean SRAM reads per
lookup and the refresh rows, as λ varies.
"""

from _common import emit

from repro.core.counter_tree import CounterTree
from repro.core.thresholds import SplitThresholds
from repro.workloads.suites import get_workload

N_ROWS = 65536
M = 64
T = 2048  # pre-scaled threshold for a fast in-process run
L = 11


def run_lambda(presplit: int) -> dict:
    th = SplitThresholds.create(T, M, L, presplit_levels=presplit)
    tree = CounterTree(N_ROWS, th, track_weights=True)
    spec = get_workload("black")
    model = spec.stream_model(N_ROWS)
    rng = spec.rng(salt=99)
    layout = model.phase_layout(rng)
    rows = model.sample(rng, 30_000, layout)
    for row in rows:
        tree.access(int(row))
    return {
        "lambda": presplit,
        "initial_counters": 1 << (presplit - 1),
        "mean_sram_reads": tree.total_sram_reads / len(rows),
        "rows_refreshed": tree.total_rows_refreshed,
        "max_depth": max(tree.depth_histogram()),
    }


def build_rows():
    return [run_lambda(lam) for lam in (1, 2, 4, 6)]


def emit_rows(rows):
    return emit(
        "ablation_presplit",
        "Ablation: pre-split depth λ (M=64, L=11, blackscholes-like)",
        rows,
        [
            "lambda",
            "initial_counters",
            "mean_sram_reads",
            "rows_refreshed",
            "max_depth",
        ],
        parameters={"M": M, "T": T, "L": L},
        spec={"analytic": "ablation_presplit",
              "grid": {"lambda": [1, 2, 4, 6], "M": M, "T": T, "L": L}},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_ablation_presplit_depth(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    by_lambda = {row["lambda"]: row for row in rows}
    # Deeper pre-split shortens traversals (the paper's L - λ + 1 bound).
    assert (
        by_lambda[6]["mean_sram_reads"] < by_lambda[1]["mean_sram_reads"]
    )
    # Pre-splitting commits counters but must not inflate refresh rows
    # dramatically on a skewed workload.
    assert by_lambda[6]["rows_refreshed"] <= by_lambda[1]["rows_refreshed"] * 3
    # All variants reach deep levels for the hot region.
    for row in rows:
        assert row["max_depth"] >= L - 3
