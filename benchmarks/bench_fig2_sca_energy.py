"""Figure 2: SCA energy breakdown vs number of counters.

Sweeps M from 16 to 65536, printing counter energy, victim-refresh
energy and their total per 64 ms interval, plus the 2KB/8KB counter-
cache reference lines of [26].  The paper's shape: refresh dominates at
small M, counters dominate at large M, the total is minimised around
M = 128, and SCA128 undercuts the counter caches by >= 1.5 orders of
magnitude.
"""

from _common import emit

from repro.analysis.sca_energy import (
    counter_cache_energy_nj,
    energy_crossover_m,
    figure2_sweep,
    optimal_m,
)

ACCESSES_PER_INTERVAL = 582_000.0


def build_sweep():
    return figure2_sweep(accesses_per_interval=ACCESSES_PER_INTERVAL)


def build_rows(points):
    cache2 = counter_cache_energy_nj("2KB", ACCESSES_PER_INTERVAL)
    cache8 = counter_cache_energy_nj("8KB", ACCESSES_PER_INTERVAL)
    rows = [
        {
            "M": p.n_counters,
            "counter_nJ": f"{p.counter_energy_nj:.3e}",
            "refresh_nJ": f"{p.refresh_energy_nj:.3e}",
            "total_nJ": f"{p.total_nj:.3e}",
        }
        for p in points
    ]
    rows.append({"M": "2KB cache", "total_nJ": f"{cache2:.3e}"})
    rows.append({"M": "8KB cache", "total_nJ": f"{cache8:.3e}"})
    return rows


def emit_rows(rows):
    return emit(
        "fig2_sca_energy",
        "Figure 2: SCA energy overhead vs #counters (nJ per 64 ms interval)",
        rows,
        ["M", "counter_nJ", "refresh_nJ", "total_nJ"],
        parameters={"accesses_per_interval": ACCESSES_PER_INTERVAL},
        spec={"analytic": "fig2",
              "grid": {"M": "16..65536 (x2)",
                       "caches": ["2KB", "8KB"]}},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows(build_sweep()))]


def test_fig2_sca_energy_breakdown(benchmark):
    points = benchmark.pedantic(build_sweep, iterations=1, rounds=1)
    cache2 = counter_cache_energy_nj("2KB", ACCESSES_PER_INTERVAL)
    cache8 = counter_cache_energy_nj("8KB", ACCESSES_PER_INTERVAL)
    emit_rows(build_rows(points))
    by_m = {p.n_counters: p for p in points}
    # Paper shapes:
    assert optimal_m(points) in (64, 128, 256), "minimum should sit near 128"
    assert 16 < energy_crossover_m(points) < 65536
    assert by_m[16].refresh_energy_nj > by_m[16].counter_energy_nj
    assert by_m[65536].counter_energy_nj > by_m[65536].refresh_energy_nj
    # SCA128 beats the 2KB cache by >= 1 order of magnitude.
    assert by_m[128].total_nj * 10 < cache2
    assert by_m[128].total_nj * 30 < cache8
