"""Extension: dynamic comparison against the counter cache of [26].

Figure 2 and Section VII-A argue the per-row-counter + counter-cache
design is conservative: equal protection needs ~2048 cached counters per
bank (32KB), an order of magnitude more area than CAT_64, plus DRAM
traffic for counter misses.  This bench runs the actual counter-cache
scheme (implemented in ``repro.core.counter_cache``) against SCA and
DRCAT on skewed and streaming workloads and reports refresh rows, hit
rates, and the counter-fetch energy CAT avoids by construction.
"""

from _common import base_spec, emit, plan_memo, run_bench_plan, sim_kwargs

from repro.core.counter_cache import CounterCacheScheme
from repro.experiments import Plan, SchemeSpec
from repro.sim.simulator import scaled_threshold
from repro.workloads.suites import get_workload

WORKLOADS = ("black", "comm1", "libq")
T = 32768


def run_counter_cache(workload: str) -> dict:
    """Drive the counter cache directly with one bank-interval stream."""
    kw = sim_kwargs()
    spec = get_workload(workload)
    n_rows = 65536
    # 8x8 lines of 32 counters = the 32KB / 2048-counter reference point.
    scheme = CounterCacheScheme(
        n_rows, scaled_threshold(T, kw["scale"]), n_sets=8, n_ways=8
    )
    model = spec.stream_model(n_rows)
    rng = spec.rng(salt=17)
    layout = model.phase_layout(rng)
    n_accesses = int(spec.intensity / kw["scale"]) * kw["n_intervals"]
    for row in model.sample(rng, n_accesses, layout):
        scheme.access(int(row))
    return {
        "rows_per_interval": scheme.stats.rows_refreshed / kw["n_intervals"],
        "hit_rate": scheme.hit_rate,
        "miss_energy_nj_per_interval": (
            scheme.miss_energy_nj() / kw["n_intervals"]
        ),
    }


@plan_memo
def build_plan() -> Plan:
    """The simulated reference points (the cache itself runs bare)."""
    return Plan.grid(
        base_spec(refresh_threshold=T),
        workload=list(WORKLOADS),
        scheme=[
            SchemeSpec.create("sca", "SCA_128", n_counters=128),
            SchemeSpec.create("drcat", "DRCAT_64", n_counters=64),
        ],
    )


def build_rows():
    plan = build_plan()
    results = dict(zip(plan.keys(), run_bench_plan(plan)))
    rows = []
    for workload in WORKLOADS:
        cache = run_counter_cache(workload)
        sca = results[(workload, "SCA_128")]
        drcat = results[(workload, "DRCAT_64")]
        rows.append(
            {
                "workload": workload,
                "ccache_rows": cache["rows_per_interval"],
                "ccache_hit_rate": cache["hit_rate"],
                "ccache_fetch_nJ": cache["miss_energy_nj_per_interval"],
                "sca128_rows": sca.totals.rows_refreshed_per_bank_interval,
                "drcat64_rows": (
                    drcat.totals.rows_refreshed_per_bank_interval
                ),
            }
        )
    return rows


def emit_rows(rows):
    return emit(
        "counter_cache",
        "Extension: counter cache [26] (2048 entries) vs SCA_128 / DRCAT_64",
        rows,
        [
            "workload",
            "ccache_rows",
            "ccache_hit_rate",
            "ccache_fetch_nJ",
            "sca128_rows",
            "drcat64_rows",
        ],
        parameters={"refresh_threshold": T},
        plan=build_plan(),
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_counter_cache_comparison(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    by_wl = {row["workload"]: row for row in rows}
    # Exact per-row counting refreshes the *fewest* victim rows — that
    # was never the counter cache's weakness...
    for row in rows:
        assert row["ccache_rows"] <= row["sca128_rows"]
    # ...its weakness is the counter traffic: on streaming workloads the
    # cache thrashes and every miss costs a DRAM counter fetch whose
    # energy dwarfs the refresh savings (the Figure 2 argument).
    assert by_wl["libq"]["ccache_hit_rate"] < 0.6
    for row in rows:
        assert row["ccache_fetch_nJ"] > 10 * max(1.0, row["ccache_rows"])
