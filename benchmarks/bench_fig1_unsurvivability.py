"""Figure 1: PRA 5-year unsurvivability vs refresh threshold.

Regenerates the analytic grid (Eq. 1) for T ∈ {32K, 24K, 16K, 8K} and
p ∈ [0.001, 0.006] against the Chipkill 1E-4 reference, plus the
Section III-A Monte-Carlo result that an LFSR-driven PRA collapses to
unacceptable failure rates.
"""

from _common import emit

from repro.analysis.prng import TrueRandomPRNG
from repro.analysis.unsurvivability import (
    CHIPKILL_UNSURVIVABILITY,
    figure1_grid,
    lfsr_effective_failure_rate,
    monte_carlo_window_failures,
)

PROBABILITIES = (0.001, 0.002, 0.003, 0.004, 0.005, 0.006)


def build_figure1_rows():
    grid = figure1_grid(probabilities=PROBABILITIES)
    rows = []
    for t in sorted(grid, reverse=True):
        row = {"T": f"{t // 1024}k"}
        for p, value in grid[t].items():
            row[f"p={p}"] = f"{value:.2e}"
        row["beats_chipkill"] = ",".join(
            f"p={p}" for p in PROBABILITIES
            if grid[t][p] < CHIPKILL_UNSURVIVABILITY
        )
        rows.append(row)
    return rows


def emit_grid(rows):
    return emit(
        "fig1_unsurvivability",
        "Figure 1: PRA 5-year unsurvivability (Chipkill = 1E-4)",
        rows,
        ["T"] + [f"p={p}" for p in PROBABILITIES] + ["beats_chipkill"],
        spec={"analytic": "fig1",
              "grid": {"T": [32768, 24576, 16384, 8192],
                       "p": list(PROBABILITIES)}},
    )


def test_fig1_unsurvivability_grid(benchmark):
    rows = benchmark.pedantic(build_figure1_rows, iterations=1, rounds=1)
    emit_grid(rows)
    grid = figure1_grid(probabilities=PROBABILITIES)
    # Paper shape: T=32K survives at p >= 0.002; smaller T needs larger p.
    assert grid[32768][0.002] < CHIPKILL_UNSURVIVABILITY
    assert grid[16384][0.002] > CHIPKILL_UNSURVIVABILITY
    assert grid[16384][0.003] < CHIPKILL_UNSURVIVABILITY
    assert grid[8192][0.005] < CHIPKILL_UNSURVIVABILITY


def run_lfsr_study():
    t, p = 2048, 0.002
    trng = monte_carlo_window_failures(
        TrueRandomPRNG(seed=11), p, t, n_windows=500
    )
    closed_form = (1 - max(1, round(p * 512)) / 512) ** t
    return {
        "refresh_threshold": t,
        "p": p,
        "trng_rate": trng.failure_rate,
        "closed_form": closed_form,
        # The PRA comparator consumes 9 bits per access; a 9-bit LFSR
        # *never* emits the all-zero draw, so a phase-aligned attacker
        # makes PRA fail with certainty.  Wider registers are correlated
        # rather than degenerate, still far above the closed form.
        "lfsr9_rate": lfsr_effective_failure_rate(9, p, t),
        "lfsr16_rate": lfsr_effective_failure_rate(16, p, t),
    }


def emit_lfsr(data):
    return emit(
        "fig1_lfsr_study",
        "Section III-A: LFSR vs TRNG window failure rates "
        f"(T={data['refresh_threshold']}, p={data['p']})",
        [
            {
                "source": "TRNG Monte-Carlo",
                "failure_rate": f"{data['trng_rate']:.3e}",
            },
            {
                "source": "closed form (1-p)^T",
                "failure_rate": f"{data['closed_form']:.3e}",
            },
            {
                "source": "LFSR-16 exact (phase-aligned)",
                "failure_rate": f"{data['lfsr16_rate']:.3e}",
            },
            {
                "source": "LFSR-9 exact (phase-aligned)",
                "failure_rate": f"{data['lfsr9_rate']:.3e}",
            },
        ],
        ["source", "failure_rate"],
        parameters={
            "refresh_threshold": data["refresh_threshold"],
            "p": data["p"],
        },
        spec={"analytic": "fig1_lfsr",
              "grid": {"source": ["trng", "closed_form", "lfsr16",
                                  "lfsr9"]}},
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_grid(build_figure1_rows()), emit_lfsr(run_lfsr_study())]


def test_fig1_lfsr_monte_carlo(benchmark):
    data = benchmark.pedantic(run_lfsr_study, iterations=1, rounds=1)
    emit_lfsr(data)
    # Paper shape: the LFSR's correlated draws fail far more often.
    assert data["lfsr16_rate"] > data["closed_form"]
    assert data["lfsr9_rate"] == 1.0
