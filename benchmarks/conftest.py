"""Benchmark suite configuration."""

import sys
from pathlib import Path

# Make the sibling helper modules importable when pytest is invoked from
# the repository root (benchmarks/ is not a package).
sys.path.insert(0, str(Path(__file__).parent))
