"""Energy figure (Section VII-B): mitigation-energy saving vs baselines.

Companion to ``bench_power_breakdown``: converts each scheme's mean
CMRPO power into per-interval mitigation energy
(:func:`repro.analysis.sca_energy.mitigation_energy_nj`) and reports the
percentage saving relative to the two baselines the paper compares
against — SCA_64 (the prior counter scheme) and PRA (the probabilistic
scheme).  Positive = cheaper than the baseline; the baselines' own rows
read 0 against themselves.  Paper shape: the CAT schemes save a large
majority of SCA_64's mitigation energy at T=16K, where SCA's refresh
energy blows up.
"""

from _common import FIG8_LABELS, emit, fig8_plan

from bench_power_breakdown import THRESHOLDS, scheme_breakdowns

from repro.analysis.sca_energy import energy_savings_pct, mitigation_energy_nj

COLUMNS = ["scheme", "T", "energy_nj", "savings_vs_SCA_64",
           "savings_vs_PRA"]


def build_rows():
    rows = []
    for threshold in THRESHOLDS:
        means = scheme_breakdowns(threshold)
        energy = {
            label: mitigation_energy_nj(means[label].total_mw)
            for label in FIG8_LABELS
        }
        for label in FIG8_LABELS:
            rows.append({
                "scheme": label,
                "T": threshold,
                "energy_nj": energy[label],
                "savings_vs_SCA_64": energy_savings_pct(
                    energy["SCA_64"], energy[label]),
                "savings_vs_PRA": energy_savings_pct(
                    energy["PRA"], energy[label]),
            })
    return rows


def emit_rows(rows):
    return emit(
        "energy_savings",
        "Energy: per-interval mitigation-energy saving vs baselines (%)",
        rows,
        COLUMNS,
        parameters={"thresholds": ",".join(str(t) for t in THRESHOLDS)},
        plan=fig8_plan(THRESHOLDS[0]) + fig8_plan(THRESHOLDS[1]),
    )


def artifacts():
    """JSON artifacts for ``repro verify``."""
    return [emit_rows(build_rows())]


def test_energy_savings(benchmark):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit_rows(rows)
    by_key = {(row["scheme"], row["T"]): row for row in rows}
    for t in THRESHOLDS:
        # Baselines against themselves are exactly zero.
        assert by_key[("SCA_64", t)]["savings_vs_SCA_64"] == 0.0
        assert by_key[("PRA", t)]["savings_vs_PRA"] == 0.0
        # Paper shape: CAT schemes save a large share of SCA_64's energy.
        assert by_key[("DRCAT_64", t)]["savings_vs_SCA_64"] > 40.0
        assert by_key[("PRCAT_64", t)]["savings_vs_SCA_64"] > 40.0
    # SCA_64's own mitigation energy blows up as T halves.
    assert (by_key[("SCA_64", 16384)]["energy_nj"]
            > 1.5 * by_key[("SCA_64", 32768)]["energy_nj"])
