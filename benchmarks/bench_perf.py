"""Simulation-throughput benchmark: scalar vs. batched engine.

Writes ``benchmarks/results/BENCH_perf.json`` with, per scheme, the
accesses/second of the scalar and batched engines on the profile
workload (``mum``, the hot-path workload from the ISSUE-1 cProfile) and
the wall-clock of a Figure 8 mini-sweep, so the performance trajectory
is tracked across PRs.  A third baseline, ``seed_path``, replays the
seed repository's exact scalar hot loop (float64 merged matrix with
per-event ``int()`` casts) for an apples-to-apples speedup figure
against the pre-optimization code.

Usage::

    python benchmarks/bench_perf.py             # full run, writes JSON
    python benchmarks/bench_perf.py --smoke     # drcat-only, fast
    python benchmarks/bench_perf.py --check     # exit 1 unless the
                                                # batched engine is >=5x
                                                # the scalar engine on
                                                # drcat (regression gate)

The ``--check`` floor is half the 10x tentpole target, i.e. it fails on
a >2x throughput regression of the batched engine relative to where the
tentpole landed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import RESULTS_DIR  # noqa: E402

from repro.sim.runner import (  # noqa: E402
    DEFAULT_BANKS,
    DEFAULT_INTERVALS,
    DEFAULT_SCALE,
    simulate_workload,
    sweep,
)

PROFILE_WORKLOAD = "mum"
SCHEMES = ("drcat", "prcat", "sca", "pra", "ccache")
#: Minimum accepted batched/scalar speedup on drcat for ``--check``.
CHECK_MIN_SPEEDUP = 5.0
#: Mini-sweep used for the wall-clock trend (subset of Figure 8).
MINI_SWEEP_WORKLOADS = ("mum", "libq", "black", "comm1")
MINI_SWEEP_SCHEMES = ("pra", "sca", "prcat", "drcat")
#: Minimum accepted warm/cold speedup of the sweep-cell result cache
#: for ``--check`` (ISSUE-3 acceptance: >= 2x on a bench rerun).
CHECK_MIN_CACHE_SPEEDUP = 2.0


def _measure(engine: str, scheme: str, repeats: int) -> tuple[float, int]:
    """Best wall-clock and access count of ``simulate_workload``."""
    best = float("inf")
    accesses = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulate_workload(PROFILE_WORKLOAD, scheme, engine=engine)
        best = min(best, time.perf_counter() - start)
        accesses = result.totals.accesses
    return best, accesses


def _measure_seed_path(scheme: str, repeats: int) -> float:
    """Wall-clock of the seed repository's scalar hot loop.

    Reproduces the pre-optimization ``_run_streams`` body: a float64
    ``(time, bank, row)`` matrix merged with a stable argsort and walked
    row by row with ``int()`` casts into ``MemorySystem.access``.
    """
    import numpy as np

    from repro.dram.memory_system import MemorySystem
    from repro.experiments import ExperimentSpec, SchemeSpec
    from repro.sim.simulator import TraceDrivenSimulator
    from repro.workloads.suites import get_workload
    from repro.workloads.synthetic import interarrival_times_ns

    spec = get_workload(PROFILE_WORKLOAD)
    best = float("inf")
    for _ in range(repeats):
        sim = TraceDrivenSimulator(ExperimentSpec(
            scheme=SchemeSpec(scheme), workload=PROFILE_WORKLOAD,
            engine="scalar",
        ))
        start = time.perf_counter()
        memory = MemorySystem(
            sim.config, sim._scheme_factory(), epoch_s=sim.epoch_s
        )
        epoch_ns = sim.epoch_s * 1e9
        arrival_rng = np.random.Generator(np.random.PCG64(0xC0FFEE))
        for interval in range(sim.n_intervals):
            chunks = []
            for bank in range(sim.n_banks_simulated):
                rows = sim._interval_rows(spec, bank, interval)
                times = interarrival_times_ns(arrival_rng, len(rows), epoch_ns)
                chunk = np.empty((len(rows), 3))
                chunk[:, 0] = times + interval * epoch_ns
                chunk[:, 1] = bank
                chunk[:, 2] = rows
                chunks.append(chunk)
            merged = np.concatenate(chunks)
            merged = merged[np.argsort(merged[:, 0], kind="stable")]
            access = memory.access
            for time_ns, bank, row in merged:
                access(time_ns, int(bank), int(row))
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Measure all engines; return the JSON-ready report."""
    from repro.report.schema import ARRIVAL_SEED, SCHEMA_VERSION

    schemes = ("drcat",) if smoke else SCHEMES
    # Same schema envelope as the figure artifacts so tooling can
    # version-gate this report too; wall-clock numbers are machine-
    # dependent, which is why perf is not part of the golden store.
    report: dict = {
        "kind": "repro-perf-report",
        "schema_version": SCHEMA_VERSION,
        "seed": ARRIVAL_SEED,
        "workload": PROFILE_WORKLOAD,
        "sim_kwargs": {
            "scale": DEFAULT_SCALE,
            "n_banks": DEFAULT_BANKS,
            "n_intervals": DEFAULT_INTERVALS,
        },
        "schemes": {},
    }
    for scheme in schemes:
        scalar_s, accesses = _measure("scalar", scheme, repeats)
        batched_s, _ = _measure("batched", scheme, repeats)
        seed_s = _measure_seed_path(scheme, 1 if smoke else 2)
        report["schemes"][scheme] = {
            "accesses": accesses,
            "scalar_s": round(scalar_s, 4),
            "batched_s": round(batched_s, 4),
            "seed_path_s": round(seed_s, 4),
            "scalar_accesses_per_s": round(accesses / scalar_s),
            "batched_accesses_per_s": round(accesses / batched_s),
            "speedup_vs_scalar": round(scalar_s / batched_s, 2),
            "speedup_vs_seed_path": round(seed_s / batched_s, 2),
        }
    if not smoke:
        start = time.perf_counter()
        sweep(
            workloads=MINI_SWEEP_WORKLOADS,
            schemes=MINI_SWEEP_SCHEMES,
            engine="batched",
        )
        report["fig8_mini_sweep_s"] = round(time.perf_counter() - start, 3)
    report["sweep_cache"] = _measure_cache_speedup()
    return report


def _measure_cache_speedup() -> dict:
    """Cold vs warm wall-clock of a plan rerun through the result cache.

    Measures exactly what ``repro verify`` gains on a rerun after an
    unrelated edit: the cold pass simulates and populates the cache,
    the warm pass replays every cell from disk.
    """
    import shutil
    import tempfile

    from repro.experiments import Plan, ResultCache, SchemeSpec, run_plan

    plan = Plan.grid(
        base=None,
        workload=list(MINI_SWEEP_WORKLOADS),
        scheme=[SchemeSpec(kind) for kind in MINI_SWEEP_SCHEMES],
    )
    root = tempfile.mkdtemp(prefix="repro-cache-bench-")
    try:
        cache = ResultCache(root)
        start = time.perf_counter()
        cold_results = run_plan(plan, cache=cache)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_results = run_plan(plan, cache=ResultCache(root))
        warm_s = time.perf_counter() - start
        identical = all(
            a.to_dict() == b.to_dict()
            for a, b in zip(cold_results, warm_results)
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "n_cells": len(plan),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
        "warm_results_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="drcat only (fast CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless batched >= "
                             f"{CHECK_MIN_SPEEDUP}x scalar on drcat")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, repeats=args.repeats)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"== engine throughput on {report['workload']} ==")
    for scheme, row in report["schemes"].items():
        print(
            f"{scheme:7s} scalar {row['scalar_accesses_per_s']:>10,}/s   "
            f"batched {row['batched_accesses_per_s']:>10,}/s   "
            f"speedup {row['speedup_vs_scalar']:5.1f}x "
            f"(vs seed path {row['speedup_vs_seed_path']:5.1f}x)"
        )
    if "fig8_mini_sweep_s" in report:
        print(f"fig8 mini-sweep: {report['fig8_mini_sweep_s']} s")
    cache_row = report["sweep_cache"]
    print(
        f"sweep cache: cold {cache_row['cold_s']} s -> warm "
        f"{cache_row['warm_s']} s ({cache_row['speedup']}x, "
        f"{cache_row['n_cells']} cells, identical="
        f"{cache_row['warm_results_identical']})"
    )
    print(f"wrote {out}")

    if args.check:
        speedup = report["schemes"]["drcat"]["speedup_vs_scalar"]
        if speedup < CHECK_MIN_SPEEDUP:
            print(
                f"FAIL: drcat batched speedup {speedup}x is below the "
                f"{CHECK_MIN_SPEEDUP}x regression floor"
            )
            return 1
        print(f"check ok: drcat batched speedup {speedup}x")
        if not cache_row["warm_results_identical"]:
            print("FAIL: warm cache results differ from cold run")
            return 1
        if cache_row["speedup"] < CHECK_MIN_CACHE_SPEEDUP:
            print(
                f"FAIL: sweep-cache warm speedup {cache_row['speedup']}x "
                f"is below the {CHECK_MIN_CACHE_SPEEDUP}x floor"
            )
            return 1
        print(f"check ok: sweep-cache warm speedup {cache_row['speedup']}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
