"""Simulation-throughput benchmark: engines, caches, sweep throughput.

Writes ``benchmarks/results/BENCH_perf.json`` (and a copy at the repo
root, committed for cross-PR trajectory tracking) with, per scheme, the
accesses/second of the scalar and batched engines on the profile
workload (``mum``, the hot-path workload from the ISSUE-1 cProfile),
the wall-clock of a Figure 8 mini-sweep, the warm/cold behaviour of the
sweep-cell result cache (ISSUE-3), and the sweep-throughput section
(ISSUE-5): a scheme-axis figure grid timed with the activation-trace
store disabled (the PR-4 cold baseline), cold (populating), and warm
(every stream memmap-served) — plus the persistent-pool reuse gain.  A
``seed_path`` baseline replays the seed repository's exact scalar hot
loop (float64 merged matrix with per-event ``int()`` casts) for an
apples-to-apples speedup figure against the pre-optimization code.

The ISSUE-8 sections measure the compiled tier: ``jit`` compares the
jit engine against batched per scheme (kernels warmed first, so the
numbers exclude compile time), and ``fused_sweep`` compares fused
multi-scheme evaluation against the per-cell path on the warm
trace-store grid.  Their speedup floors are gated only where numba is
actually installed — the pure-python fallback is a correctness tier,
not a fast one — but the measured numbers are always reported.

The engine and result-cache sections pin ``REPRO_TRACE_STORE=0``, and
the legacy sweep sections pin ``REPRO_FUSED_SWEEP=0``, so their numbers
stay comparable with earlier PRs; only the dedicated sections exercise
the store and the fused path.

Usage::

    python benchmarks/bench_perf.py             # full run, writes JSON
    python benchmarks/bench_perf.py --smoke     # trimmed grids, fast
    python benchmarks/bench_perf.py --check     # exit 1 on regression:
                                                #  batched < 5x scalar,
                                                #  result-cache warm < 2x,
                                                #  trace-store warm < 3x,
                                                #  fused < 1.5x per-cell,
                                                #  pool reuse < 1.1x,
                                                #  (numba only) jit < 3x
                                                #  batched on drcat and
                                                #  < 2x on ccache

The engine ``--check`` floor is half the 10x tentpole target, i.e. it
fails on a >2x throughput regression of the batched engine relative to
where that tentpole landed; the trace-store floor is the ISSUE-5
acceptance criterion (warm scheme-axis grid >= 3x the store-off cold
baseline); the jit and fused floors are the ISSUE-8 acceptance
criteria.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import RESULTS_DIR  # noqa: E402

from repro.sim.runner import (  # noqa: E402
    DEFAULT_BANKS,
    DEFAULT_INTERVALS,
    DEFAULT_SCALE,
    simulate_workload,
    sweep,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

PROFILE_WORKLOAD = "mum"
SCHEMES = ("drcat", "prcat", "sca", "pra", "ccache")
#: Minimum accepted batched/scalar speedup on drcat for ``--check``.
CHECK_MIN_SPEEDUP = 5.0
#: Mini-sweep used for the wall-clock trend (subset of Figure 8).
MINI_SWEEP_WORKLOADS = ("mum", "libq", "black", "comm1")
MINI_SWEEP_SCHEMES = ("pra", "sca", "prcat", "drcat")
#: Minimum accepted warm/cold speedup of the sweep-cell result cache
#: for ``--check`` (ISSUE-3 acceptance: >= 2x on a bench rerun).
CHECK_MIN_CACHE_SPEEDUP = 2.0
#: Minimum accepted trace-store warm speedup of the scheme-axis grid
#: over the store-off baseline for ``--check`` (ISSUE-5 acceptance).
CHECK_MIN_TRACE_SPEEDUP = 3.0
#: Minimum accepted reused-pool speedup over a cold spawn+prime for
#: ``--check``.  Deliberately modest: fork-based spawn is cheap, the
#: floor guards the *priming* contract (a reused pool never re-pays
#: per-worker warmup), not a large constant factor.
CHECK_MIN_POOL_REUSE = 1.1
#: ISSUE-8 jit-engine floors, gated only where numba is installed: the
#: compiled CounterTree batch kernel must beat the numpy batched engine
#: >= 3x on drcat, the compiled counter-cache walk >= 2x on ccache.
CHECK_MIN_JIT_TREE_SPEEDUP = 3.0
CHECK_MIN_JIT_CCACHE_SPEEDUP = 2.0
#: ISSUE-8 fused-evaluation floor: the fused scheme-axis grid must
#: beat the unfused store-off per-cell path (N stream generations)
#: >= 1.5x.  Engine-independent — the dedup is structural — so the
#: floor binds with and without numba.
CHECK_MIN_FUSED_SPEEDUP = 1.5
#: The gated sweep-throughput grid: a counter-budget scheme axis (PRA,
#: the SCA M-sweep of Figure 10, PRCAT) crossed with the two paper
#: thresholds — 14 scheme-side cells sharing one workload stream.  The
#: memory-intensive ``libq`` keeps the gate's per-cell simulation share
#: stable across machines; the full run also reports (ungated) ratios
#: for additional streams so the spread is visible in the artifact.
TRACE_SWEEP_WORKLOADS = ("libq",)
TRACE_SWEEP_EXTRA_WORKLOADS = ("str", "comm2")
TRACE_SWEEP_M = (32, 64, 128, 256, 512)
TRACE_SWEEP_THRESHOLDS = (32768, 16384)


@contextlib.contextmanager
def _scoped_env(values: dict):
    """Apply env overrides for one measurement (None = unset)."""
    saved = {k: os.environ.get(k) for k in values}
    for key, value in values.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def _measure(engine: str, scheme: str, repeats: int) -> tuple[float, int]:
    """Best wall-clock and access count of ``simulate_workload``."""
    best = float("inf")
    accesses = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulate_workload(PROFILE_WORKLOAD, scheme, engine=engine)
        best = min(best, time.perf_counter() - start)
        accesses = result.totals.accesses
    return best, accesses


def _measure_seed_path(scheme: str, repeats: int) -> float:
    """Wall-clock of the seed repository's scalar hot loop.

    Reproduces the pre-optimization ``_run_streams`` body: a float64
    ``(time, bank, row)`` matrix merged with a stable argsort and walked
    row by row with ``int()`` casts into ``MemorySystem.access``.
    """
    import numpy as np

    from repro.dram.memory_system import MemorySystem
    from repro.experiments import ExperimentSpec, SchemeSpec
    from repro.sim.simulator import TraceDrivenSimulator
    from repro.workloads.suites import get_workload
    from repro.workloads.synthetic import interarrival_times_ns

    spec = get_workload(PROFILE_WORKLOAD)
    best = float("inf")
    for _ in range(repeats):
        sim = TraceDrivenSimulator(ExperimentSpec(
            scheme=SchemeSpec(scheme), workload=PROFILE_WORKLOAD,
            engine="scalar",
        ))
        start = time.perf_counter()
        memory = MemorySystem(
            sim.config, sim._scheme_factory(), epoch_s=sim.epoch_s
        )
        epoch_ns = sim.epoch_s * 1e9
        arrival_rng = np.random.Generator(np.random.PCG64(0xC0FFEE))
        for interval in range(sim.n_intervals):
            chunks = []
            for bank in range(sim.n_banks_simulated):
                rows = sim._interval_rows(spec, bank, interval)
                times = interarrival_times_ns(arrival_rng, len(rows), epoch_ns)
                chunk = np.empty((len(rows), 3))
                chunk[:, 0] = times + interval * epoch_ns
                chunk[:, 1] = bank
                chunk[:, 2] = rows
                chunks.append(chunk)
            merged = np.concatenate(chunks)
            merged = merged[np.argsort(merged[:, 0], kind="stable")]
            access = memory.access
            for time_ns, bank, row in merged:
                access(time_ns, int(bank), int(row))
        best = min(best, time.perf_counter() - start)
    return best


def _trace_sweep_plan(workloads=TRACE_SWEEP_WORKLOADS):
    """The scheme-axis grid of the sweep-throughput section."""
    from repro.experiments import ExperimentSpec, Plan, SchemeSpec

    schemes = [SchemeSpec.create("pra", "PRA")] + [
        SchemeSpec.create("sca", f"SCA_{m}", n_counters=m)
        for m in TRACE_SWEEP_M
    ] + [SchemeSpec.create("prcat", "PRCAT_64", n_counters=64)]
    # scale=8 (between the ci and full fidelities): bigger cells
    # amortize per-cell setup and scheduler noise, which both raises
    # the true warm ratio and stabilizes the gated measurement on
    # loaded CI runners.
    base = ExperimentSpec(
        scheme=SchemeSpec("drcat"), scale=8.0, n_banks=1, n_intervals=2,
    )
    return Plan.grid(
        base,
        workload=list(workloads),
        scheme=schemes,
        refresh_threshold=list(TRACE_SWEEP_THRESHOLDS),
    ), len(workloads)


def _measure_trace_sweep(smoke: bool) -> dict:
    """Store-off vs cold-store vs warm-store wall-clock of one grid.

    All passes run serially with the result cache off, so the numbers
    isolate exactly what the trace store changes: the store-off pass is
    the PR-4 cold baseline (every cell generates its streams), the cold
    pass generates once per unique stream while populating the store,
    and the warm pass serves every stream from the memmaps.  Pass order
    is cold, warm, then off, so the off baseline gets fully warmed
    Python/numpy caches — the conservative direction for the gate.
    """
    import shutil
    import tempfile

    from repro.experiments import run_plan
    from repro.sim import tracestore

    import gc

    plan, n_streams = _trace_sweep_plan()
    root = tempfile.mkdtemp(prefix="repro-trace-bench-")

    def timed(fn):
        # GC pauses land arbitrarily inside a ~100 ms pass and are the
        # dominant noise source for the gated ratio; collect up front
        # and pause the collector for the measurement (timeit-style).
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            results = fn()
            return time.perf_counter() - start, results
        finally:
            gc.enable()

    try:
        # Fusion off: this section's ratios predate the fused path and
        # stay comparable with earlier PRs; fusion would speed up the
        # store-off baseline too (the fused lead generates each shared
        # stream once) and make the warm ratio measure two effects.
        with _scoped_env({"REPRO_TRACE_STORE_DIR": root,
                          "REPRO_FUSED_SWEEP": "0"}):
            with _scoped_env({"REPRO_TRACE_STORE": "1"}):
                tracestore._STORES.clear()
                cold_s, cold_results = timed(lambda: run_plan(plan))
            # Best-of-3 for the gated passes, with warm and off rounds
            # *interleaved* so machine drift (a CI runner warming up,
            # background load) hits both sides of the ratio equally;
            # taking the minimum of both sides is conservative (it
            # lowers the numerator as much as the denominator).
            warm_times: list[float] = []
            off_times: list[float] = []
            warm_results = off_results = None
            for _ in range(3):
                with _scoped_env({"REPRO_TRACE_STORE": "1"}):
                    elapsed, results = timed(lambda: run_plan(plan))
                    warm_times.append(elapsed)
                    warm_results = warm_results or results
                with _scoped_env({"REPRO_TRACE_STORE": "0"}):
                    elapsed, results = timed(lambda: run_plan(plan))
                    off_times.append(elapsed)
                    off_results = off_results or results
            warm_s, off_s = min(warm_times), min(off_times)
        identical = all(
            a.to_dict() == b.to_dict() == c.to_dict()
            for a, b, c in zip(off_results, cold_results, warm_results)
        )
    finally:
        tracestore._STORES.clear()
        shutil.rmtree(root, ignore_errors=True)
    report = {
        "n_cells": len(plan),
        "unique_streams": n_streams,
        "workloads": list(TRACE_SWEEP_WORKLOADS),
        "store_off_s": round(off_s, 4),
        "store_cold_s": round(cold_s, 4),
        "store_warm_s": round(warm_s, 4),
        "cold_speedup_vs_off": round(off_s / cold_s, 2) if cold_s else 0.0,
        "warm_speedup_vs_off": round(off_s / warm_s, 2) if warm_s else 0.0,
        "results_identical": identical,
    }
    if not smoke:
        report["extra_workloads"] = {
            workload: _measure_trace_workload(workload)
            for workload in TRACE_SWEEP_EXTRA_WORKLOADS
        }
    return report


def _measure_trace_workload(workload: str) -> dict:
    """Ungated off/warm ratio of one extra workload's scheme-axis grid."""
    import shutil
    import tempfile

    from repro.experiments import run_plan
    from repro.sim import tracestore

    plan, _ = _trace_sweep_plan((workload,))
    root = tempfile.mkdtemp(prefix="repro-trace-bench-")
    try:
        with _scoped_env({"REPRO_TRACE_STORE_DIR": root,
                          "REPRO_TRACE_STORE": "1",
                          "REPRO_FUSED_SWEEP": "0"}):
            tracestore._STORES.clear()
            run_plan(plan)
            start = time.perf_counter()
            run_plan(plan)
            warm_s = time.perf_counter() - start
        with _scoped_env({"REPRO_TRACE_STORE": "0",
                          "REPRO_FUSED_SWEEP": "0"}):
            start = time.perf_counter()
            run_plan(plan)
            off_s = time.perf_counter() - start
    finally:
        tracestore._STORES.clear()
        shutil.rmtree(root, ignore_errors=True)
    return {
        "store_off_s": round(off_s, 4),
        "store_warm_s": round(warm_s, 4),
        "warm_speedup_vs_off": round(off_s / warm_s, 2) if warm_s else 0.0,
    }


def _pool_bench_plan():
    """A deliberately small pooled plan (the pool-reuse measurement).

    Pool lifecycle cost — spawn plus per-worker priming — is a fixed
    cost per cold start; against the ~seconds-long trace-sweep grid it
    vanishes below timer noise, which is exactly how the reuse ratio
    regressed to 1.0 unnoticed.  A small grid keeps the simulation
    share low enough that the lifecycle difference is measurable, which
    is the shape that matters: the persistent pool exists for the
    many-small-plans pattern (``repro verify`` runs 14 bench modules
    back to back).
    """
    from repro.experiments import ExperimentSpec, Plan, SchemeSpec

    base = ExperimentSpec(
        scheme=SchemeSpec("drcat"), scale=96.0, n_banks=1, n_intervals=1,
    )
    return Plan.grid(
        base,
        scheme=[SchemeSpec(kind) for kind in MINI_SWEEP_SCHEMES],
        refresh_threshold=list(TRACE_SWEEP_THRESHOLDS),
    )


def _measure_pool_reuse() -> dict:
    """Cold (spawn+prime) vs reused wall-clock of a pooled plan run.

    Measures what the persistent :class:`SweepPool` removes from every
    plan after the first: a cold pass tears the pool down first and so
    pays worker spawn plus per-worker priming (sim-stack imports, jit
    kernel warmup); the reused pass submits straight to live, primed
    workers.  Best-of-3 with the passes interleaved, so machine drift
    hits both sides of the gated ratio equally.  The trace store and
    fusion are pinned off so only pool lifecycle differs.
    """
    from repro.experiments import run_plan
    from repro.experiments.run import SweepPool

    plan = _pool_bench_plan()
    cold_times: list[float] = []
    reused_times: list[float] = []
    with _scoped_env({"REPRO_TRACE_STORE": "0",
                      "REPRO_FUSED_SWEEP": "0"}):
        for _ in range(3):
            SweepPool.shutdown()
            start = time.perf_counter()
            run_plan(plan, workers=2)
            cold_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            run_plan(plan, workers=2)
            reused_times.append(time.perf_counter() - start)
        SweepPool.shutdown()
    cold_s, reused_s = min(cold_times), min(reused_times)
    return {
        "n_cells": len(plan),
        "workers": 2,
        "cold_spawn_s": round(cold_s, 4),
        "reused_s": round(reused_s, 4),
        "reuse_speedup": round(cold_s / reused_s, 2) if reused_s else 0.0,
    }


def _measure_jit(schemes, repeats: int) -> dict:
    """Per-scheme jit-vs-batched throughput (ISSUE-8 compiled tier).

    Kernels are warmed before any clock starts, so with numba installed
    the numbers measure steady-state kernel throughput, not compile
    time.  Without numba the jit engine runs its pure-python fallback —
    the section still reports honest (slower) ratios, flagged by
    ``numba_available`` so readers and the ``--check`` gate know which
    tier was measured.
    """
    from repro.core.jitkern import NUMBA_VERSION, numba_available, warm_kernels

    warm_kernels()
    if not numba_available():
        # Fallback-tier numbers are informational (no gate binds):
        # best-of-1 keeps the un-jitted python kernels off the bench's
        # critical path.
        repeats = 1
    section: dict = {
        "numba_available": numba_available(),
        "numba_version": NUMBA_VERSION,
        "schemes": {},
    }
    for scheme in schemes:
        batched_s, accesses = _measure("batched", scheme, repeats)
        jit_s, _ = _measure("jit", scheme, repeats)
        section["schemes"][scheme] = {
            "accesses": accesses,
            "batched_s": round(batched_s, 4),
            "jit_s": round(jit_s, 4),
            "jit_accesses_per_s": round(accesses / jit_s),
            "speedup_vs_batched": round(batched_s / jit_s, 2),
        }
    return section


def _measure_fused_sweep() -> dict:
    """Fused vs per-cell evaluation of the scheme-axis grid (ISSUE-8).

    Fusion dedupes the per-cell stream work *within a run*: grid cells
    sharing a stream key get one generation and one in-memory install
    source instead of N, with no store directory needed.  The gated
    ratio is therefore fused vs the store-off per-cell path (N full
    generations — the pre-trace-store baseline, and still the path any
    store-less environment takes).  The store-on baselines are also
    reported, honestly: against a *cold* store fusion wins only the
    publication overhead, and against a *warm* store the paths converge
    to parity minus one generation — the store already dedupes
    generation across cells, and the per-cell bank-model and
    scheme-kernel replay that dominates a warm cell is semantically
    per-cell (each scheme's refresh commands feed back into its own
    bank timing), so no evaluation strategy can legally share it.

    The grid runs on the jit engine where numba is installed (the fused
    path's production configuration) and on batched otherwise.
    Best-of-3 with the passes interleaved; the cold pass gets a fresh
    store directory each round.
    """
    import shutil
    import tempfile
    from dataclasses import replace

    from repro.core.jitkern import numba_available
    from repro.experiments import run_plan
    from repro.sim import tracestore

    engine = "jit" if numba_available() else "batched"
    base_plan, _ = _trace_sweep_plan()
    plan = [replace(spec, engine=engine) for spec in base_plan.specs]
    off_times: list[float] = []
    cold_times: list[float] = []
    warm_times: list[float] = []
    fused_times: list[float] = []
    off_results = cold_results = warm_results = fused_results = None
    roots: list[str] = []
    try:
        for _ in range(3):
            root = tempfile.mkdtemp(prefix="repro-fused-bench-")
            roots.append(root)
            with _scoped_env({"REPRO_TRACE_STORE": "0",
                              "REPRO_FUSED_SWEEP": "0"}):
                start = time.perf_counter()
                results = run_plan(plan)
                off_times.append(time.perf_counter() - start)
                off_results = off_results or results
            with _scoped_env({"REPRO_TRACE_STORE_DIR": root,
                              "REPRO_TRACE_STORE": "1",
                              "REPRO_FUSED_SWEEP": "0"}):
                tracestore._STORES.clear()
                start = time.perf_counter()
                results = run_plan(plan)
                cold_times.append(time.perf_counter() - start)
                cold_results = cold_results or results
                start = time.perf_counter()
                results = run_plan(plan)
                warm_times.append(time.perf_counter() - start)
                warm_results = warm_results or results
            with _scoped_env({"REPRO_TRACE_STORE": "0",
                              "REPRO_FUSED_SWEEP": "1"}):
                start = time.perf_counter()
                results = run_plan(plan)
                fused_times.append(time.perf_counter() - start)
                fused_results = fused_results or results
        identical = all(
            a.to_dict() == b.to_dict() == c.to_dict() == d.to_dict()
            for a, b, c, d in zip(off_results, cold_results,
                                  warm_results, fused_results)
        )
    finally:
        tracestore._STORES.clear()
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)
    off_s, cold_s = min(off_times), min(cold_times)
    warm_s, fused_s = min(warm_times), min(fused_times)
    return {
        "n_cells": len(plan),
        "engine": engine,
        "unfused_off_s": round(off_s, 4),
        "unfused_cold_s": round(cold_s, 4),
        "unfused_warm_s": round(warm_s, 4),
        "fused_s": round(fused_s, 4),
        "fused_speedup_vs_off": round(off_s / fused_s, 2) if fused_s else 0.0,
        "fused_vs_cold": round(cold_s / fused_s, 2) if fused_s else 0.0,
        "fused_vs_warm": round(warm_s / fused_s, 2) if fused_s else 0.0,
        "results_identical": identical,
    }


def run_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Measure all engines; return the JSON-ready report."""
    from repro.report.schema import ARRIVAL_SEED, SCHEMA_VERSION

    schemes = ("drcat",) if smoke else SCHEMES
    # Same schema envelope as the figure artifacts so tooling can
    # version-gate this report too; wall-clock numbers are machine-
    # dependent, which is why perf is not part of the golden store.
    report: dict = {
        "kind": "repro-perf-report",
        "schema_version": SCHEMA_VERSION,
        "seed": ARRIVAL_SEED,
        "workload": PROFILE_WORKLOAD,
        "sim_kwargs": {
            "scale": DEFAULT_SCALE,
            "n_banks": DEFAULT_BANKS,
            "n_intervals": DEFAULT_INTERVALS,
        },
        "schemes": {},
    }
    with _scoped_env({"REPRO_TRACE_STORE": "0"}):
        # Engine + result-cache sections run store-off so their numbers
        # stay comparable with the PR-1/PR-3 trajectory.
        for scheme in schemes:
            scalar_s, accesses = _measure("scalar", scheme, repeats)
            batched_s, _ = _measure("batched", scheme, repeats)
            seed_s = _measure_seed_path(scheme, 1 if smoke else 2)
            report["schemes"][scheme] = {
                "accesses": accesses,
                "scalar_s": round(scalar_s, 4),
                "batched_s": round(batched_s, 4),
                "seed_path_s": round(seed_s, 4),
                "scalar_accesses_per_s": round(accesses / scalar_s),
                "batched_accesses_per_s": round(accesses / batched_s),
                "speedup_vs_scalar": round(scalar_s / batched_s, 2),
                "speedup_vs_seed_path": round(seed_s / batched_s, 2),
            }
        if not smoke:
            start = time.perf_counter()
            sweep(
                workloads=MINI_SWEEP_WORKLOADS,
                schemes=MINI_SWEEP_SCHEMES,
                engine="batched",
            )
            report["fig8_mini_sweep_s"] = round(
                time.perf_counter() - start, 3
            )
        report["sweep_cache"] = _measure_cache_speedup()
        report["jit"] = _measure_jit(schemes, repeats)
    report["trace_sweep"] = _measure_trace_sweep(smoke)
    report["fused_sweep"] = _measure_fused_sweep()
    report["sweep_pool"] = _measure_pool_reuse()
    return report


def _measure_cache_speedup() -> dict:
    """Cold vs warm wall-clock of a plan rerun through the result cache.

    Measures exactly what ``repro verify`` gains on a rerun after an
    unrelated edit: the cold pass simulates and populates the cache,
    the warm pass replays every cell from disk.
    """
    import shutil
    import tempfile

    from repro.experiments import Plan, ResultCache, SchemeSpec, run_plan

    plan = Plan.grid(
        base=None,
        workload=list(MINI_SWEEP_WORKLOADS),
        scheme=[SchemeSpec(kind) for kind in MINI_SWEEP_SCHEMES],
    )
    root = tempfile.mkdtemp(prefix="repro-cache-bench-")
    try:
        cache = ResultCache(root)
        start = time.perf_counter()
        cold_results = run_plan(plan, cache=cache)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_results = run_plan(plan, cache=ResultCache(root))
        warm_s = time.perf_counter() - start
        identical = all(
            a.to_dict() == b.to_dict()
            for a, b in zip(cold_results, warm_results)
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "n_cells": len(plan),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
        "warm_results_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="drcat only (fast CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless batched >= "
                             f"{CHECK_MIN_SPEEDUP}x scalar on drcat")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, repeats=args.repeats)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_perf.json"
    payload = json.dumps(report, indent=2) + "\n"
    out.write_text(payload, encoding="utf-8")
    # Repo-root copy, committed so the perf trajectory is reviewable
    # across PRs without digging through CI artifacts.
    (REPO_ROOT / "BENCH_perf.json").write_text(payload, encoding="utf-8")

    print(f"== engine throughput on {report['workload']} ==")
    for scheme, row in report["schemes"].items():
        print(
            f"{scheme:7s} scalar {row['scalar_accesses_per_s']:>10,}/s   "
            f"batched {row['batched_accesses_per_s']:>10,}/s   "
            f"speedup {row['speedup_vs_scalar']:5.1f}x "
            f"(vs seed path {row['speedup_vs_seed_path']:5.1f}x)"
        )
    if "fig8_mini_sweep_s" in report:
        print(f"fig8 mini-sweep: {report['fig8_mini_sweep_s']} s")
    jit = report["jit"]
    tier = (f"numba {jit['numba_version']}" if jit["numba_available"]
            else "pure-python fallback")
    print(f"== jit engine ({tier}) ==")
    for scheme, row in jit["schemes"].items():
        print(
            f"{scheme:7s} batched {row['batched_s']:8.4f} s   "
            f"jit {row['jit_s']:8.4f} s   "
            f"speedup {row['speedup_vs_batched']:5.2f}x"
        )
    cache_row = report["sweep_cache"]
    print(
        f"sweep cache: cold {cache_row['cold_s']} s -> warm "
        f"{cache_row['warm_s']} s ({cache_row['speedup']}x, "
        f"{cache_row['n_cells']} cells, identical="
        f"{cache_row['warm_results_identical']})"
    )
    trace = report["trace_sweep"]
    print(
        f"trace sweep ({trace['n_cells']} cells over "
        f"{trace['unique_streams']} stream(s)): store-off "
        f"{trace['store_off_s']} s, cold-store {trace['store_cold_s']} s "
        f"({trace['cold_speedup_vs_off']}x), warm-store "
        f"{trace['store_warm_s']} s ({trace['warm_speedup_vs_off']}x), "
        f"identical={trace['results_identical']}"
    )
    fused = report["fused_sweep"]
    print(
        f"fused sweep ({fused['n_cells']} cells, engine {fused['engine']}): "
        f"per-cell store-off {fused['unfused_off_s']} s / cold-store "
        f"{fused['unfused_cold_s']} s / warm-store "
        f"{fused['unfused_warm_s']} s -> fused {fused['fused_s']} s "
        f"({fused['fused_speedup_vs_off']}x vs off, "
        f"{fused['fused_vs_cold']}x vs cold, {fused['fused_vs_warm']}x "
        f"vs warm, identical={fused['results_identical']})"
    )
    pool = report["sweep_pool"]
    print(
        f"sweep pool ({pool['n_cells']} cells, {pool['workers']} workers): "
        f"cold spawn {pool['cold_spawn_s']} s -> reused "
        f"{pool['reused_s']} s ({pool['reuse_speedup']}x)"
    )
    print(f"wrote {out} (+ repo-root copy)")

    if args.check:
        speedup = report["schemes"]["drcat"]["speedup_vs_scalar"]
        if speedup < CHECK_MIN_SPEEDUP:
            print(
                f"FAIL: drcat batched speedup {speedup}x is below the "
                f"{CHECK_MIN_SPEEDUP}x regression floor"
            )
            return 1
        print(f"check ok: drcat batched speedup {speedup}x")
        if not cache_row["warm_results_identical"]:
            print("FAIL: warm cache results differ from cold run")
            return 1
        if cache_row["speedup"] < CHECK_MIN_CACHE_SPEEDUP:
            print(
                f"FAIL: sweep-cache warm speedup {cache_row['speedup']}x "
                f"is below the {CHECK_MIN_CACHE_SPEEDUP}x floor"
            )
            return 1
        print(f"check ok: sweep-cache warm speedup {cache_row['speedup']}x")
        if not trace["results_identical"]:
            print("FAIL: trace-store results differ from store-off run")
            return 1
        if trace["warm_speedup_vs_off"] < CHECK_MIN_TRACE_SPEEDUP:
            print(
                f"FAIL: trace-store warm sweep speedup "
                f"{trace['warm_speedup_vs_off']}x is below the "
                f"{CHECK_MIN_TRACE_SPEEDUP}x floor"
            )
            return 1
        print(
            f"check ok: trace-store warm sweep speedup "
            f"{trace['warm_speedup_vs_off']}x"
        )
        if not fused["results_identical"]:
            print("FAIL: fused sweep results differ from per-cell run")
            return 1
        if fused["fused_speedup_vs_off"] < CHECK_MIN_FUSED_SPEEDUP:
            print(
                f"FAIL: fused sweep speedup "
                f"{fused['fused_speedup_vs_off']}x over the per-cell "
                f"path is below the {CHECK_MIN_FUSED_SPEEDUP}x floor"
            )
            return 1
        print(
            f"check ok: fused sweep speedup "
            f"{fused['fused_speedup_vs_off']}x over the per-cell path"
        )
        if pool["reuse_speedup"] < CHECK_MIN_POOL_REUSE:
            print(
                f"FAIL: pool reuse speedup {pool['reuse_speedup']}x is "
                f"below the {CHECK_MIN_POOL_REUSE}x floor"
            )
            return 1
        print(f"check ok: pool reuse speedup {pool['reuse_speedup']}x")
        # The compiled-tier speedup floors only bind where numba is
        # installed; the fallback tier is gated on correctness (above,
        # via fused identity, and by `repro verify --engine jit`), not
        # on speed.
        if jit["numba_available"]:
            floors = {"drcat": CHECK_MIN_JIT_TREE_SPEEDUP,
                      "ccache": CHECK_MIN_JIT_CCACHE_SPEEDUP}
            for scheme, floor in floors.items():
                row = jit["schemes"].get(scheme)
                if row is None:
                    continue  # --smoke measures drcat only
                if row["speedup_vs_batched"] < floor:
                    print(
                        f"FAIL: jit speedup on {scheme} "
                        f"{row['speedup_vs_batched']}x is below the "
                        f"{floor}x floor"
                    )
                    return 1
                print(
                    f"check ok: jit speedup on {scheme} "
                    f"{row['speedup_vs_batched']}x"
                )
        else:
            print("check note: numba absent — jit speedup floors "
                  "not binding (fallback tier measured)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
