"""Figure 9: execution-time overhead (ETO) per workload, T=32K and 16K.

The grid is the shared Figure 8/9 :class:`repro.experiments.Plan`
(``_common.fig8_plan``); this bench reads the ETO metric of the same
cached cells.

Paper means at T=32K: PRA 0.26%, SCA_64 1.32%, SCA_128 0.43%,
PRCAT_64 0.23%, DRCAT_64 0.16%; at T=16K: 0.39 / 3.42 / 1.38 / 0.49 /
0.35%.  The reproduced shape: all ETOs sub-percent-ish, SCA_64 worst,
the CAT schemes best, and T=16K uniformly worse than T=32K.
"""

from _common import FIG8_LABELS, emit, fig8_plan, fig8_sweep, mean

from repro.workloads.suites import WORKLOAD_ORDER

LABELS = FIG8_LABELS


def build_rows(refresh_threshold):
    results = fig8_sweep(refresh_threshold)
    rows = []
    for workload in WORKLOAD_ORDER:
        row = {"workload": workload}
        for label in LABELS:
            row[label] = 100.0 * results[(workload, label)].eto
        rows.append(row)
    mean_row = {"workload": "Mean"}
    for label in LABELS:
        mean_row[label] = mean(row[label] for row in rows)
    rows.append(mean_row)
    return rows


def emit_threshold(refresh_threshold, rows):
    t = refresh_threshold // 1024
    return emit(
        f"fig9_eto_t{t}k",
        f"Figure 9 (T={t}K): ETO per workload (%)",
        rows,
        ["workload"] + LABELS,
        parameters={"refresh_threshold": refresh_threshold},
        plan=fig8_plan(refresh_threshold),
    )


def artifacts():
    """JSON artifacts for ``repro verify`` (both thresholds)."""
    return [emit_threshold(t, build_rows(t)) for t in (32768, 16384)]


def test_fig9_eto_t32k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(32768,), iterations=1, rounds=1
    )
    emit_threshold(32768, rows)
    means = rows[-1]
    # Paper shape: SCA_64 is the worst; CAT at least ~2x better.
    assert means["SCA_64"] == max(means[l] for l in LABELS)
    assert means["DRCAT_64"] < 0.5 * means["SCA_64"]
    assert means["PRCAT_64"] < 0.5 * means["SCA_64"]
    # All overheads remain small (the paper's are all < 1.4% here).
    assert all(means[l] < 3.0 for l in LABELS)


def test_fig9_eto_t16k(benchmark):
    rows = benchmark.pedantic(
        build_rows, args=(16384,), iterations=1, rounds=1
    )
    emit_threshold(16384, rows)
    means16 = rows[-1]
    means32 = build_rows(32768)[-1]
    # Halving T increases every deterministic scheme's ETO.
    for label in ("SCA_64", "SCA_128"):
        assert means16[label] > means32[label]
    # SCA_64 stays the worst and the CAT schemes the best (paper:
    # 3.42% for SCA_64 vs 0.35-0.49% for the CAT schemes at T=16K).
    assert means16["SCA_64"] == max(means16[l] for l in LABELS)
    assert means16["DRCAT_64"] < 0.5 * means16["SCA_64"]
    # In absolute terms SCA_64 loses the most ETO when T halves.
    sca_delta = means16["SCA_64"] - means32["SCA_64"]
    drcat_delta = means16["DRCAT_64"] - means32["DRCAT_64"]
    assert sca_delta > drcat_delta
