"""Setup shim for environments whose setuptools lacks PEP 660 support.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e .`` with older setuptools/wheel combinations.
"""

from setuptools import setup

setup()
