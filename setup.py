"""Packaging for the CAT rowhammer-mitigation reproduction (ISCA 2018).

``pip install -e .`` installs the ``repro`` package from ``src/`` and
the runtime dependency (numpy).  Test/lint tooling comes from the
``test``/``dev`` extras; CI uses the fully-pinned
``requirements-dev.txt`` for reproducible runs.
"""

from pathlib import Path

from setuptools import find_packages, setup

TEST_REQUIRES = [
    "pytest>=9,<10",
    "pytest-benchmark>=5.2,<6",
    "hypothesis>=6.130,<7",
]


def read_version() -> str:
    """The single-sourced version from ``src/repro/_version.py``."""
    scope: dict = {}
    exec(
        (Path(__file__).parent / "src" / "repro" / "_version.py").read_text(
            encoding="utf-8"
        ),
        scope,
    )
    return scope["__version__"]


setup(
    name="repro-drcat",
    version=read_version(),
    description=(
        "Reproduction of the ISCA 2018 CAT/DRCAT rowhammer-mitigation "
        "study: simulation engines, figure benches, golden-figure "
        "regression gating"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=2.1,<3"],
    extras_require={
        "test": TEST_REQUIRES,
        "dev": TEST_REQUIRES + ["ruff>=0.12,<1"],
    },
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
