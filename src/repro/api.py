"""Streaming session API: incremental, checkpointable simulation runs.

The counter trees of the paper are *online* structures — they evolve per
access and per refresh window — and this module makes that observable:
instead of one run-to-completion call, :func:`open_session` returns a
:class:`Session` that can be advanced incrementally, observed while it
runs, perturbed mid-stream, checkpointed to a JSON document, and resumed
(or forked) bit-identically::

    from repro import ExperimentSpec, SchemeSpec, open_session

    session = open_session(ExperimentSpec(
        scheme=SchemeSpec.create("drcat", n_counters=64),
        workload="blackscholes",
        n_intervals=8,
    ))

    @session.on_epoch
    def progress(event):
        print(f"epoch {event.epoch}: {100 * event.delta.eto:.3f}% ETO")

    session.advance(session.total_ns / 2)        # run half the horizon
    session.inject_attack("kernel03", "heavy")   # mid-run perturbation
    snap = session.snapshot()                    # checkpoint (JSON-able)
    fork = Session.restore(snap)                 # independent fork
    result = session.result()                    # finish -> SimulationResult

**Equivalence guarantees** (enforced by ``repro verify --session`` and
the property tests):

1. ``Session(spec).result()`` is bit-identical to
   ``run_spec(spec)`` — the session drives the same
   :class:`~repro.sim.session.SessionCore` the batch path uses.
2. ``snapshot -> restore -> finish`` is bit-identical to an
   uninterrupted run, for every registered scheme, on both engines —
   every scheme implements the ``SchemeState`` protocol
   (``to_state``/``restore_state``), and the core's loop state (pending
   streams, cursors, arrival RNG, epoch clock) is explicit.
3. Observer taps are read-only: registering them never changes the
   numbers.  Taps are also *isolated* — a raising callback is logged
   and detached, never allowed to abort the simulation it observes.

Injection (:meth:`Session.inject` / :meth:`Session.inject_attack`) is
the one deliberate exception — it *adds* traffic, which is its purpose;
injected accesses are part of subsequent snapshots.
"""

from __future__ import annotations

import json
import logging
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.base import RefreshCommand
from repro.sim.engine import TIME_QUANTUM_NS
from repro.sim.metrics import RunTotals, SimulationResult
from repro.sim.session import SessionCore
from repro.sim.simulator import TraceDrivenSimulator
from repro.workloads.attacks import attack_stream, get_kernel

logger = logging.getLogger(__name__)

#: Bump on incompatible snapshot-layout changes; :meth:`Session.restore`
#: rejects other versions with a regeneration hint.
SNAPSHOT_VERSION = 1
SNAPSHOT_KIND = "repro-session-snapshot"


class SessionError(RuntimeError):
    """A session was driven in an unsupported way."""


@dataclass(frozen=True)
class EpochEvent:
    """One auto-refresh epoch boundary, as seen by ``on_epoch`` taps.

    ``totals`` is the cumulative :class:`RunTotals` up to (and
    including) this epoch; ``delta`` covers this epoch alone, with
    ``elapsed_ns`` equal to one epoch, so ``delta.eto`` is the epoch's
    own execution-time overhead.
    """

    epoch: int
    time_ns: float
    totals: RunTotals
    delta: RunTotals


@dataclass(frozen=True)
class MitigationEvent:
    """One refresh command applied by the substrate (``on_mitigation``)."""

    time_ns: float
    bank: int
    low: int
    high: int
    reason: str
    rows: int


class Session:
    """A resumable, observable simulation run opened from one spec.

    Construct via :func:`open_session` (or directly); drive with
    :meth:`step` / :meth:`advance`; finish with :meth:`result`.
    """

    def __init__(self, spec, *, _core_state: dict | None = None) -> None:
        from repro.experiments.spec import ExperimentSpec

        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec
        self.sim = TraceDrivenSimulator(spec)
        plan = self.sim.stream_plan()
        key_doc = self.sim.trace_key_doc()
        if _core_state is None:
            self._core = SessionCore(self.sim, *plan, trace_key_doc=key_doc)
        else:
            self._core = SessionCore.from_state(
                self.sim, *plan, _core_state, trace_key_doc=key_doc
            )
        self._epoch_taps: list[Callable[[EpochEvent], None]] = []
        self._mitigation_taps: list[Callable[[MitigationEvent], None]] = []
        # Baseline totals as of the last epoch boundary, updated on
        # every boundary (taps or not) so a late-registered tap's first
        # delta still covers exactly one epoch; snapshots carry it so
        # resumed sessions report full-epoch deltas too.
        if _core_state is not None and "epoch_baseline" in _core_state:
            self._epoch_baseline = {
                k: v for k, v in _core_state["epoch_baseline"].items()
            }
        else:
            self._epoch_baseline = self._raw_totals()
        self._core.memory.on_epoch = self._on_epoch_boundary
        self._result: SimulationResult | None = None

    # -- geometry ----------------------------------------------------------

    @property
    def epoch_ns(self) -> float:
        """One simulated auto-refresh interval, in (compressed) ns."""
        return self._core.epoch_ns

    @property
    def total_ns(self) -> float:
        """The full simulated horizon (``n_intervals`` epochs)."""
        return self.spec.n_intervals * self.epoch_ns

    @property
    def position_ns(self) -> float:
        """Arrival time of the most recently served access."""
        return self._core.position_ns()

    @property
    def accesses_served(self) -> int:
        """Demand activations served so far."""
        return self._core.accesses_served

    @property
    def done(self) -> bool:
        """True once every access of the run has been served."""
        return self._core.done

    # -- driving -----------------------------------------------------------

    def step(self, n: int = 1) -> int:
        """Serve up to ``n`` further accesses; returns the count served."""
        if n < 0:
            raise ValueError(f"step count must be >= 0, got {n}")
        return self._core.advance(max_accesses=n)

    def advance(self, until_ns: float) -> int:
        """Serve every access arriving strictly before ``until_ns``.

        Returns the number served.  The epoch clock only moves as served
        accesses push it (exactly like an uninterrupted run), so
        advancing to a quiet time leaves later boundaries uncrossed.
        """
        return self._core.advance(until_ns=float(until_ns))

    def run(self) -> "Session":
        """Serve everything that remains; returns ``self`` for chaining."""
        self._core.advance()
        return self

    def result(self) -> SimulationResult:
        """Finish the run (if needed) and return the final metrics.

        Bit-identical to ``run_spec(spec)`` on the same spec, however
        the session was paused, observed, or checkpoint-cycled along the
        way (injections excepted — they add real traffic).
        """
        if self._result is None:
            self._core.advance()
            # The final interval's boundary is never crossed by an
            # access; close the stream for epoch observers with one
            # synthetic final event covering the last epoch.
            if self._epoch_taps and \
                    self._core.memory.epochs_completed < self.spec.n_intervals:
                self._dispatch_epoch(self.spec.n_intervals)
            self._result = self.sim._finalize(self._core.totals())
        return self._result

    def metrics(self) -> RunTotals:
        """Cumulative raw totals at the current position.

        Mid-epoch, ``elapsed_ns`` is the last served arrival time (the
        best partial-horizon estimate); at completion it is the full
        horizon, making the final :meth:`metrics` equal to
        ``result().totals``.
        """
        if self.done:
            return self._core.totals()
        return self._core.totals(
            elapsed_ns=max(self.position_ns, TIME_QUANTUM_NS)
        )

    # -- injection ---------------------------------------------------------

    def inject(
        self,
        rows,
        *,
        bank: int = 0,
        times_ns=None,
    ) -> int:
        """Splice extra row activations into the live run.

        ``rows`` is a sequence of row ids on ``bank``.  ``times_ns``
        gives their arrival times; when omitted the burst is spread
        uniformly over the remainder of the current interval.  Returns
        the number of accesses injected.
        """
        rows = np.asarray(rows, dtype=np.int64)
        core = self._core
        if times_ns is None:
            if core.interval < 0:
                # Materialise interval 0 so "the remainder" is defined.
                core.advance(max_accesses=0)
            start = max(
                self.position_ns, core.interval * core.epoch_ns
            )
            end = (core.interval + 1) * core.epoch_ns
            span = end - start
            if span <= 0:
                raise SessionError("no room left in the current interval")
            # Strictly inside (start, end): offset by half a slot.
            times_ns = start + (np.arange(len(rows)) + 0.5) * (
                span / max(1, len(rows))
            )
        return core.inject(bank, np.asarray(times_ns, dtype=np.float64), rows)

    def inject_attack(
        self,
        kernel: str,
        mode: str = "heavy",
        *,
        n_accesses: int | None = None,
        bank: int = 0,
        seed_salt: int = 0,
    ) -> int:
        """Inject one attack-kernel burst (Figure 13 kernels) mid-run.

        The burst's size defaults to the spec workload's (scaled)
        per-interval intensity; its rows come from the named kernel
        mixed with the spec's benign workload at the mode's attack
        fraction.  Returns the number of accesses injected.
        """
        kernel_obj = get_kernel(kernel)
        benign = self.spec.resolve_workload_model()
        sim = self.sim
        if n_accesses is None:
            n_accesses = max(1, int(round(benign.intensity / sim.scale)))
        rng = np.random.Generator(
            np.random.PCG64(kernel_obj.seed * 86_028_121 + bank * 53 + seed_salt)
        )
        rows = attack_stream(
            kernel_obj,
            mode,
            sim.config.rows_per_bank,
            n_accesses,
            bank=bank,
            benign=benign,
            rng=rng,
        )
        return self.inject(rows, bank=bank)

    # -- observer taps -----------------------------------------------------

    def on_epoch(
        self, tap: Callable[[EpochEvent], None]
    ) -> Callable[[EpochEvent], None]:
        """Register a per-epoch observer (usable as a decorator)."""
        self._epoch_taps.append(tap)
        self._wire_taps()
        return tap

    def on_mitigation(
        self, tap: Callable[[MitigationEvent], None]
    ) -> Callable[[MitigationEvent], None]:
        """Register a per-refresh-command observer (decorator-friendly)."""
        self._mitigation_taps.append(tap)
        self._wire_taps()
        return tap

    def _wire_taps(self) -> None:
        memory = self._core.memory
        if self._mitigation_taps and memory.on_refresh is None:
            memory.on_refresh = self._dispatch_mitigation

    def _raw_totals(self) -> dict[str, float]:
        memory = self._core.memory
        return {
            "accesses": memory.total_activations,
            "refresh_commands": memory.total_refresh_commands,
            "rows_refreshed": memory.total_rows_refreshed,
            "stall_ns": memory.total_stall_ns,
            "mitigation_busy_ns": memory.total_mitigation_busy_ns,
        }

    def _on_epoch_boundary(self, epoch: int) -> None:
        """Epoch tick: always roll the baseline; dispatch if observed."""
        now = self._raw_totals()
        base = self._epoch_baseline
        self._epoch_baseline = now
        if self._epoch_taps:
            self._dispatch_epoch(epoch, now, base)

    def _dispatch_epoch(
        self, epoch: int, now: dict | None = None, base: dict | None = None
    ) -> None:
        if now is None:
            now = self._raw_totals()
        if base is None:
            base = self._epoch_baseline
            self._epoch_baseline = now
        time_ns = epoch * self.epoch_ns
        sim = self.sim
        common = dict(
            scheme=sim.scheme_kind,
            workload=self._core.label,
            scale=sim.scale,
            n_banks_simulated=self._core.n_banks,
            full_scale_accesses_per_interval=self._core.full_intensity,
        )
        totals = RunTotals(
            n_intervals=epoch,
            accesses=int(now["accesses"]),
            refresh_commands=int(now["refresh_commands"]),
            rows_refreshed=int(now["rows_refreshed"]),
            stall_ns=now["stall_ns"],
            elapsed_ns=time_ns,
            mitigation_busy_ns=now["mitigation_busy_ns"],
            **common,
        )
        delta = RunTotals(
            n_intervals=1,
            accesses=int(now["accesses"] - base["accesses"]),
            refresh_commands=int(
                now["refresh_commands"] - base["refresh_commands"]
            ),
            rows_refreshed=int(
                now["rows_refreshed"] - base["rows_refreshed"]
            ),
            stall_ns=now["stall_ns"] - base["stall_ns"],
            elapsed_ns=self.epoch_ns,
            mitigation_busy_ns=(
                now["mitigation_busy_ns"] - base["mitigation_busy_ns"]
            ),
            **common,
        )
        event = EpochEvent(
            epoch=epoch, time_ns=time_ns, totals=totals, delta=delta
        )
        self._dispatch_isolated(self._epoch_taps, "on_epoch", event)

    def _dispatch_mitigation(
        self, bank: int, time_ns: float, cmd: RefreshCommand, rows: int
    ) -> None:
        event = MitigationEvent(
            time_ns=time_ns,
            bank=bank,
            low=cmd.low,
            high=cmd.high,
            reason=cmd.reason,
            rows=rows,
        )
        self._dispatch_isolated(self._mitigation_taps, "on_mitigation", event)

    def _dispatch_isolated(self, taps: list, name: str, event) -> None:
        """Deliver one event to every tap, isolating each callback.

        Observers are read-only bystanders; a raising one must never
        abort the simulation it is watching (the SSE hub in
        :mod:`repro.server` hangs arbitrary client code off these taps).
        The offender is logged with its traceback and detached — once a
        callback has thrown, its internal state is suspect and replaying
        every subsequent event into it would just spam the log.
        """
        for tap in list(taps):
            try:
                tap(event)
            except Exception:
                logger.exception(
                    "%s observer %r raised; detaching it (the run "
                    "continues)", name, tap,
                )
                try:
                    taps.remove(tap)
                except ValueError:
                    pass

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable checkpoint of the whole run state.

        Safe to take at any pause point *and* from inside an
        ``on_epoch`` tap (epoch boundaries are clean cut points).
        Restoring it — in this process or another — continues the run
        bit-identically; restoring it twice forks two independent
        continuations.
        """
        core = self._core.to_state()
        core["epoch_baseline"] = dict(self._epoch_baseline)
        return {
            "kind": SNAPSHOT_KIND,
            "snapshot_version": SNAPSHOT_VERSION,
            "spec": self.spec.to_dict(),
            "core": core,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "Session":
        """Rebuild a live session from a :meth:`snapshot` document."""
        if not isinstance(snapshot, dict) or \
                snapshot.get("kind") != SNAPSHOT_KIND:
            raise SessionError(
                "not a session snapshot (expected a dict with "
                f"kind={SNAPSHOT_KIND!r})"
            )
        version = snapshot.get("snapshot_version")
        if version != SNAPSHOT_VERSION:
            raise SessionError(
                f"snapshot_version {version} is not supported (this "
                f"build reads version {SNAPSHOT_VERSION}); re-create "
                "the snapshot with this build"
            )
        return cls(snapshot["spec"], _core_state=snapshot["core"])

    def save(self, path) -> Path:
        """Write :meth:`snapshot` as JSON; returns the path.

        The write is atomic (temp file + rename): a process killed
        mid-save can leave stale ``*.tmp`` residue but never a torn
        snapshot at the destination — the previous snapshot, if any,
        survives intact.
        """
        import os
        import tempfile

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.snapshot(), separators=(",", ":")) + "\n"
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path) -> "Session":
        """Resume a session saved by :meth:`save`."""
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SessionError(f"{path}: not valid JSON ({exc})") from None
        return cls.restore(doc)


def open_session(spec, **overrides) -> Session:
    """Open a streaming :class:`Session` over one experiment spec.

    ``spec`` is an :class:`~repro.experiments.ExperimentSpec` (or its
    serialized dict form); keyword ``overrides`` replace spec fields
    first (``open_session(spec, n_intervals=32)``).
    """
    from dataclasses import replace

    from repro.experiments.spec import ExperimentSpec

    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if overrides:
        spec = replace(spec, **overrides)
    return Session(spec)


__all__ = [
    "SNAPSHOT_VERSION",
    "SNAPSHOT_KIND",
    "SessionError",
    "EpochEvent",
    "MitigationEvent",
    "Session",
    "open_session",
]
