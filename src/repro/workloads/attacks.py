"""Kernel rowhammer attacks (Section VIII-D).

The paper stresses the schemes with 12 "kernel attacks" in the style of
ARMOR's attack kernels: each kernel picks a handful of target rows per
bank (4 per bank in the paper's configuration) and hammers them far more
frequently than any benign row, with the target placement following a
Gaussian distribution over the row space.  Attack traffic is blended
with a memory-intensive benign workload at three mix ratios:

* **Heavy** — 75 % target-row accesses, 25 % benign;
* **Medium** — 50 % / 50 %;
* **Light** — 25 % / 75 %.

:func:`attack_stream` produces the blended per-bank row stream; the 12
kernels differ in their seeds and Gaussian placement parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.suites import WorkloadSpec, get_workload

#: Attack-mix ratios, Figure 13.
ATTACK_MODES: dict[str, float] = {"heavy": 0.75, "medium": 0.50, "light": 0.25}

#: Targets per bank in the paper's dual-core/2-channel configuration.
TARGETS_PER_BANK = 4


@dataclass(frozen=True)
class AttackKernel:
    """One of the 12 attack kernels."""

    name: str
    seed: int
    targets_per_bank: int = TARGETS_PER_BANK
    #: Gaussian placement: mean position as a fraction of the row space
    center_fraction: float = 0.5
    #: Gaussian std-dev as a fraction of the row space
    spread_fraction: float = 0.15

    def pick_targets(self, n_rows: int, bank: int) -> np.ndarray:
        """Draw this kernel's target rows for one bank (Gaussian placed)."""
        rng = np.random.Generator(np.random.PCG64(self.seed * 7919 + bank))
        mean = self.center_fraction * n_rows
        std = max(1.0, self.spread_fraction * n_rows)
        targets: set[int] = set()
        while len(targets) < self.targets_per_bank:
            draw = int(round(rng.normal(mean, std)))
            if 0 <= draw < n_rows:
                targets.add(draw)
        return np.array(sorted(targets), dtype=np.int64)


#: The 12 kernels: seeds and Gaussian placements differ per kernel.
ATTACK_KERNELS: tuple[AttackKernel, ...] = tuple(
    AttackKernel(
        name=f"kernel{i + 1:02d}",
        seed=1_000 + 37 * i,
        center_fraction=0.2 + 0.05 * i,
        spread_fraction=0.08 + 0.01 * (i % 5),
    )
    for i in range(12)
)


def get_kernel(name: str) -> AttackKernel:
    """Look up an attack kernel by name (``kernel01`` .. ``kernel12``)."""
    for kernel in ATTACK_KERNELS:
        if kernel.name == name:
            return kernel
    raise KeyError(f"unknown attack kernel {name!r}")


def attack_stream(
    kernel: AttackKernel,
    mode: str,
    n_rows: int,
    n_accesses: int,
    bank: int = 0,
    benign: WorkloadSpec | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Blend attack and benign traffic for one bank and one interval.

    Parameters
    ----------
    kernel:
        The attack kernel (target placement + seed).
    mode:
        ``"heavy"``, ``"medium"`` or ``"light"``.
    n_rows, n_accesses:
        Bank geometry and interval activation budget.
    bank:
        Bank index (targets differ per bank).
    benign:
        Benign workload blended in; defaults to the memory-intensive
        ``libq`` spec, matching the paper's "memory-intensive workloads".
    rng:
        Override the deterministic generator (tests).
    """
    if mode not in ATTACK_MODES:
        raise KeyError(
            f"unknown attack mode {mode!r}; choose from {sorted(ATTACK_MODES)}"
        )
    if benign is None:
        benign = get_workload("libq")
    if rng is None:
        rng = np.random.Generator(
            np.random.PCG64(kernel.seed * 104_729 + bank * 13)
        )
    target_fraction = ATTACK_MODES[mode]
    n_target = int(round(n_accesses * target_fraction))
    n_benign = n_accesses - n_target

    targets = kernel.pick_targets(n_rows, bank)
    # Hammering alternates across the target set (multi-sided hammer).
    target_part = targets[rng.integers(0, len(targets), size=n_target)]

    model = benign.stream_model(n_rows)
    layout = model.phase_layout(rng)
    benign_part = model.sample(rng, n_benign, layout)

    rows = np.concatenate([target_part, benign_part])
    rng.shuffle(rows)
    return rows.astype(np.int64, copy=False)
