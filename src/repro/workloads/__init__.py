"""Workload substrate: MSC-style suites, synthetic streams, attacks."""

from repro.workloads.attacks import (
    ATTACK_KERNELS,
    ATTACK_MODES,
    TARGETS_PER_BANK,
    AttackKernel,
    attack_stream,
    get_kernel,
)
from repro.workloads.suites import (
    SUITES,
    WORKLOAD_ALIASES,
    WORKLOAD_ORDER,
    WORKLOADS,
    UnknownWorkloadError,
    WorkloadSpec,
    canonical_name,
    get_workload,
    phase_layouts,
    resolve_workload,
    row_frequency_histogram,
)
from repro.workloads.synthetic import (
    PhaseLayout,
    StreamModel,
    interarrival_times_ns,
    single_aggressor_stream,
    uniform_stream,
)

__all__ = [
    "ATTACK_KERNELS",
    "ATTACK_MODES",
    "TARGETS_PER_BANK",
    "AttackKernel",
    "attack_stream",
    "get_kernel",
    "SUITES",
    "WORKLOAD_ALIASES",
    "WORKLOAD_ORDER",
    "WORKLOADS",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "canonical_name",
    "get_workload",
    "resolve_workload",
    "phase_layouts",
    "row_frequency_histogram",
    "PhaseLayout",
    "StreamModel",
    "interarrival_times_ns",
    "single_aggressor_stream",
    "uniform_stream",
]
