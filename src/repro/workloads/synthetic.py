"""Synthetic DRAM row-access stream generators.

The paper evaluates on Memory Scheduling Championship traces; those are
not redistributable, so we synthesise per-bank row-activation streams
with the statistical structure the paper documents:

* **unbalanced access**: a small group of rows dominates the activations
  of a bank within a refresh interval (Figure 3);
* **suite-dependent skew**: commercial workloads are moderately skewed,
  some PARSEC workloads (blackscholes, facesim) extremely so, streaming
  SPEC workloads nearly uniform;
* **temporal phases**: hot sets move between intervals (the behaviour
  DRCAT's reconfiguration targets).

A stream is described by a :class:`StreamModel` built from a workload's
parameters; :meth:`StreamModel.sample` draws the row ids of one refresh
interval for one bank.  Mitigation schemes only observe (time, row), so
matching these marginals exercises the identical code paths real traces
would.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StreamModel:
    """Mixture model for one bank's row-activation stream.

    ``hot_fraction`` of activations go to ``n_hot`` rows grouped in
    ``n_clusters`` contiguous clusters (intra-cluster popularity is
    Zipf-ranked); the remaining activations follow a Zipf-over-ranks
    distribution across the whole bank through a per-phase permutation.
    """

    n_rows: int
    n_hot: int
    hot_fraction: float
    n_clusters: int
    zipf_alpha: float
    #: support of the background distribution (rows with nonzero mass)
    background_rows: int

    def __post_init__(self) -> None:
        if self.n_rows <= 0:
            raise ValueError("n_rows must be positive")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must lie in [0, 1]")
        if self.n_hot < 0 or self.n_hot > self.n_rows:
            raise ValueError("n_hot out of range")
        if self.hot_fraction > 0 and self.n_hot == 0:
            raise ValueError("hot_fraction > 0 requires n_hot > 0")
        if self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if not 0 < self.background_rows <= self.n_rows:
            raise ValueError("background_rows out of range")

    def phase_layout(self, rng: np.random.Generator) -> "PhaseLayout":
        """Draw the row placement for one phase (hot clusters + perm)."""
        hot_rows = _draw_hot_rows(rng, self.n_rows, self.n_hot, self.n_clusters)
        background = rng.choice(
            self.n_rows, size=self.background_rows, replace=False
        )
        return PhaseLayout(hot_rows=hot_rows, background_rows=background)

    def sample(
        self,
        rng: np.random.Generator,
        n_accesses: int,
        layout: "PhaseLayout",
    ) -> np.ndarray:
        """Draw ``n_accesses`` row ids for one interval in one phase."""
        if n_accesses <= 0:
            return np.empty(0, dtype=np.int64)
        n_hot_acc = int(round(n_accesses * self.hot_fraction))
        n_bg_acc = n_accesses - n_hot_acc
        parts = []
        if n_hot_acc and len(layout.hot_rows):
            parts.append(
                _zipf_draw(
                    rng, layout.hot_rows, max(self.zipf_alpha, 1.0), n_hot_acc
                )
            )
        elif n_hot_acc:
            n_bg_acc += n_hot_acc
        if n_bg_acc:
            parts.append(
                _zipf_draw(
                    rng, layout.background_rows, self.zipf_alpha, n_bg_acc
                )
            )
        rows = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        rng.shuffle(rows)
        return rows.astype(np.int64, copy=False)


@dataclass(frozen=True)
class PhaseLayout:
    """Concrete row placement of one phase."""

    hot_rows: np.ndarray
    background_rows: np.ndarray


@functools.lru_cache(maxsize=256)
def _zipf_probs(n: int, alpha: float) -> np.ndarray:
    """Normalised Zipf-over-ranks probabilities for ``n`` items.

    ``alpha = 0`` degenerates to uniform; larger alpha concentrates mass
    on the first ranks.  Cached per (n, alpha): the sweep recomputes the
    same distribution for every interval of every bank, and callers only
    read it.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha) if alpha > 0 else np.ones(n)
    probs = weights / weights.sum()
    probs.setflags(write=False)
    return probs


@functools.lru_cache(maxsize=256)
def _zipf_cdf(n: int, alpha: float) -> np.ndarray:
    """Cached, normalised Zipf CDF over ``n`` ranks (read-only array)."""
    cdf = np.cumsum(_zipf_probs(n, alpha))
    cdf /= cdf[-1]
    cdf.setflags(write=False)
    return cdf


def _zipf_draw(
    rng: np.random.Generator, pool: np.ndarray, alpha: float, size: int
) -> np.ndarray:
    """Draw ``size`` Zipf-ranked elements of ``pool`` (with replacement).

    Inverse-transform sampling against the cached CDF; consumes the
    generator stream exactly like ``rng.choice(pool, size, p=probs)``
    (one ``random(size)`` draw) while skipping the per-call
    re-normalisation and cumsum that ``choice`` performs.
    """
    return pool[np.searchsorted(_zipf_cdf(len(pool), alpha), rng.random(size), side="right")]


def _draw_hot_rows(
    rng: np.random.Generator, n_rows: int, n_hot: int, n_clusters: int
) -> np.ndarray:
    """Place ``n_hot`` hot rows into ``n_clusters`` contiguous clusters."""
    if n_hot == 0:
        return np.empty(0, dtype=np.int64)
    n_clusters = min(n_clusters, n_hot)
    base, extra = divmod(n_hot, n_clusters)
    rows: list[np.ndarray] = []
    for c in range(n_clusters):
        size = base + (1 if c < extra else 0)
        start = int(rng.integers(0, max(1, n_rows - size)))
        rows.append(np.arange(start, start + size, dtype=np.int64))
    out = np.unique(np.concatenate(rows))
    # Collisions between clusters can shrink the set; top up randomly.
    while len(out) < n_hot:
        filler = rng.integers(0, n_rows, size=n_hot - len(out))
        out = np.unique(np.concatenate([out, filler]))
    return out[:n_hot]


def interarrival_times_ns(
    rng: np.random.Generator, n_accesses: int, duration_ns: float
) -> np.ndarray:
    """Poisson-like arrival timestamps filling ``duration_ns``.

    Exponential inter-arrivals are drawn and rescaled so the final
    arrival lands just inside the interval — preserving both the mean
    rate and the burstiness that makes bank-conflict stalls realistic.
    """
    if n_accesses <= 0:
        return np.empty(0, dtype=np.float64)
    gaps = rng.exponential(1.0, size=n_accesses)
    times = np.cumsum(gaps)
    times *= duration_ns / times[-1] * (1.0 - 1e-9)
    return times


def uniform_stream(n_rows: int) -> StreamModel:
    """A fully uniform stream (the pattern under which CAT mimics SCA)."""
    return StreamModel(
        n_rows=n_rows,
        n_hot=0,
        hot_fraction=0.0,
        n_clusters=1,
        zipf_alpha=0.0,
        background_rows=n_rows,
    )


def single_aggressor_stream(n_rows: int, hot_fraction: float = 0.9) -> StreamModel:
    """A classic rowhammer pattern: one row takes most activations."""
    return StreamModel(
        n_rows=n_rows,
        n_hot=1,
        hot_fraction=hot_fraction,
        n_clusters=1,
        zipf_alpha=1.2,
        background_rows=n_rows,
    )
