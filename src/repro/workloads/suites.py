"""The 18 evaluation workloads (MSC: COMM, PARSEC, SPEC, BIO suites).

The paper evaluates on 18 workloads from the Memory Scheduling
Championship: five commercial server traces, seven PARSEC benchmarks,
four SPEC benchmarks and two Biobench kernels.  The traces themselves
are not redistributable, so each workload is modelled as a
:class:`WorkloadSpec` whose parameters encode the documented behaviour:

* ``intensity`` — mean row activations per bank per 64 ms interval.
  The paper's own arithmetic (PRA's CMRPO of ≈11 % at p = 0.002 with the
  Table II PRNG energy) implies roughly 0.5-0.7 M activations per bank
  per interval for the memory-intensive traces; lighter traces sit well
  below.
* ``zipf_alpha`` / ``hot_*`` — skew.  Figure 3 shows blackscholes and
  facesim concentrating most activations on a small row group; streaming
  workloads (libquantum) approach uniform sweeps.
* ``phase_count`` — how many times per run the hot set relocates, the
  temporal drift DRCAT's reconfiguration targets.

Parameters are synthetic but fixed (seeded), so every experiment is
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.synthetic import PhaseLayout, StreamModel


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one evaluation workload."""

    name: str
    suite: str
    #: mean row activations per bank per 64 ms interval (unscaled)
    intensity: float
    zipf_alpha: float
    hot_rows: int
    hot_fraction: float
    hot_clusters: int
    #: number of distinct access phases over a run
    phase_count: int
    read_fraction: float
    seed: int

    def stream_model(self, n_rows: int) -> StreamModel:
        """Instantiate the row-stream mixture for a bank of ``n_rows``."""
        background = max(1, min(n_rows, int(n_rows * 0.75)))
        return StreamModel(
            n_rows=n_rows,
            n_hot=min(self.hot_rows, n_rows),
            hot_fraction=self.hot_fraction,
            n_clusters=self.hot_clusters,
            zipf_alpha=self.zipf_alpha,
            background_rows=background,
        )

    def rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic generator for this workload (+ optional salt)."""
        return np.random.Generator(np.random.PCG64(self.seed * 1_000_003 + salt))


def _spec(
    name: str,
    suite: str,
    intensity: float,
    zipf_alpha: float,
    hot_rows: int,
    hot_fraction: float,
    hot_clusters: int = 2,
    phase_count: int = 1,
    read_fraction: float = 0.7,
    seed: int | None = None,
) -> WorkloadSpec:
    if seed is None:
        seed = abs(hash(name)) % (2**31)
        # hash() is salted per-process; derive a stable seed instead.
        seed = sum(ord(c) * 131**i for i, c in enumerate(name)) % (2**31)
    return WorkloadSpec(
        name=name,
        suite=suite,
        intensity=intensity,
        zipf_alpha=zipf_alpha,
        hot_rows=hot_rows,
        hot_fraction=hot_fraction,
        hot_clusters=hot_clusters,
        phase_count=phase_count,
        read_fraction=read_fraction,
        seed=seed,
    )


#: The paper's 18 evaluation workloads, in Figure 8 order.  Parameters
#: are calibrated (see EXPERIMENTS.md) so the scheme-level CMRPO/ETO
#: means land in the paper's reported ranges: intensities back-solved
#: from PRA's CMRPO arithmetic, concentration set so SCA_64 approaches
#: its access-budget refresh ceiling at T=16K, and phase drift kept to
#: the context-switch-heavy workloads.
WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        # COMM — commercial server traces: high intensity, strong skew,
        # several hot regions, noticeable context-switch drift.
        _spec("comm1", "COMM", 710_000, 1.2, 48, 0.45, 4, phase_count=2),
        _spec("comm2", "COMM", 645_000, 1.1, 40, 0.40, 4, phase_count=2),
        _spec("comm3", "COMM", 550_000, 1.2, 32, 0.40, 3, phase_count=2),
        _spec("comm4", "COMM", 485_000, 1.0, 32, 0.35, 3, phase_count=1),
        _spec("comm5", "COMM", 440_000, 1.1, 24, 0.35, 3, phase_count=1),
        # PARSEC — mixed: blackscholes/facesim sharply skewed (Fig. 3),
        # streamcluster closer to streaming.
        _spec("swapt", "PARSEC", 600_000, 1.3, 24, 0.50, 2, phase_count=1),
        _spec("fluid", "PARSEC", 645_000, 1.2, 32, 0.45, 3, phase_count=1),
        _spec("str", "PARSEC", 735_000, 0.7, 16, 0.25, 2, phase_count=1),
        _spec("black", "PARSEC", 690_000, 1.5, 12, 0.70, 1, phase_count=2),
        _spec("ferret", "PARSEC", 620_000, 1.2, 28, 0.45, 3, phase_count=1),
        _spec("face", "PARSEC", 710_000, 1.4, 16, 0.65, 2, phase_count=2),
        _spec("freq", "PARSEC", 575_000, 1.1, 24, 0.40, 2, phase_count=1),
        # SPEC — MTC/MTF are multithreaded commercial-like mixes with
        # context switching; libquantum streams; leslie3d is strided.
        _spec("MTC", "SPEC", 760_000, 1.1, 40, 0.40, 4, phase_count=2),
        _spec("MTF", "SPEC", 735_000, 1.1, 36, 0.40, 4, phase_count=2),
        _spec("libq", "SPEC", 805_000, 0.5, 8, 0.15, 1, phase_count=1),
        _spec("leslie", "SPEC", 665_000, 0.9, 24, 0.30, 2, phase_count=1),
        # BIO — genome alignment kernels: hot index structures.
        _spec("mum", "BIO", 645_000, 1.3, 20, 0.55, 2, phase_count=1),
        _spec("tigr", "BIO", 690_000, 1.3, 24, 0.55, 2, phase_count=1),
    )
}

#: Suite membership in presentation order (Figure 8's x-axis grouping).
SUITES: dict[str, tuple[str, ...]] = {
    "COMM": ("comm1", "comm2", "comm3", "comm4", "comm5"),
    "PARSEC": ("swapt", "fluid", "str", "black", "ferret", "face", "freq"),
    "SPEC": ("MTC", "MTF", "libq", "leslie"),
    "BIO": ("mum", "tigr"),
}

WORKLOAD_ORDER: tuple[str, ...] = tuple(
    name for suite in ("COMM", "PARSEC", "SPEC", "BIO") for name in SUITES[suite]
)


#: Long-form aliases accepted anywhere a workload name is taken (the
#: paper's Figure 8 axis abbreviates them).  This is the single home of
#: workload-name resolution; the runner and CLI delegate here.
WORKLOAD_ALIASES: dict[str, str] = {
    "blackscholes": "black",
    "facesim": "face",
    "streamcluster": "str",
    "fluidanimate": "fluid",
    "swaptions": "swapt",
    "freqmine": "freq",
    "libquantum": "libq",
    "leslie3d": "leslie",
    "mummer": "mum",
    "tigr": "tigr",
}


class UnknownWorkloadError(KeyError, ValueError):
    """Raised for a workload name that is neither canonical nor an alias.

    Subclasses both ``KeyError`` (the historical :func:`get_workload`
    contract) and ``ValueError`` (what name-validation callers catch).
    """

    def __init__(self, name: str) -> None:
        message = (
            f"unknown workload {name!r}; valid names: "
            f"{', '.join(WORKLOAD_ORDER)}; aliases: "
            + ", ".join(f"{a}->{c}" for a, c in sorted(WORKLOAD_ALIASES.items()))
        )
        super().__init__(message)
        self.workload = name

    def __str__(self) -> str:  # KeyError would render the repr
        return self.args[0]


def resolve_workload(workload: "str | WorkloadSpec") -> WorkloadSpec:
    """Resolve a canonical name, a long-form alias, or a spec object."""
    if isinstance(workload, WorkloadSpec):
        return workload
    name = WORKLOAD_ALIASES.get(workload, workload)
    try:
        return WORKLOADS[name]
    except KeyError:
        raise UnknownWorkloadError(workload) from None


def canonical_name(workload: "str | WorkloadSpec") -> str:
    """The Figure 8 label a name/alias/spec resolves to (validating)."""
    return resolve_workload(workload).name


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by its Figure 8 label (aliases not accepted)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise UnknownWorkloadError(name) from None


def row_frequency_histogram(
    spec: WorkloadSpec,
    n_rows: int,
    n_accesses: int | None = None,
    phase: int = 0,
) -> np.ndarray:
    """Row-activation frequency of one bank over one interval (Fig. 3).

    Returns an ``n_rows``-long array of per-row activation counts.
    """
    model = spec.stream_model(n_rows)
    rng = spec.rng(salt=phase)
    layout = model.phase_layout(rng)
    count = n_accesses if n_accesses is not None else int(spec.intensity)
    rows = model.sample(rng, count, layout)
    return np.bincount(rows, minlength=n_rows)


def phase_layouts(
    spec: WorkloadSpec, n_rows: int
) -> list[PhaseLayout]:
    """Materialise all phase layouts of a workload for one bank."""
    model = spec.stream_model(n_rows)
    return [
        model.phase_layout(spec.rng(salt=phase))
        for phase in range(spec.phase_count)
    ]
