"""``repro verify`` — regenerate every figure and gate it on goldens.

Runs the full figure/table bench suite at a named fidelity (setting the
``REPRO_BENCH_*`` environment the benches read), collects the JSON
artifacts each bench emits, and compares them against the checked-in
golden store ``benchmarks/golden/<fidelity>/<name>.json``.  Any
difference beyond the declared tolerance policy renders a per-figure
diff and the command exits nonzero — the self-gating loop CI and local
refactors rely on.

``--update`` rewrites the golden store from the current run instead of
comparing; the resulting files are meant to be reviewed and committed.
"""

from __future__ import annotations

import contextlib
import importlib
import os
import sys
import time
from pathlib import Path

from repro.report.compare import compare_artifacts, render_diff
from repro.report.config import FIDELITIES, fidelity_env
from repro.report.schema import Artifact, SchemaError, dump_artifact, load_artifact

#: Bench modules registered with the verifier, in run order (cheap
#: analytic tables first, the heavy shared fig8/fig9 sweep last so its
#: in-process cache is populated exactly once).  ``bench_perf`` is
#: deliberately absent: wall-clock measurements cannot be golden-gated.
BENCH_MODULES: tuple[str, ...] = (
    "bench_table1_config",
    "bench_table2_hardware",
    "bench_fig1_unsurvivability",
    "bench_fig2_sca_energy",
    "bench_fig3_row_frequency",
    "bench_counter_cache",
    "bench_ablation_presplit",
    "bench_ablation_thresholds",
    "bench_fig10_sweep",
    "bench_fig11_mapping",
    "bench_fig12_thresholds",
    "bench_fig13_attacks",
    "bench_fig8_cmrpo",
    "bench_fig9_eto",
    # Power/energy comparisons derive from the (now warm) fig8 sweep.
    "bench_power_breakdown",
    "bench_energy_savings",
)

#: Exit codes: comparison failures are 1, environment/usage problems 2.
EXIT_OK, EXIT_DIFF, EXIT_USAGE = 0, 1, 2


def default_benchmarks_dir() -> Path | None:
    """Locate ``benchmarks/`` for an in-repo checkout, if present."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    candidate = Path(__file__).resolve().parents[3] / "benchmarks"
    return candidate if candidate.is_dir() else None


def default_golden_dir(benchmarks_dir: Path) -> Path:
    """The golden-store root under one benchmarks directory."""
    return benchmarks_dir / "golden"


@contextlib.contextmanager
def _scoped_env(values: dict[str, str]):
    """Apply env overrides for the duration of one verify run."""
    saved = {k: os.environ.get(k) for k in values}
    os.environ.update(values)
    try:
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def collect_artifacts(
    benchmarks_dir: Path, modules: tuple[str, ...]
) -> list[tuple[str, list[Artifact]]]:
    """Import each bench module and run its ``artifacts()`` entry point."""
    bench_path = str(benchmarks_dir)
    inserted = bench_path not in sys.path
    if inserted:
        sys.path.insert(0, bench_path)
    try:
        resolved_dir = benchmarks_dir.resolve()
        # `_common` is the shared helper every bench imports; it must be
        # evicted alongside the bench stems or a re-import would still
        # bind the previous directory's emit()/results path.
        for stem in (*modules, "_common"):
            cached = sys.modules.get(stem)
            if cached is None:
                continue
            cached_file = getattr(cached, "__file__", None)
            if cached_file is None or not Path(
                cached_file
            ).resolve().is_relative_to(resolved_dir):
                # Imported from a different directory earlier in this
                # process; drop it so this run executes *this*
                # directory's code.
                del sys.modules[stem]
        out = []
        for stem in modules:
            module = importlib.import_module(stem)
            if not hasattr(module, "artifacts"):
                raise SchemaError(
                    f"bench module {stem} has no artifacts() entry point"
                )
            out.append((stem, list(module.artifacts())))
        return out
    finally:
        if inserted and bench_path in sys.path:
            sys.path.remove(bench_path)


def run_verify(
    fidelity: str = "ci",
    engine: str | None = None,
    update: bool = False,
    figures: list[str] | None = None,
    golden_dir: str | Path | None = None,
    benchmarks_dir: str | Path | None = None,
    list_only: bool = False,
    session: str | None = None,
    out=None,
) -> int:
    """Drive one verify run; returns the process exit code.

    ``session`` selects the spec execution path (``direct`` /
    ``session`` / ``checkpoint``) every simulated cell takes; the
    non-direct paths gate the streaming-session equivalence guarantees
    against the *unmodified* golden store.
    """
    say = (out or sys.stdout).write

    if fidelity not in FIDELITIES:
        say(f"error: unknown fidelity {fidelity!r} "
            f"(choose from {', '.join(FIDELITIES)})\n")
        return EXIT_USAGE

    modules = BENCH_MODULES
    if figures:
        unknown = [f for f in figures if f not in BENCH_MODULES]
        if unknown:
            say(f"error: unknown figure module(s): {', '.join(unknown)}\n"
                f"registered: {', '.join(BENCH_MODULES)}\n")
            return EXIT_USAGE
        modules = tuple(f for f in BENCH_MODULES if f in figures)

    if list_only:
        for stem in modules:
            say(stem + "\n")
        return EXIT_OK

    bench_dir = Path(benchmarks_dir) if benchmarks_dir else \
        default_benchmarks_dir()
    if bench_dir is None or not bench_dir.is_dir():
        say("error: cannot locate the benchmarks/ directory "
            "(pass --benchmarks-dir or set REPRO_BENCH_DIR)\n")
        return EXIT_USAGE
    store = Path(golden_dir) if golden_dir else default_golden_dir(bench_dir)
    store = store / fidelity

    t0 = time.perf_counter()
    with _scoped_env(fidelity_env(fidelity, engine, session)):
        collected = collect_artifacts(bench_dir, modules)
    elapsed = time.perf_counter() - t0
    artifacts = [a for _, arts in collected for a in arts]

    # Orphan detection only makes sense when the whole registry ran; a
    # --figures subset legitimately leaves the other goldens untouched.
    full_run = modules == BENCH_MODULES
    produced = {artifact.name for artifact in artifacts}

    if update:
        for artifact in artifacts:
            dump_artifact(artifact, store / f"{artifact.name}.json")
        pruned = []
        if full_run and store.is_dir():
            for path in sorted(store.glob("*.json")):
                if path.stem not in produced:
                    path.unlink()
                    pruned.append(path.name)
        say(f"\nupdated {len(artifacts)} golden artifact(s) in {store} "
            f"({elapsed:.1f}s)\n")
        if pruned:
            say(f"pruned {len(pruned)} stale golden(s): "
                f"{', '.join(pruned)}\n")
        return EXIT_OK

    from repro.core.jitkern import jit_tier_label
    from repro.sim.tracestore import store_enabled
    from repro.testing.faults import faults_summary

    failures = 0
    say(f"\n== repro verify — fidelity={fidelity} "
        f"engine={engine or 'batched'} "
        f"session={session or 'direct'} "
        f"trace-store={'on' if store_enabled() else 'off'} "
        f"jit-tier={jit_tier_label()} "
        f"faults={faults_summary()} ==\n")
    for stem, arts in collected:
        for artifact in arts:
            golden_path = store / f"{artifact.name}.json"
            if not golden_path.is_file():
                failures += 1
                say(f"FAIL {artifact.name} — no golden at {golden_path} "
                    "(run `repro verify --update` and commit)\n")
                continue
            try:
                golden = load_artifact(golden_path)
            except SchemaError as exc:
                failures += 1
                say(f"FAIL {artifact.name} — unreadable golden: {exc}\n")
                continue
            diff = compare_artifacts(golden, artifact)
            say(render_diff(diff) + "\n")
            if not diff.ok:
                failures += 1
                # Name the files on both sides so a failure is directly
                # actionable (diff them, or review + re-bless).
                actual_path = bench_dir / "results" / f"{artifact.name}.json"
                say(f"  golden: {golden_path}\n"
                    f"  actual: {actual_path}\n")
    orphans = 0
    if full_run and store.is_dir():
        for path in sorted(store.glob("*.json")):
            if path.stem not in produced:
                orphans += 1
                say(f"FAIL {path.stem} — orphaned golden: no bench emits "
                    "this artifact any more (re-run `repro verify "
                    "--update` to prune, and review the coverage loss)\n")
    total = len(artifacts)
    if failures or orphans:
        parts = []
        if failures:
            parts.append(f"{failures} of {total} checked artifact(s) differ")
        if orphans:
            parts.append(f"{orphans} orphaned golden(s)")
        say(f"\nverify FAILED: {' and '.join(parts)} in {store} "
            f"({elapsed:.1f}s)\n")
        return EXIT_DIFF
    say(f"\nverify ok: {total} artifact(s) match {store} "
        f"({elapsed:.1f}s)\n")
    return EXIT_OK
