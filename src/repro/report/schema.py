"""Versioned JSON artifact schema for figure/table benches.

An :class:`Artifact` is the machine-readable twin of one paper figure or
table: an ordered series of rows projected onto declared columns, plus
the provenance needed to reproduce it (engine, scale, seed, parameters,
schema version).  Artifacts are what benches emit to
``benchmarks/results/*.json``, what the golden store under
``benchmarks/golden/`` checks in, and what
:func:`repro.report.compare.compare_artifacts` diffs.

Schema evolution: ``SCHEMA_VERSION`` bumps on any incompatible change;
:func:`from_json_dict` rejects other versions with a message telling the
caller to regenerate goldens via ``repro verify --update``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

#: Bump on incompatible artifact layout changes.
SCHEMA_VERSION = 1

#: Discriminator so stray JSON files are rejected early.
ARTIFACT_KIND = "repro-figure-artifact"

#: Base seed of the simulator's arrival-time stream; workload streams
#: derive per-cell seeds from workload names (see workloads/suites.py),
#: so this single value pins the whole run's randomness.
ARRIVAL_SEED = 0xC0FFEE

#: JSON-representable scalar cell types.
_SCALARS = (str, int, float, bool, type(None))


class SchemaError(ValueError):
    """An artifact JSON document does not match the schema."""


def _normalize_cell(value, *, where: str):
    """Coerce one cell to a JSON-safe scalar (NaN/inf become None)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return None if not math.isfinite(value) else value
    if isinstance(value, int):
        return value
    if hasattr(value, "item"):  # numpy scalar -> python scalar
        return _normalize_cell(value.item(), where=where)
    raise SchemaError(
        f"{where}: cell value {value!r} of type {type(value).__name__} "
        "is not JSON-representable"
    )


@dataclass(frozen=True)
class Artifact:
    """One figure/table series with its provenance."""

    name: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[dict, ...]
    engine: str
    scale: float
    seed: int = ARRIVAL_SEED
    parameters: dict = field(default_factory=dict)
    #: producing experiment description (a plan/spec summary from
    #: :mod:`repro.experiments`) — additive provenance: goldens written
    #: before this field existed simply omit it, and the comparator
    #: never diffs it (like ``engine``, it cannot change the numbers;
    #: the parameters and rows gate those).
    spec: dict | None = None
    schema_version: int = SCHEMA_VERSION

    def to_json_dict(self) -> dict:
        """Plain-dict form, stable key order, ready for ``json.dump``."""
        doc = {
            "kind": ARTIFACT_KIND,
            "schema_version": self.schema_version,
            "name": self.name,
            "title": self.title,
            "engine": self.engine,
            "scale": self.scale,
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
        }
        if self.spec is not None:
            doc["spec"] = dict(self.spec)
        return doc

    def to_json(self) -> str:
        """The :meth:`to_json_dict` document as indented JSON text."""
        return json.dumps(self.to_json_dict(), indent=2, allow_nan=False) + "\n"


def build_artifact(
    name: str,
    title: str,
    rows: list[dict],
    columns: list[str],
    *,
    engine: str,
    scale: float,
    seed: int = ARRIVAL_SEED,
    parameters: dict | None = None,
    spec: dict | None = None,
) -> Artifact:
    """Project bench rows onto ``columns`` and wrap them in the schema.

    Cells are normalized to JSON scalars; non-finite floats (the NaN
    placeholders some sweeps use for invalid grid points) become
    ``None`` so documents stay strictly-valid JSON.  Keys a bench keeps
    in its row dicts but does not declare as columns (e.g. normalized
    assertion aliases) are dropped from the artifact.
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise SchemaError(f"artifact name {name!r} must be a [-_a-zA-Z0-9]+ slug")
    norm_rows = []
    for i, row in enumerate(rows):
        norm_rows.append({
            c: _normalize_cell(row.get(c), where=f"{name} row {i} column {c!r}")
            for c in columns
        })
    if spec is not None and not isinstance(spec, dict):
        raise SchemaError(
            f"artifact {name!r}: spec header must be a dict "
            f"(got {type(spec).__name__}); pass e.g. Plan.summary()"
        )
    return Artifact(
        name=name,
        title=title,
        columns=tuple(columns),
        rows=tuple(norm_rows),
        engine=engine,
        scale=float(scale),
        seed=int(seed),
        parameters=dict(parameters or {}),
        spec=dict(spec) if spec is not None else None,
    )


def _require(doc: dict, key: str, kinds, where: str):
    if key not in doc:
        raise SchemaError(f"{where}: missing required key {key!r}")
    value = doc[key]
    if not isinstance(value, kinds):
        expected = "/".join(
            k.__name__ for k in (kinds if isinstance(kinds, tuple) else (kinds,))
        )
        raise SchemaError(
            f"{where}: key {key!r} has type {type(value).__name__}, "
            f"expected {expected}"
        )
    return value


def from_json_dict(doc: dict, *, where: str = "artifact") -> Artifact:
    """Validate a parsed JSON document and rebuild the :class:`Artifact`."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{where}: top level must be an object")
    kind = doc.get("kind")
    if kind != ARTIFACT_KIND:
        raise SchemaError(
            f"{where}: kind={kind!r} is not a {ARTIFACT_KIND!r} document"
        )
    version = _require(doc, "schema_version", int, where)
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{where}: schema_version {version} is not supported (this "
            f"build reads version {SCHEMA_VERSION}); regenerate goldens "
            "with `repro verify --update`"
        )
    name = _require(doc, "name", str, where)
    title = _require(doc, "title", str, where)
    engine = _require(doc, "engine", str, where)
    scale = _require(doc, "scale", (int, float), where)
    seed = _require(doc, "seed", int, where)
    parameters = _require(doc, "parameters", dict, where)
    spec = doc.get("spec")  # additive: pre-experiments goldens omit it
    if spec is not None and not isinstance(spec, dict):
        raise SchemaError(f"{where}: key 'spec' must be an object when present")
    columns = _require(doc, "columns", list, where)
    if not all(isinstance(c, str) for c in columns):
        raise SchemaError(f"{where}: columns must all be strings")
    rows = _require(doc, "rows", list, where)
    checked_rows = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise SchemaError(f"{where}: row {i} is not an object")
        for key, value in row.items():
            if key not in columns:
                raise SchemaError(
                    f"{where}: row {i} has undeclared column {key!r}"
                )
            if not isinstance(value, _SCALARS):
                raise SchemaError(
                    f"{where}: row {i} column {key!r} holds non-scalar "
                    f"{type(value).__name__}"
                )
        checked_rows.append(dict(row))
    return Artifact(
        name=name,
        title=title,
        columns=tuple(columns),
        rows=tuple(checked_rows),
        engine=engine,
        scale=float(scale),
        seed=seed,
        parameters=parameters,
        spec=spec,
        schema_version=version,
    )


def load_artifact(path: str | Path) -> Artifact:
    """Read and validate one artifact JSON file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from None
    return from_json_dict(doc, where=str(path))


def dump_artifact(artifact: Artifact, path: str | Path) -> Path:
    """Write one artifact JSON file (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(artifact.to_json(), encoding="utf-8")
    return path
