"""Golden-figure regression subsystem.

Every figure/table bench emits a versioned JSON artifact alongside its
text output; this package defines the artifact schema
(:mod:`repro.report.schema`), the tolerance-aware comparator
(:mod:`repro.report.compare`), the validated fidelity/engine bench
configuration (:mod:`repro.report.config`) and the ``repro verify``
runner with its golden store (:mod:`repro.report.verify`).
"""

from repro.report.compare import (
    ArtifactDiff,
    Difference,
    Tolerance,
    compare_artifacts,
    render_diff,
    tolerance_for,
)
from repro.report.config import FIDELITIES, BenchConfig, EnvConfigError
from repro.report.schema import (
    SCHEMA_VERSION,
    Artifact,
    SchemaError,
    build_artifact,
    load_artifact,
    dump_artifact,
)
from repro.report.verify import BENCH_MODULES, run_verify

__all__ = [
    "Artifact",
    "ArtifactDiff",
    "BENCH_MODULES",
    "BenchConfig",
    "Difference",
    "EnvConfigError",
    "FIDELITIES",
    "SCHEMA_VERSION",
    "SchemaError",
    "Tolerance",
    "build_artifact",
    "compare_artifacts",
    "dump_artifact",
    "load_artifact",
    "render_diff",
    "run_verify",
    "tolerance_for",
]
