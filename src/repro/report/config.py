"""Validated bench configuration: env knobs and named fidelities.

The benchmark harness is tuned through ``REPRO_BENCH_*`` environment
variables.  This module is the single place they are parsed: values are
validated eagerly and a malformed setting fails with a message naming
the variable, the offending value, and what was expected — instead of a
``ValueError: invalid literal`` five frames deep in a bench.

A *fidelity* is a named (scale, intervals, banks) point:

* ``ci``    — the default economy knobs every figure bench and the
  checked-in ``benchmarks/golden/ci`` store use;
* ``smoke`` — cheaper still, for the CI ``verify`` job and quick local
  runs (``benchmarks/golden/smoke``);
* ``full``  — closer to paper scale; no golden store is checked in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

#: Engines accepted by the simulator (kept in sync with
#: :data:`repro.sim.engine.ENGINES`; duplicated here so config parsing
#: does not import the simulation stack).  ``jit`` is the compiled
#: tier — selectable everywhere, compiled only where numba is
#: installed, bit-identical either way.
ENGINE_NAMES = ("batched", "scalar", "jit")

#: Execution paths ``run_spec`` can take (``REPRO_SESSION_MODE``):
#: the direct batch loop, the streaming session facade, or the
#: checkpoint-mid-run/JSON-round-trip/resume path — all bit-identical
#: by contract (see :mod:`repro.experiments.run`).
SESSION_MODES = ("direct", "session", "checkpoint")

#: Named fidelity points: the env values ``repro verify`` applies.
FIDELITIES: dict[str, dict[str, str]] = {
    "ci": {
        "REPRO_BENCH_SCALE": "24",
        "REPRO_BENCH_INTERVALS": "2",
        "REPRO_BENCH_BANKS": "1",
    },
    "smoke": {
        "REPRO_BENCH_SCALE": "96",
        "REPRO_BENCH_INTERVALS": "1",
        "REPRO_BENCH_BANKS": "1",
    },
    "full": {
        "REPRO_BENCH_SCALE": "4",
        "REPRO_BENCH_INTERVALS": "2",
        "REPRO_BENCH_BANKS": "2",
    },
}


class EnvConfigError(ValueError):
    """A ``REPRO_BENCH_*`` variable holds an unusable value."""


def _parse(name: str, raw: str, kind, describe: str):
    try:
        return kind(raw)
    except (TypeError, ValueError):
        raise EnvConfigError(
            f"{name}={raw!r} is not a valid value: expected {describe}"
        ) from None


def env_int(env: Mapping[str, str], name: str, default: int,
            minimum: int) -> int:
    """Read an integer knob; fail clearly on garbage or out-of-range."""
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    value = _parse(name, raw, int, f"an integer >= {minimum}")
    if value < minimum:
        raise EnvConfigError(
            f"{name}={raw!r} is out of range: expected an integer "
            f">= {minimum}"
        )
    return value


def env_float(env: Mapping[str, str], name: str, default: float,
              minimum: float) -> float:
    """Read a float knob; fail clearly on garbage or out-of-range."""
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    value = _parse(name, raw, float, f"a number >= {minimum}")
    if not value >= minimum:  # also rejects NaN
        raise EnvConfigError(
            f"{name}={raw!r} is out of range: expected a number "
            f">= {minimum}"
        )
    return value


def env_bool(env: Mapping[str, str], name: str, default: bool) -> bool:
    """Read an on/off knob; fail clearly on unrecognised values."""
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "on", "true", "yes"):
        return True
    if lowered in ("0", "off", "false", "no"):
        return False
    raise EnvConfigError(
        f"{name}={raw!r} is not a valid value: expected one of "
        "1/on/true/yes or 0/off/false/no"
    )


def env_choice(env: Mapping[str, str], name: str, default: str,
               choices: tuple[str, ...]) -> str:
    """Read an enumerated knob; fail clearly on unknown values."""
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    if raw not in choices:
        raise EnvConfigError(
            f"{name}={raw!r} is not a valid value: expected one of "
            f"{', '.join(choices)}"
        )
    return raw


@dataclass(frozen=True)
class BenchConfig:
    """One resolved set of bench knobs (hashable: used as a cache key)."""

    scale: float
    n_intervals: int
    n_banks: int
    engine: str
    workers: int
    fidelity: str
    #: spec execution path (``REPRO_SESSION_MODE``): part of the memo
    #: keys so one process can gate several paths without cross-talk.
    session: str = "direct"
    #: sweep-cell result cache (see :mod:`repro.experiments.cache`):
    #: enabled by default; ``REPRO_BENCH_CACHE=0`` disables,
    #: ``REPRO_BENCH_CACHE_DIR`` overrides the store location.
    cache: bool = True
    cache_dir: str = ""

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "BenchConfig":
        """Parse and validate the ``REPRO_BENCH_*`` environment.

        ``REPRO_BENCH_WORKERS=0`` means one worker per CPU; negative or
        non-integer values are rejected with a clear message.
        """
        if env is None:
            env = os.environ
        workers = env_int(env, "REPRO_BENCH_WORKERS", default=1, minimum=0)
        if workers == 0:
            workers = os.cpu_count() or 1
        return cls(
            scale=env_float(env, "REPRO_BENCH_SCALE", default=24.0,
                            minimum=1.0),
            n_intervals=env_int(env, "REPRO_BENCH_INTERVALS", default=2,
                                minimum=1),
            n_banks=env_int(env, "REPRO_BENCH_BANKS", default=1, minimum=1),
            engine=env_choice(env, "REPRO_BENCH_ENGINE", default="batched",
                              choices=ENGINE_NAMES),
            workers=workers,
            fidelity=env.get("REPRO_BENCH_FIDELITY", "") or "custom",
            session=env_choice(env, "REPRO_SESSION_MODE", default="direct",
                               choices=SESSION_MODES),
            cache=env_bool(env, "REPRO_BENCH_CACHE", default=True),
            cache_dir=env.get("REPRO_BENCH_CACHE_DIR", ""),
        )

    def sim_kwargs(self) -> dict:
        """The ``simulate_workload`` knobs this configuration implies."""
        return {
            "scale": self.scale,
            "n_intervals": self.n_intervals,
            "n_banks": self.n_banks,
            "engine": self.engine,
        }


def fidelity_env(
    fidelity: str,
    engine: str | None = None,
    session: str | None = None,
) -> dict[str, str]:
    """The environment a named fidelity (plus overrides) pins."""
    if fidelity not in FIDELITIES:
        raise EnvConfigError(
            f"unknown fidelity {fidelity!r}: expected one of "
            f"{', '.join(FIDELITIES)}"
        )
    env = dict(FIDELITIES[fidelity])
    env["REPRO_BENCH_FIDELITY"] = fidelity
    # Always pin the engine and session mode: ambient REPRO_BENCH_ENGINE
    # / REPRO_SESSION_MODE must not leak into a named-fidelity run whose
    # header reports the default.
    if engine is None:
        engine = "batched"
    if engine not in ENGINE_NAMES:
        raise EnvConfigError(
            f"unknown engine {engine!r}: expected one of "
            f"{', '.join(ENGINE_NAMES)}"
        )
    env["REPRO_BENCH_ENGINE"] = engine
    if session is None:
        session = "direct"
    if session not in SESSION_MODES:
        raise EnvConfigError(
            f"unknown session mode {session!r}: expected one of "
            f"{', '.join(SESSION_MODES)}"
        )
    env["REPRO_SESSION_MODE"] = session
    return env
