"""Tolerance-aware comparison of figure artifacts against goldens.

The default policy is *exact*: every run of the simulator is
deterministic given its parameters (per-cell seeding, quantized time
grid, pairwise float reductions), so strings and integers must match
bit-for-bit and floats get only an epsilon guarding JSON round-trips.
Metrics that are legitimately sensitive to sampling or environment get
*declared* tolerances in :data:`TOLERANCE_POLICY`, keyed by
(artifact-name pattern, column pattern) — the policy table is the
single audit point for "how much may this figure drift before CI
fails" (see DESIGN.md, "Golden comparison tolerance policy").

Parameters (scale/banks/intervals) must match exactly; the *engine* is
deliberately excluded from the comparison because the batched and
scalar engines are contractually bit-identical — one golden store
gates both.  The additive ``spec`` provenance header (the producing
experiment plan) is likewise excluded: goldens written before the
experiments layer omit it, and the numbers it could influence are
already gated through ``parameters`` and the row values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.report.schema import Artifact

@dataclass(frozen=True)
class Tolerance:
    """Per-metric absolute/relative bound (a value passes either one)."""

    abs_tol: float = 0.0
    rel_tol: float = 0.0

    def accepts(self, expected: float, actual: float) -> bool:
        """True when ``actual`` is within either bound of ``expected``."""
        if math.isnan(expected) or math.isnan(actual):
            return math.isnan(expected) and math.isnan(actual)
        return math.isclose(
            expected, actual, rel_tol=self.rel_tol, abs_tol=self.abs_tol
        )

    def describe(self) -> str:
        """Human-readable bound ("abs<=X or rel<=Y") for reports."""
        return f"abs<={self.abs_tol:g} or rel<={self.rel_tol:g}"


#: Default bound for float cells with no declared tolerance: wide
#: enough for JSON round-trips, far below any real regression.
EXACT_FLOAT = Tolerance(abs_tol=1e-12, rel_tol=1e-9)

#: Declared per-metric tolerances: (artifact pattern, column pattern,
#: tolerance), first match wins.  Keep this list short — every entry is
#: a metric CI will not hold exactly, and needs a reason.
TOLERANCE_POLICY: list[tuple[str, str, Tolerance]] = [
    # Monte-Carlo failure-rate estimate (500 sampled windows): seeded,
    # but the acceptable drift if the sampler is ever re-derived is the
    # statistical error of the estimate, not bit-exactness.
    ("fig1_lfsr_study", "failure_rate", Tolerance(rel_tol=0.05)),
    # Concentration shares are ratios of large sampled histograms;
    # declared at half a percentage point.
    ("fig3_row_frequency", "top*_share", Tolerance(abs_tol=0.005)),
    # Cache hit rate over a sampled stream.
    ("counter_cache", "ccache_hit_rate", Tolerance(abs_tol=0.005)),
    # Mean SRAM reads per lookup over a sampled stream.
    ("ablation_presplit", "mean_sram_reads", Tolerance(rel_tol=0.02)),
]


def tolerance_for(
    artifact_name: str,
    column: str,
    policy: list[tuple[str, str, Tolerance]] | None = None,
) -> Tolerance | None:
    """The declared tolerance for one metric, or None (exact)."""
    for name_pat, col_pat, tol in (TOLERANCE_POLICY if policy is None
                                   else policy):
        if fnmatchcase(artifact_name, name_pat) and fnmatchcase(column,
                                                                col_pat):
            return tol
    return None


def declared_tolerances(
    artifact_name: str,
    columns,
    policy: list[tuple[str, str, Tolerance]] | None = None,
) -> dict[str, str]:
    """Column → human-readable declared bound for one artifact.

    The introspection surface the figure-rendering layer annotates its
    HTML index with: only columns with a *declared* policy entry appear
    (everything else gates exactly, see :data:`EXACT_FLOAT`).
    """
    out: dict[str, str] = {}
    for column in columns:
        tol = tolerance_for(artifact_name, column, policy)
        if tol is not None:
            out[column] = tol.describe()
    return out


@dataclass(frozen=True)
class Difference:
    """One comparison failure inside an artifact."""

    kind: str  # "parameter" | "structure" | "value"
    where: str  # human-readable location, e.g. "row 4 (face) col DRCAT_64"
    expected: object
    actual: object
    detail: str = ""

    def render(self) -> str:
        """One-line golden-vs-actual report for this difference."""
        line = (f"{self.where}: golden {self.expected!r} "
                f"vs actual {self.actual!r}")
        return f"{line}  [{self.detail}]" if self.detail else line


@dataclass(frozen=True)
class ArtifactDiff:
    """Comparison outcome for one figure/table artifact."""

    name: str
    differences: tuple[Difference, ...] = ()
    rows: int = 0
    columns: int = 0

    @property
    def ok(self) -> bool:
        """True when the artifact matched its golden everywhere."""
        return not self.differences


def _row_label(artifact: Artifact, index: int) -> str:
    """Identify a row by its first-column value when possible."""
    if artifact.columns and index < len(artifact.rows):
        first = artifact.columns[0]
        value = artifact.rows[index].get(first)
        if isinstance(value, (str, int)):
            return f"row {index} ({first}={value})"
    return f"row {index}"


def _coerce_float(value) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def _compare_cell(
    name: str, column: str, expected, actual,
    policy: list[tuple[str, str, Tolerance]] | None,
) -> tuple[bool, str]:
    """(matches, detail) for one cell under the policy."""
    declared = tolerance_for(name, column, policy)
    if declared is not None:
        exp_f, act_f = _coerce_float(expected), _coerce_float(actual)
        if exp_f is not None and act_f is not None:
            if declared.accepts(exp_f, act_f):
                return True, ""
            return False, f"outside declared tolerance ({declared.describe()})"
        # fall through to exact comparison when either side is non-numeric
    if isinstance(expected, float) or isinstance(actual, float):
        exp_f, act_f = _coerce_float(expected), _coerce_float(actual)
        if exp_f is not None and act_f is not None:
            if EXACT_FLOAT.accepts(exp_f, act_f):
                return True, ""
            return False, f"float mismatch ({EXACT_FLOAT.describe()})"
    if expected == actual:
        return True, ""
    return False, "exact-match metric"


def compare_artifacts(
    golden: Artifact,
    actual: Artifact,
    policy: list[tuple[str, str, Tolerance]] | None = None,
    max_differences: int = 20,
) -> ArtifactDiff:
    """Diff one regenerated artifact against its golden.

    Structure (columns, row count, scale/banks/intervals parameters) is
    compared exactly; cells follow the tolerance policy.  At most
    ``max_differences`` differences are collected per artifact so a
    wholesale change still renders readably.
    """
    diffs: list[Difference] = []

    def add(kind, where, expected, actual_value, detail=""):
        if len(diffs) < max_differences:
            diffs.append(Difference(kind, where, expected, actual_value,
                                    detail))

    if golden.name != actual.name:
        add("structure", "artifact name", golden.name, actual.name)
    if golden.scale != actual.scale:
        add("parameter", "scale", golden.scale, actual.scale,
            "fidelity mismatch — compare against the matching golden dir")
    for key in sorted(set(golden.parameters) | set(actual.parameters)):
        g, a = golden.parameters.get(key), actual.parameters.get(key)
        if g != a:
            add("parameter", f"parameters[{key!r}]", g, a)
    if tuple(golden.columns) != tuple(actual.columns):
        add("structure", "columns", list(golden.columns),
            list(actual.columns))
    elif len(golden.rows) != len(actual.rows):
        add("structure", "row count", len(golden.rows), len(actual.rows))
    else:
        for i, (g_row, a_row) in enumerate(zip(golden.rows, actual.rows)):
            for column in golden.columns:
                matches, detail = _compare_cell(
                    golden.name, column, g_row.get(column),
                    a_row.get(column), policy,
                )
                if not matches:
                    add("value",
                        f"{_row_label(golden, i)} col {column}",
                        g_row.get(column), a_row.get(column), detail)
    return ArtifactDiff(
        name=golden.name,
        differences=tuple(diffs),
        rows=len(actual.rows),
        columns=len(actual.columns),
    )


def render_diff(diff: ArtifactDiff) -> str:
    """Readable per-figure report block."""
    if diff.ok:
        return (f"PASS {diff.name}  "
                f"({diff.rows} rows x {diff.columns} cols)")
    lines = [f"FAIL {diff.name} — {len(diff.differences)} difference(s)"]
    lines += [f"  {d.render()}" for d in diff.differences]
    return "\n".join(lines)
