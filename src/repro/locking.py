"""Cross-process advisory file locks for store publishes.

Every on-disk store in the stack (the sweep-cell :class:`ResultCache`,
its session snapshots, the trace store's sidecars) publishes entries
with ``tempfile.mkstemp`` → write → ``os.replace``, which makes each
*individual* publish atomic.  The service layer adds a second hazard:
many writer *processes* hammering one store directory concurrently —
``repro serve`` pool workers, parallel sweeps, and a user's ad-hoc CLI
run can all target the same entry at once.  :func:`advisory_lock`
serializes the publish critical section per store root so two writers
can never interleave the mkstemp/replace pair (or a future multi-file
publish) and readers never observe a half-published entry set.

Three implementations, picked at import time:

* ``fcntl.flock`` (POSIX) — kernel advisory lock on a ``.lock`` file;
  released automatically if the holder dies, so a crashed writer can
  never wedge the store.
* ``msvcrt.locking`` (Windows) — byte-range lock on the same file.
* lock-directory fallback — ``os.mkdir`` is atomic on every
  filesystem; a spin loop with stale-lock breaking (age-based) covers
  platforms/filesystems where neither syscall is available (some
  network mounts).

Locks are *advisory*: they protect cooperating ``repro`` writers from
each other, nothing else — exactly the contract the stores need, with
zero behavior change for single-process use beyond one cheap syscall.
"""

from __future__ import annotations

import contextlib
import errno
import math
import os
import threading
import time
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None

try:  # Windows
    import msvcrt
except ImportError:  # pragma: no cover - platform dependent
    msvcrt = None

#: Suffix of the lock file (or lock directory, in the fallback) placed
#: next to the protected resource.
LOCK_SUFFIX = ".lock"

#: A fallback lock directory older than this is presumed abandoned by a
#: killed writer and is broken.  Publishes take milliseconds; a minute
#: is orders of magnitude past any honest hold time.  Overridable via
#: ``REPRO_LOCK_STALE_S`` (see :func:`stale_lock_s`) for filesystems
#: with coarse or skewed mtimes.
STALE_LOCK_S = 60.0

#: Environment override for the stale-break age.
STALE_ENV_VAR = "REPRO_LOCK_STALE_S"

#: Fallback spin interval while waiting on a held lock directory.
_SPIN_S = 0.005


def stale_lock_s() -> float:
    """The effective lockdir stale-break age, in seconds.

    ``REPRO_LOCK_STALE_S`` overrides the :data:`STALE_LOCK_S` default;
    a malformed or non-positive value raises so a typo'd deployment
    fails loudly instead of silently never (or always) breaking locks.
    """
    raw = os.environ.get(STALE_ENV_VAR)
    if raw is None or not raw.strip():
        return STALE_LOCK_S
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{STALE_ENV_VAR}={raw!r} is not a number (seconds)"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise ValueError(
            f"{STALE_ENV_VAR} must be a finite number > 0 seconds, "
            f"got {raw!r}"
        )
    return value


#: Process-wide lock accounting, surfaced by ``/v1/health`` so lock
#: pressure on a shared store is observable instead of silently eaten
#: as latency.  ``contended`` counts acquires that had to wait at least
#: one spin; ``stale_broken`` counts abandoned lockdirs broken by age.
_STATS_LOCK = threading.Lock()
_STATS = {"acquires": 0, "contended": 0, "timeouts": 0, "stale_broken": 0}


def _count(key: str) -> None:
    with _STATS_LOCK:
        _STATS[key] += 1


def lock_stats() -> dict:
    """A snapshot of the process-wide lock counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_lock_stats() -> None:
    """Zero the lock counters (test isolation)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


class LockTimeout(OSError):
    """An advisory lock could not be acquired within its timeout."""


def _acquire_flock(path: Path, timeout: float):
    """POSIX path: flock an open fd (auto-released on process death)."""
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    deadline = time.monotonic() + timeout
    waited = False
    try:
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                _count("acquires")
                return fd
            except OSError as exc:
                if exc.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
                if not waited:
                    waited = True
                    _count("contended")
                if time.monotonic() >= deadline:
                    _count("timeouts")
                    raise LockTimeout(
                        f"timed out after {timeout:.1f}s waiting for {path}"
                    ) from None
                time.sleep(_SPIN_S)
    except BaseException:
        os.close(fd)
        raise


def _release_flock(fd: int) -> None:
    try:
        fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def _acquire_msvcrt(path: Path, timeout: float):  # pragma: no cover
    """Windows path: lock the first byte of the lock file."""
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    deadline = time.monotonic() + timeout
    waited = False
    try:
        while True:
            try:
                msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
                _count("acquires")
                return fd
            except OSError:
                if not waited:
                    waited = True
                    _count("contended")
                if time.monotonic() >= deadline:
                    _count("timeouts")
                    raise LockTimeout(
                        f"timed out after {timeout:.1f}s waiting for {path}"
                    ) from None
                time.sleep(_SPIN_S)
    except BaseException:
        os.close(fd)
        raise


def _release_msvcrt(fd: int) -> None:  # pragma: no cover
    try:
        os.lseek(fd, 0, os.SEEK_SET)
        msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)
    finally:
        os.close(fd)


def _acquire_lockdir(path: Path, timeout: float) -> Path:
    """Portable fallback: atomic mkdir, age-based stale-lock breaking."""
    deadline = time.monotonic() + timeout
    stale_after = stale_lock_s()
    waited = False
    while True:
        try:
            os.mkdir(path)
            _count("acquires")
            return path
        except FileExistsError:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                continue  # holder just released; retry immediately
            if age > stale_after:
                # Abandoned by a killed writer: break it.  A racing
                # breaker may win the rmdir; both then re-contend the
                # mkdir, which stays atomic.
                with contextlib.suppress(OSError):
                    os.rmdir(path)
                _count("stale_broken")
                continue
            if not waited:
                waited = True
                _count("contended")
            if time.monotonic() >= deadline:
                _count("timeouts")
                raise LockTimeout(
                    f"timed out after {timeout:.1f}s waiting for {path}"
                ) from None
            time.sleep(_SPIN_S)


def _release_lockdir(path: Path) -> None:
    with contextlib.suppress(OSError):
        os.rmdir(path)


def lock_backend() -> str:
    """Which implementation this platform uses (for status surfaces)."""
    if fcntl is not None:
        return "flock"
    if msvcrt is not None:  # pragma: no cover - platform dependent
        return "msvcrt"
    return "lockdir"


@contextlib.contextmanager
def advisory_lock(target: "Path | str", timeout: float = 30.0,
                  backend: str | None = None):
    """Hold the cross-process advisory lock guarding ``target``.

    ``target`` names the resource (a file or directory); the lock
    itself lives at ``<target>.lock`` beside it.  Reentrant use from
    one process is *not* supported — the critical sections in this
    codebase are leaf-level and short.  ``backend`` forces an
    implementation (tests exercise the fallback on POSIX).

    Raises :class:`LockTimeout` when the lock stays contended past
    ``timeout`` seconds — callers treat that like any other publish
    failure (the stores degrade to recompute, never corrupt).
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    path = target.parent / (target.name + LOCK_SUFFIX)
    chosen = backend or lock_backend()
    if chosen == "flock" and fcntl is not None:
        fd = _acquire_flock(path, timeout)
        try:
            yield
        finally:
            _release_flock(fd)
    elif chosen == "msvcrt" and msvcrt is not None:  # pragma: no cover
        fd = _acquire_msvcrt(path, timeout)
        try:
            yield
        finally:
            _release_msvcrt(fd)
    else:
        held = _acquire_lockdir(path, timeout)
        try:
            yield
        finally:
            _release_lockdir(held)


__all__ = [
    "LOCK_SUFFIX",
    "STALE_ENV_VAR",
    "STALE_LOCK_S",
    "LockTimeout",
    "advisory_lock",
    "lock_backend",
    "lock_stats",
    "reset_lock_stats",
    "stale_lock_s",
]
