"""Physical address decomposition (Table I mapping policies).

USIMM's closed-page mapping interleaves consecutive cache lines across
channels so that row, rank and bank bits sit above the channel bits:
``rw:rk:bk:ch:col:offset`` (most-significant field first).  The
``AddressMapper`` decodes a physical byte address into
(channel, rank, bank, row, column) and re-encodes for round-tripping.

The 4-channel policy of Section VIII-B is the same field order with two
channel bits instead of one, which — bank size held fixed — quadruples
the number of banks in the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import SystemConfig


def _log2(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class DecodedAddress:
    """One physical address split into DRAM coordinates."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def flat_bank(self, config: SystemConfig) -> int:
        """Global bank index in ``[0, config.n_banks)``.

        Ordering is channel-major, then rank, then bank — the order the
        memory system uses to index its per-bank mitigation engines.
        """
        return (
            self.channel * config.ranks_per_channel + self.rank
        ) * config.banks_per_rank + self.bank


class AddressMapper:
    """Encode/decode physical addresses under ``rw:rk:bk:ch:col:offset``."""

    #: columns per row: 8KB row / 64B line = 128 cache lines (Micron 4Gb
    #: x8 geometry used by the paper's USIMM configuration).
    COLUMNS_PER_ROW = 128

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._offset_bits = _log2(config.cache_line_bytes, "cache_line_bytes")
        self._col_bits = _log2(self.COLUMNS_PER_ROW, "columns_per_row")
        self._ch_bits = _log2(config.n_channels, "n_channels")
        self._bk_bits = _log2(config.banks_per_rank, "banks_per_rank")
        self._rk_bits = _log2(config.ranks_per_channel, "ranks_per_channel")
        self._row_bits = _log2(config.rows_per_bank, "rows_per_bank")

    @property
    def address_bits(self) -> int:
        """Total significant physical address bits."""
        return (
            self._offset_bits
            + self._col_bits
            + self._ch_bits
            + self._bk_bits
            + self._rk_bits
            + self._row_bits
        )

    def decode(self, phys_addr: int) -> DecodedAddress:
        """Split a physical byte address into DRAM coordinates."""
        if phys_addr < 0:
            raise ValueError("physical address must be non-negative")
        value = phys_addr >> self._offset_bits
        column = value & ((1 << self._col_bits) - 1)
        value >>= self._col_bits
        channel = value & ((1 << self._ch_bits) - 1)
        value >>= self._ch_bits
        bank = value & ((1 << self._bk_bits) - 1)
        value >>= self._bk_bits
        rank = value & ((1 << self._rk_bits) - 1)
        value >>= self._rk_bits
        row = value & ((1 << self._row_bits) - 1)
        return DecodedAddress(channel, rank, bank, row, column)

    def encode(
        self,
        channel: int,
        rank: int,
        bank: int,
        row: int,
        column: int = 0,
        offset: int = 0,
    ) -> int:
        """Inverse of :meth:`decode` (used by trace generators)."""
        for name, value, bits in (
            ("channel", channel, self._ch_bits),
            ("rank", rank, self._rk_bits),
            ("bank", bank, self._bk_bits),
            ("row", row, self._row_bits),
            ("column", column, self._col_bits),
            ("offset", offset, self._offset_bits),
        ):
            if not 0 <= value < (1 << bits) and not (bits == 0 and value == 0):
                raise ValueError(f"{name}={value} out of range for {bits} bits")
        value = row
        value = (value << self._rk_bits) | rank
        value = (value << self._bk_bits) | bank
        value = (value << self._ch_bits) | channel
        value = (value << self._col_bits) | column
        value = (value << self._offset_bits) | offset
        return value
