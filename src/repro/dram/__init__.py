"""DRAM substrate: configuration, address mapping, banks, controller."""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import BankState
from repro.dram.config import (
    DUAL_CORE_2CH,
    DUAL_CORE_4CH,
    NAMED_CONFIGS,
    QUAD_CORE_2CH,
    QUAD_CORE_4CH,
    REFRESH_INTERVAL_S,
    REGULAR_REFRESH_POWER_MW,
    ROW_REFRESH_ENERGY_NJ,
    DRAMTimings,
    SystemConfig,
)
from repro.dram.controller import CompletedRequest, MemoryController, MemRequest
from repro.dram.memory_system import MemorySystem
from repro.dram.refresh import RefreshAccountant, intervals_in

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "BankState",
    "SystemConfig",
    "DRAMTimings",
    "DUAL_CORE_2CH",
    "DUAL_CORE_4CH",
    "QUAD_CORE_2CH",
    "QUAD_CORE_4CH",
    "NAMED_CONFIGS",
    "REFRESH_INTERVAL_S",
    "REGULAR_REFRESH_POWER_MW",
    "ROW_REFRESH_ENERGY_NJ",
    "MemoryController",
    "MemRequest",
    "CompletedRequest",
    "MemorySystem",
    "RefreshAccountant",
    "intervals_in",
]
