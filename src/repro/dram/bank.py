"""Per-bank timing/state model.

The ETO (execution time overhead) metric measures how long demand
requests stall behind targeted victim-row refreshes.  Memory controllers
do not freeze a bank for a whole multi-row refresh burst: TRR-style
victim refreshes are issued one row (one ACT+PRE cycle, ``tRC``) at a
time and interleaved with demand traffic.  The model therefore keeps a
*refresh backlog* per bank:

* a refresh command adds its row count to the backlog;
* the backlog drains whenever the bank is idle, one row-op per ``tRC``;
* a demand access arriving while a row-op is in flight waits only the
  residual of that row-op (bounded by ``tRC``), which is the stall ETO
  accounts;
* if the backlog exceeds a safety cap the controller escalates and
  drains synchronously (blocking) — the behaviour of a real controller
  whose refresh deadline approaches.

A closed-page demand access occupies the bank for one row cycle ``tRC``.

Batched processing: :meth:`BankState.serve_accesses_batch` serves a run
of demand accesses with no interleaved refresh commands in vectorized
closed form.  It is *bit-identical* to per-access :meth:`serve_access`
calls provided all arrival times (and the timing constants) are exact
multiples of the simulator's quarter-nanosecond time quantum (see
DESIGN.md, "Time quantization"): every intermediate value is then
exactly representable in float64, arithmetic incurs no rounding, and
the re-associated closed form equals the sequential recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.config import DRAMTimings

#: Backlog (rows) beyond which the controller blocks demand to catch up.
BACKLOG_ESCALATION_ROWS = 1 << 17


@dataclass
class BankState:
    """Busy-horizon plus refresh-backlog accounting for one DRAM bank."""

    timings: DRAMTimings
    #: time (ns) at which the bank finishes its current demand work
    free_at_ns: float = 0.0
    #: victim-refresh row-operations awaiting idle time
    refresh_backlog_rows: int = 0
    #: cumulative ns of victim-refresh row-ops performed
    mitigation_busy_ns: float = 0.0
    #: cumulative ns demand requests waited behind refresh row-ops
    stall_ns: float = 0.0
    #: demand activations served
    activations: int = 0
    #: rows refreshed by mitigation commands (for energy accounting)
    rows_refreshed: int = 0
    #: times the escalation cap forced a blocking drain
    escalations: int = 0

    def serve_access(self, arrival_ns: float) -> float:
        """Serve a demand activation arriving at ``arrival_ns``.

        Returns the completion time.  Before the access starts, any
        refresh backlog drains through the idle gap since the bank last
        went quiet; if a refresh row-op is mid-flight at arrival, the
        access absorbs its residual as mitigation stall.
        """
        start = max(arrival_ns, self.free_at_ns)
        if self.refresh_backlog_rows > 0:
            start = self._drain_until(start)
        done = start + self.timings.t_rc
        self.free_at_ns = done
        self.activations += 1
        return done

    def _drain_until(self, start_ns: float) -> float:
        """Drain backlog in the idle gap ending at ``start_ns``.

        Returns the (possibly delayed) demand start time and accounts
        the stall when a row-op straddles the demand arrival.
        """
        t_op = self.timings.row_refresh_ns
        gap = start_ns - self.free_at_ns
        if gap <= 0:
            return start_ns
        ops_fit = int(gap / t_op)
        if ops_fit >= self.refresh_backlog_rows:
            # Whole backlog drains inside the gap; bank idle at arrival.
            self.mitigation_busy_ns += self.refresh_backlog_rows * t_op
            self.refresh_backlog_rows = 0
            return start_ns
        # A row-op is in flight at the demand arrival: wait its residual.
        residual = t_op - (gap - ops_fit * t_op)
        completed = ops_fit + 1
        self.mitigation_busy_ns += completed * t_op
        self.refresh_backlog_rows -= completed
        self.stall_ns += residual
        return start_ns + residual

    def serve_accesses_batch(self, arrivals: np.ndarray) -> None:
        """Serve ``arrivals`` (sorted, float64 ns) with no refreshes between.

        Exact batch equivalent of calling :meth:`serve_access` per
        element.  While a refresh backlog is pending, drains step through
        :meth:`serve_access` (each step retires at least one row-op) and
        back-to-back bursts — during which nothing drains — are skipped
        in bulk.  Once the backlog is clear, the busy-horizon recurrence
        ``f = max(arrival, f) + tRC`` collapses to a running max, and
        only the final horizon and the activation count remain
        observable, so the whole stretch applies in O(n) vector ops.
        """
        n = len(arrivals)
        if n == 0:
            return
        t_rc = self.timings.t_rc
        i = 0
        if self.refresh_backlog_rows > 0:
            # Drain phase: per-access logic inlined from serve_access /
            # _drain_until (identical expressions on identical floats,
            # so the arithmetic is bit-equal), with state in locals and
            # arrivals pulled through small tolist() buffers to avoid
            # per-access numpy scalar extraction.
            t_op = self.timings.row_refresh_ns
            f = self.free_at_ns
            backlog = self.refresh_backlog_rows
            busy = self.mitigation_busy_ns
            stall = self.stall_ns
            buffer: list[float] = []
            buffer_start = buffer_end = 0
            while i < n and backlog > 0:
                if i >= buffer_end:
                    buffer = arrivals[i : i + 1024].tolist()
                    buffer_start = i
                    buffer_end = i + len(buffer)
                a = buffer[i - buffer_start]
                if a > f:
                    # Idle gap: row-ops fit before the access starts.
                    gap = a - f
                    ops_fit = int(gap / t_op)
                    if ops_fit >= backlog:
                        busy += backlog * t_op
                        backlog = 0
                        f = a + t_rc
                    else:
                        completed = ops_fit + 1
                        busy += completed * t_op
                        backlog -= completed
                        residual = t_op - (gap - ops_fit * t_op)
                        stall += residual
                        f = a + residual + t_rc
                else:
                    # Burst: nothing drains, the horizon advances tRC.
                    f = f + t_rc
                i += 1
            self.free_at_ns = f
            self.refresh_backlog_rows = backlog
            self.mitigation_busy_ns = busy
            self.stall_ns = stall
            self.activations += i
        if i >= n:
            return
        rest = arrivals[i:]
        k = n - i
        anchored = rest - np.arange(k, dtype=np.float64) * t_rc
        horizon = max(self.free_at_ns, float(anchored.max()))
        self.free_at_ns = horizon + k * t_rc
        self.activations += k

    def serve_refresh(self, arrival_ns: float, n_rows: int) -> float:
        """Enqueue a targeted refresh of ``n_rows`` rows.

        The rows join the backlog and drain opportunistically; only when
        the escalation cap is exceeded does the bank block outright.
        Returns the bank's demand horizon (unchanged unless escalated).
        """
        if n_rows <= 0:
            return self.free_at_ns
        self.refresh_backlog_rows += n_rows
        self.rows_refreshed += n_rows
        if self.refresh_backlog_rows > BACKLOG_ESCALATION_ROWS:
            duration = self.refresh_backlog_rows * self.timings.row_refresh_ns
            begin = max(arrival_ns, self.free_at_ns)
            self.free_at_ns = begin + duration
            self.mitigation_busy_ns += duration
            self.stall_ns += duration
            self.refresh_backlog_rows = 0
            self.escalations += 1
        return self.free_at_ns

    def reset_epoch(self) -> None:
        """Auto-refresh boundary: the blanket refresh absorbs the backlog.

        Any victim rows still pending are covered by the full-bank
        refresh pass, so the backlog clears without extra demand impact
        (their energy was already accounted when commanded).
        """
        self.refresh_backlog_rows = 0

    # -- checkpointable state (see repro.api) ----------------------------

    def to_state(self) -> dict:
        """All timing/accounting registers, JSON-serializable.

        Every float here is a sum of quarter-ns-grid quantities, exactly
        representable in float64 and therefore exact through a JSON
        round-trip (Python serializes floats by shortest round-trip
        repr).
        """
        return {
            "free_at_ns": self.free_at_ns,
            "refresh_backlog_rows": self.refresh_backlog_rows,
            "mitigation_busy_ns": self.mitigation_busy_ns,
            "stall_ns": self.stall_ns,
            "activations": self.activations,
            "rows_refreshed": self.rows_refreshed,
            "escalations": self.escalations,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite all registers from a :meth:`to_state` document."""
        self.free_at_ns = float(state["free_at_ns"])
        self.refresh_backlog_rows = int(state["refresh_backlog_rows"])
        self.mitigation_busy_ns = float(state["mitigation_busy_ns"])
        self.stall_ns = float(state["stall_ns"])
        self.activations = int(state["activations"])
        self.rows_refreshed = int(state["rows_refreshed"])
        self.escalations = int(state["escalations"])
