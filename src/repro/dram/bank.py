"""Per-bank timing/state model.

The ETO (execution time overhead) metric measures how long demand
requests stall behind targeted victim-row refreshes.  Memory controllers
do not freeze a bank for a whole multi-row refresh burst: TRR-style
victim refreshes are issued one row (one ACT+PRE cycle, ``tRC``) at a
time and interleaved with demand traffic.  The model therefore keeps a
*refresh backlog* per bank:

* a refresh command adds its row count to the backlog;
* the backlog drains whenever the bank is idle, one row-op per ``tRC``;
* a demand access arriving while a row-op is in flight waits only the
  residual of that row-op (bounded by ``tRC``), which is the stall ETO
  accounts;
* if the backlog exceeds a safety cap the controller escalates and
  drains synchronously (blocking) — the behaviour of a real controller
  whose refresh deadline approaches.

A closed-page demand access occupies the bank for one row cycle ``tRC``.

Batched processing: :meth:`BankState.serve_accesses_batch` serves a run
of demand accesses with no interleaved refresh commands in vectorized
closed form.  It is *bit-identical* to per-access :meth:`serve_access`
calls provided all arrival times (and the timing constants) are exact
multiples of the simulator's quarter-nanosecond time quantum (see
DESIGN.md, "Time quantization"): every intermediate value is then
exactly representable in float64, arithmetic incurs no rounding, and
the re-associated closed form equals the sequential recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.config import DRAMTimings

#: Backlog (rows) beyond which the controller blocks demand to catch up.
BACKLOG_ESCALATION_ROWS = 1 << 17

#: First vectorized drain-probe size (elements); grows 4x while probes
#: consume fully, so long drain stretches amortize to a handful of
#: vector ops while an early regime end bounds the wasted compute.
DRAIN_VECTOR_PROBE = 1024

#: Below this backlog the drain is over within a few accesses, so the
#: per-access scalar loop beats the vector path's fixed numpy overhead
#: (a PRA neighbour refresh enqueues 2 rows; an SCA_32 group refresh
#: enqueues ~1k and drains over hundreds of accesses).
DRAIN_VECTOR_MIN_BACKLOG = 64


def _drain_run(
    quanta: np.ndarray,
    start: int,
    cap: int,
    free_q: int,
    backlog: int,
    p_q: int,
    r_q: int,
) -> tuple[int, int, int, int, int]:
    """Closed-form prefix of the drain phase (bursts + partial drains).

    Works in integer quarter-ns quanta (``p_q``/``r_q`` are
    ``row_refresh_ns``/``t_rc`` in quanta).  Three exact invariants make
    the mixed burst/partial-drain recurrence vectorizable:

    1. While the backlog stays nonempty the bank is *never idle* — every
       arrival gap fills with row-ops — so the virtual completion clock
       ``V = F + backlog*p_q`` advances by exactly ``r_q`` per access in
       both branches.  The full-drain branch triggers exactly when
       ``A_k >= V_{k-1}``, i.e. at the first ``A_k - k*r_q >= V_0``.
    2. ``F mod p_q`` also advances by ``r_q`` per access in both
       branches, so an idle access's horizon is a *direct* function of
       its arrival and position:
       ``C_k = A_k + r_q + ((mu_k - A_k - r_q - 1) mod p_q) + 1`` with
       ``mu_k = (F_0 + (k+1) r_q) mod p_q`` — and the true horizon obeys
       the max-plus recurrence ``F_k = max(F_{k-1} + r_q, C_k)``, which
       collapses to one ``np.maximum.accumulate`` over ``C_k - k*r_q``.
    3. Refresh work is time accounting: ``D_k = F_k - F_0 - (k+1) r_q``
       is the row-op time completed so far (an exact multiple of
       ``p_q``), giving the backlog, busy and exhaustion point
       (``backlog hits 0  <=>  F_k == V_0 + (k+1) r_q``) for free.

    The one case the max-plus form cannot express is an arrival exactly
    equal to the horizon whose residual formula lands on ``p_q`` (a
    burst in the scalar oracle, but ``C_k = F_{k-1} + r_q + p_q`` would
    contaminate the running max); such collisions — and the full-drain
    access itself — are detected vectorized, the prefix truncates just
    before them, and the caller replays that single access through the
    scalar branch.

    Exactness: every scalar float operation in the drain loop acts on
    exact quarter-ns grid values (sums/products below 2**53 quanta, and
    ``int(gap / t_op)`` equals exact integer division for gaps below
    2**52 quanta), so this integer closed form reproduces the float
    recurrence bit-for-bit.  The caller verifies grid alignment before
    engaging.

    Returns ``(applied, free_q, backlog, busy_q, stall_q)`` with the
    busy/stall *deltas* in quanta; ``applied == 0`` means the very next
    access is a terminal (full drain or collision) for the scalar
    branch to serve.
    """
    seg = quanta[start:start + cap]
    m = len(seg)
    idx = np.arange(m, dtype=np.int64)
    # 1. Full-drain boundary via the virtual completion clock.
    anchored = seg - idx * r_q
    full = anchored >= free_q + backlog * p_q
    stop_full = int(np.argmax(full)) if full.any() else m
    # 2. Max-plus horizon from per-access idle candidates.
    mu = (free_q + (idx + 1) * r_q) % p_q
    residual = (mu - seg - r_q - 1) % p_q + 1
    candidates = seg + r_q + residual - idx * r_q
    horizon = np.maximum.accumulate(
        np.maximum(candidates, free_q + r_q)
    ) + idx * r_q
    prev = np.empty(m, dtype=np.int64)
    prev[0] = free_q
    prev[1:] = horizon[:-1]
    collide = seg == prev
    stop_collide = int(np.argmax(collide)) if collide.any() else m
    # 3. Exhaustion: backlog reaches exactly zero after access k.
    empty = horizon == free_q + backlog * p_q + (idx + 1) * r_q
    stop_empty = int(np.argmax(empty)) if empty.any() else m
    take = min(stop_full, stop_collide, stop_empty + 1, m)
    if take == 0:
        return 0, free_q, backlog, 0, 0
    final = int(horizon[take - 1])
    drained_q = final - free_q - take * r_q
    idle = seg[:take] > prev[:take]
    stall_q = int(residual[:take][idle].sum())
    return take, final, backlog - drained_q // p_q, drained_q, stall_q


@dataclass
class BankState:
    """Busy-horizon plus refresh-backlog accounting for one DRAM bank."""

    timings: DRAMTimings
    #: time (ns) at which the bank finishes its current demand work
    free_at_ns: float = 0.0
    #: victim-refresh row-operations awaiting idle time
    refresh_backlog_rows: int = 0
    #: cumulative ns of victim-refresh row-ops performed
    mitigation_busy_ns: float = 0.0
    #: cumulative ns demand requests waited behind refresh row-ops
    stall_ns: float = 0.0
    #: demand activations served
    activations: int = 0
    #: rows refreshed by mitigation commands (for energy accounting)
    rows_refreshed: int = 0
    #: times the escalation cap forced a blocking drain
    escalations: int = 0

    def serve_access(self, arrival_ns: float) -> float:
        """Serve a demand activation arriving at ``arrival_ns``.

        Returns the completion time.  Before the access starts, any
        refresh backlog drains through the idle gap since the bank last
        went quiet; if a refresh row-op is mid-flight at arrival, the
        access absorbs its residual as mitigation stall.
        """
        start = max(arrival_ns, self.free_at_ns)
        if self.refresh_backlog_rows > 0:
            start = self._drain_until(start)
        done = start + self.timings.t_rc
        self.free_at_ns = done
        self.activations += 1
        return done

    def _drain_until(self, start_ns: float) -> float:
        """Drain backlog in the idle gap ending at ``start_ns``.

        Returns the (possibly delayed) demand start time and accounts
        the stall when a row-op straddles the demand arrival.
        """
        t_op = self.timings.row_refresh_ns
        gap = start_ns - self.free_at_ns
        if gap <= 0:
            return start_ns
        ops_fit = int(gap / t_op)
        if ops_fit >= self.refresh_backlog_rows:
            # Whole backlog drains inside the gap; bank idle at arrival.
            self.mitigation_busy_ns += self.refresh_backlog_rows * t_op
            self.refresh_backlog_rows = 0
            return start_ns
        # A row-op is in flight at the demand arrival: wait its residual.
        residual = t_op - (gap - ops_fit * t_op)
        completed = ops_fit + 1
        self.mitigation_busy_ns += completed * t_op
        self.refresh_backlog_rows -= completed
        self.stall_ns += residual
        return start_ns + residual

    def serve_accesses_batch(self, arrivals: np.ndarray) -> None:
        """Serve ``arrivals`` (sorted, float64 ns) with no refreshes between.

        Exact batch equivalent of calling :meth:`serve_access` per
        element.  While a refresh backlog is pending, the mixed
        burst/partial-drain stretch applies in closed form on the
        integer quarter-ns grid (:func:`_drain_run`); only its terminal
        accesses (a full drain, or an arrival landing exactly on the
        horizon) replay through the scalar branch, and off-grid timings
        or arrivals fall back to the per-access loop wholesale.  Once
        the backlog is clear, the busy-horizon recurrence
        ``f = max(arrival, f) + tRC`` collapses to a running max, and
        only the final horizon and the activation count remain
        observable, so the whole stretch applies in O(n) vector ops.
        """
        n = len(arrivals)
        if n == 0:
            return
        t_rc = self.timings.t_rc
        i = 0
        if self.refresh_backlog_rows > 0:
            # Drain phase: closed-form fast path on the integer grid
            # (:func:`_drain_run`), falling back to per-access logic
            # inlined from serve_access / _drain_until (identical
            # expressions on identical floats, so the arithmetic is
            # bit-equal) for terminal accesses and off-grid inputs.
            t_op = self.timings.row_refresh_ns
            f = self.free_at_ns
            backlog = self.refresh_backlog_rows
            busy = self.mitigation_busy_ns
            stall = self.stall_ns
            p_q4 = t_op * 4.0
            r_q4 = t_rc * 4.0
            fast = (
                backlog >= DRAIN_VECTOR_MIN_BACKLOG
                and p_q4.is_integer() and r_q4.is_integer()
                and (f * 4.0).is_integer()
            )
            if fast:
                scaled = arrivals * 4.0
                quanta = scaled.astype(np.int64)
                fast = bool((quanta == scaled).all())
            if fast:
                p_q, r_q = int(p_q4), int(r_q4)
                free_q = int(f * 4.0)
                probe = DRAIN_VECTOR_PROBE
                while i < n and backlog > 0:
                    cap = max(probe, 4 * backlog)
                    applied, free_q, backlog, busy_q, stall_q = _drain_run(
                        quanta, i, cap, free_q, backlog, p_q, r_q
                    )
                    if applied:
                        busy += busy_q * 0.25
                        stall += stall_q * 0.25
                        i += applied
                        probe = probe * 4 if applied == cap else \
                            DRAIN_VECTOR_PROBE
                        continue
                    # Terminal access: full drain or an arrival exactly
                    # on the horizon — serve it through the scalar
                    # oracle branch (grid arithmetic keeps free_q exact).
                    a = float(arrivals[i])
                    f = free_q * 0.25
                    if a > f:
                        gap = a - f
                        ops_fit = int(gap / t_op)
                        if ops_fit >= backlog:
                            busy += backlog * t_op
                            backlog = 0
                            f = a + t_rc
                        else:
                            completed = ops_fit + 1
                            busy += completed * t_op
                            backlog -= completed
                            residual = t_op - (gap - ops_fit * t_op)
                            stall += residual
                            f = a + residual + t_rc
                    else:
                        f = f + t_rc
                    free_q = int(f * 4.0)
                    i += 1
                f = free_q * 0.25
            else:
                # Off-grid timings or arrivals: the per-access scalar
                # loop (identical expressions on identical floats), with
                # arrivals pulled through small tolist() buffers to
                # avoid per-access numpy scalar extraction.
                buffer: list[float] = []
                buffer_start = buffer_end = 0
                while i < n and backlog > 0:
                    if i >= buffer_end:
                        buffer = arrivals[i : i + 1024].tolist()
                        buffer_start = i
                        buffer_end = i + len(buffer)
                    a = buffer[i - buffer_start]
                    if a > f:
                        # Idle gap: row-ops fit before the access starts.
                        gap = a - f
                        ops_fit = int(gap / t_op)
                        if ops_fit >= backlog:
                            busy += backlog * t_op
                            backlog = 0
                            f = a + t_rc
                        else:
                            completed = ops_fit + 1
                            busy += completed * t_op
                            backlog -= completed
                            residual = t_op - (gap - ops_fit * t_op)
                            stall += residual
                            f = a + residual + t_rc
                    else:
                        # Burst: nothing drains, the horizon advances tRC.
                        f = f + t_rc
                    i += 1
            self.free_at_ns = f
            self.refresh_backlog_rows = backlog
            self.mitigation_busy_ns = busy
            self.stall_ns = stall
            self.activations += i
        if i >= n:
            return
        rest = arrivals[i:]
        k = n - i
        anchored = rest - np.arange(k, dtype=np.float64) * t_rc
        horizon = max(self.free_at_ns, float(anchored.max()))
        self.free_at_ns = horizon + k * t_rc
        self.activations += k

    def serve_refresh(self, arrival_ns: float, n_rows: int) -> float:
        """Enqueue a targeted refresh of ``n_rows`` rows.

        The rows join the backlog and drain opportunistically; only when
        the escalation cap is exceeded does the bank block outright.
        Returns the bank's demand horizon (unchanged unless escalated).
        """
        if n_rows <= 0:
            return self.free_at_ns
        self.refresh_backlog_rows += n_rows
        self.rows_refreshed += n_rows
        if self.refresh_backlog_rows > BACKLOG_ESCALATION_ROWS:
            duration = self.refresh_backlog_rows * self.timings.row_refresh_ns
            begin = max(arrival_ns, self.free_at_ns)
            self.free_at_ns = begin + duration
            self.mitigation_busy_ns += duration
            self.stall_ns += duration
            self.refresh_backlog_rows = 0
            self.escalations += 1
        return self.free_at_ns

    def reset_epoch(self) -> None:
        """Auto-refresh boundary: the blanket refresh absorbs the backlog.

        Any victim rows still pending are covered by the full-bank
        refresh pass, so the backlog clears without extra demand impact
        (their energy was already accounted when commanded).
        """
        self.refresh_backlog_rows = 0

    # -- checkpointable state (see repro.api) ----------------------------

    def to_state(self) -> dict:
        """All timing/accounting registers, JSON-serializable.

        Every float here is a sum of quarter-ns-grid quantities, exactly
        representable in float64 and therefore exact through a JSON
        round-trip (Python serializes floats by shortest round-trip
        repr).
        """
        return {
            "free_at_ns": self.free_at_ns,
            "refresh_backlog_rows": self.refresh_backlog_rows,
            "mitigation_busy_ns": self.mitigation_busy_ns,
            "stall_ns": self.stall_ns,
            "activations": self.activations,
            "rows_refreshed": self.rows_refreshed,
            "escalations": self.escalations,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite all registers from a :meth:`to_state` document."""
        self.free_at_ns = float(state["free_at_ns"])
        self.refresh_backlog_rows = int(state["refresh_backlog_rows"])
        self.mitigation_busy_ns = float(state["mitigation_busy_ns"])
        self.stall_ns = float(state["stall_ns"])
        self.activations = int(state["activations"])
        self.rows_refreshed = int(state["rows_refreshed"])
        self.escalations = int(state["escalations"])
