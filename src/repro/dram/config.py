"""System configuration (Table I of the paper) and derived quantities.

The default configuration models the paper's dual-core USIMM setup:
two 3.2 GHz cores, an 800 MHz memory bus, 16 GB across 2 channels,
1 rank/channel, 8 banks/rank, 64K rows/bank, closed-page FR-FCFS with the
``rw:rk:bk:ch:col:offset`` address mapping.  The quad-core variants of
Section VIII-B change the core count, channel count, and rows per bank.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Regular auto-refresh interval (seconds) used throughout the paper.
REFRESH_INTERVAL_S = 0.064
#: Energy to refresh a single DRAM row (nJ), from Smart Refresh [60].
ROW_REFRESH_ENERGY_NJ = 1.0
#: Regular refresh power for one 64K-row bank over 64 ms (mW), Section VI.
REGULAR_REFRESH_POWER_MW = 2.5


@dataclass(frozen=True)
class DRAMTimings:
    """DDR3-style timing constraints (55 nm Micron datasheet values).

    Only the parameters the ETO model consumes are carried; the full
    datasheet has dozens more that do not affect refresh-stall
    accounting.
    All times in nanoseconds.
    """

    t_ck: float = 1.25          #: bus clock period (800 MHz)
    t_rcd: float = 13.75        #: ACT -> column command
    t_rp: float = 13.75         #: PRE -> ACT
    t_ras: float = 35.0         #: ACT -> PRE
    t_rc: float = 48.75         #: ACT -> ACT same bank (row cycle)
    t_rfc: float = 260.0        #: regular REF command duration
    t_cas: float = 13.75        #: column access strobe latency

    @property
    def row_refresh_ns(self) -> float:
        """Time one targeted single-row refresh occupies the bank.

        A targeted refresh is an ACT+PRE pair on the victim row, i.e. one
        row cycle tRC — this is what TRR-style mitigations issue.
        """
        return self.t_rc


@dataclass(frozen=True)
class SystemConfig:
    """Full system description for one experiment (Table I defaults)."""

    n_cores: int = 2
    core_freq_ghz: float = 3.2
    bus_freq_mhz: float = 800.0
    n_channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 65536
    cache_line_bytes: int = 64
    rob_entries: int = 128
    fetch_width: int = 4
    retire_width: int = 2
    pipeline_depth: int = 10
    write_queue_capacity: int = 64
    page_policy: str = "closed"
    scheduling: str = "FRFCFS"
    address_mapping: str = "rw:rk:bk:ch:col:offset"
    timings: DRAMTimings = field(default_factory=DRAMTimings)

    def __post_init__(self) -> None:
        if self.rows_per_bank & (self.rows_per_bank - 1):
            raise ValueError("rows_per_bank must be a power of two")
        for name in ("n_channels", "ranks_per_channel", "banks_per_rank"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")

    @property
    def n_banks(self) -> int:
        """Total banks in the system."""
        return self.n_channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def total_rows(self) -> int:
        """Total DRAM rows across all banks."""
        return self.n_banks * self.rows_per_bank

    def with_channels(self, n_channels: int) -> "SystemConfig":
        """Derive the 4-channel mapping variant of Section VIII-B.

        USIMM's 4-channel policy keeps bank size fixed and quadruples the
        total bank count (16 -> 64): four channels of two-rank DIMMs
        versus two channels of single-rank DIMMs.
        """
        ranks = 2 if n_channels == 4 else 1
        return replace(self, n_channels=n_channels, ranks_per_channel=ranks)

    def with_cores(self, n_cores: int) -> "SystemConfig":
        """Derive the quad-core variant (128K rows/bank per Fig. 11)."""
        rows = self.rows_per_bank
        if n_cores == 4:
            rows = 131072
        elif n_cores == 2:
            rows = 65536
        return replace(self, n_cores=n_cores, rows_per_bank=rows)


#: The paper's default dual-core / 2-channel configuration.
DUAL_CORE_2CH = SystemConfig()
#: Dual-core with the 4-channel mapping policy (16 -> 64 banks).
DUAL_CORE_4CH = SystemConfig(n_channels=4, ranks_per_channel=2)
#: Quad-core variants used in Figure 11 (128K rows per bank).
QUAD_CORE_2CH = SystemConfig(n_cores=4, rows_per_bank=131072)
QUAD_CORE_4CH = SystemConfig(
    n_cores=4, rows_per_bank=131072, n_channels=4, ranks_per_channel=2
)

NAMED_CONFIGS: dict[str, SystemConfig] = {
    "dual-core/2channels": DUAL_CORE_2CH,
    "dual-core/4channels": DUAL_CORE_4CH,
    "quad-core/2channels": QUAD_CORE_2CH,
    "quad-core/4channels": QUAD_CORE_4CH,
}
