"""The DRAM memory system: banks + per-bank mitigation engines.

This is the integration point between the substrate and the paper's
contribution: every bank owns a :class:`~repro.core.base.MitigationScheme`
instance; each demand activation is forwarded to the bank's scheme, and
any refresh commands the scheme emits occupy that bank for the modelled
duration, delaying subsequent demand requests (the source of ETO).

Auto-refresh epoch boundaries (every 64 ms of simulated time) invoke each
scheme's ``on_interval_boundary`` hook — PRCAT rebuilds its tree there,
SCA and DRCAT reset their counts (all accumulated crosstalk pressure is
cleared by the blanket refresh).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.base import MitigationScheme, RefreshCommand
from repro.dram.bank import BankState
from repro.dram.config import REFRESH_INTERVAL_S, SystemConfig


class MemorySystem:
    """All banks of one system plus their mitigation engines.

    Parameters
    ----------
    config:
        System geometry and timings.
    scheme_factory:
        Callable ``(n_rows) -> MitigationScheme`` constructing one
        mitigation engine per bank.  ``None`` runs an unprotected
        baseline (used to measure the ETO denominator).
    active_banks:
        When given, only the first ``active_banks`` banks get mitigation
        engines; the rest stay unprotected.  The trace-driven simulator
        uses this to avoid constructing schemes for banks that never
        receive traffic.
    """

    def __init__(
        self,
        config: SystemConfig,
        scheme_factory: Callable[[int], MitigationScheme] | None,
        epoch_s: float = REFRESH_INTERVAL_S,
        active_banks: int | None = None,
    ) -> None:
        self.config = config
        n_active = config.n_banks if active_banks is None else active_banks
        self.banks = [BankState(config.timings) for _ in range(config.n_banks)]
        self.schemes: list[MitigationScheme | None] = [
            scheme_factory(config.rows_per_bank)
            if scheme_factory and bank < n_active
            else None
            for bank in range(config.n_banks)
        ]
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        self._epoch_ns = epoch_s * 1e9
        self._next_epoch_ns = self._epoch_ns
        self.total_refresh_commands = 0
        self.total_rows_refreshed = 0
        self.last_completion_ns = 0.0
        #: auto-refresh epoch boundaries crossed so far
        self.epochs_completed = 0
        #: observer taps (see :mod:`repro.api`): pure read-only callbacks;
        #: they must not mutate simulation state.
        #: ``on_epoch(epoch_index)`` fires after each boundary crossing,
        #: ``on_refresh(bank, time_ns, cmd, rows)`` after each mitigation
        #: refresh command is applied.
        self.on_epoch: Callable[[int], None] | None = None
        self.on_refresh: (
            Callable[[int, float, RefreshCommand, int], None] | None
        ) = None

    def access(self, time_ns: float, bank: int, row: int) -> float:
        """One demand activation; returns its completion time (ns)."""
        self._advance_epochs(time_ns)
        bank_state = self.banks[bank]
        scheme = self.schemes[bank]
        done = bank_state.serve_access(time_ns)
        if scheme is not None:
            for cmd in scheme.access(row):
                self.apply_refresh(bank_state, done, cmd, bank=bank)
        self.last_completion_ns = max(self.last_completion_ns, bank_state.free_at_ns)
        return done

    def access_batch(self, times_ns, banks, rows) -> None:
        """Serve a merged activation stream through the batched engine.

        Bit-exact equivalent of calling :meth:`access` per event (see
        :mod:`repro.sim.engine`); ``times_ns`` must be sorted and lie on
        the quarter-nanosecond simulation grid.
        """
        from repro.sim.engine import run_batched

        run_batched(self, times_ns, banks, rows)

    def apply_refresh(
        self,
        bank_state: BankState,
        time_ns: float,
        cmd: RefreshCommand,
        bank: int,
    ) -> None:
        """Apply one scheme-emitted refresh command to a bank.

        Part of the public surface: the batched engine
        (:mod:`repro.sim.engine`) replays scheme events through this
        exact path, so it must stay in lock-step with :meth:`access`'s
        scalar behaviour (backlog accounting, totals, the
        ``on_refresh`` tap).
        """
        rows = cmd.row_count(self.config.rows_per_bank)
        bank_state.serve_refresh(time_ns, rows)
        self.total_refresh_commands += 1
        self.total_rows_refreshed += rows
        if self.on_refresh is not None:
            self.on_refresh(bank, time_ns, cmd, rows)

    def _advance_epochs(self, time_ns: float) -> None:
        while time_ns >= self._next_epoch_ns:
            for bank_state in self.banks:
                bank_state.reset_epoch()
            for scheme in self.schemes:
                if scheme is not None:
                    scheme.on_interval_boundary()
            self._next_epoch_ns += self._epoch_ns
            self.epochs_completed += 1
            if self.on_epoch is not None:
                self.on_epoch(self.epochs_completed)

    # -- checkpointable state (see repro.api) ----------------------------

    def to_state(self) -> dict:
        """JSON-serializable capture of substrate + per-bank scheme state.

        Observer taps are deliberately excluded: callbacks belong to a
        live session, not to the simulation state.
        """
        return {
            "next_epoch_ns": self._next_epoch_ns,
            "epochs_completed": self.epochs_completed,
            "total_refresh_commands": self.total_refresh_commands,
            "total_rows_refreshed": self.total_rows_refreshed,
            "last_completion_ns": self.last_completion_ns,
            "banks": [bank.to_state() for bank in self.banks],
            "schemes": [
                scheme.to_state() if scheme is not None else None
                for scheme in self.schemes
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite a freshly built system (same config/factory).

        The scheme layout (which banks are protected, and by which
        scheme kind) must match the layout the state was captured from.
        """
        bank_states = state["banks"]
        scheme_states = state["schemes"]
        if len(bank_states) != len(self.banks):
            raise ValueError(
                f"state carries {len(bank_states)} banks, system has "
                f"{len(self.banks)}"
            )
        for scheme, doc in zip(self.schemes, scheme_states):
            if (scheme is None) != (doc is None):
                raise ValueError(
                    "state protected-bank layout does not match the "
                    "rebuilt system"
                )
            if scheme is not None and doc.get("scheme") != scheme.name:
                raise ValueError(
                    f"state scheme {doc.get('scheme')!r} does not match "
                    f"rebuilt scheme {scheme.name!r}"
                )
        self._next_epoch_ns = float(state["next_epoch_ns"])
        self.epochs_completed = int(state["epochs_completed"])
        self.total_refresh_commands = int(state["total_refresh_commands"])
        self.total_rows_refreshed = int(state["total_rows_refreshed"])
        self.last_completion_ns = float(state["last_completion_ns"])
        for bank, doc in zip(self.banks, bank_states):
            bank.restore_state(doc)
        for scheme, doc in zip(self.schemes, scheme_states):
            if scheme is not None:
                scheme.restore_state(doc)

    # -- aggregate views -------------------------------------------------

    @property
    def total_stall_ns(self) -> float:
        """Demand stall attributed to mitigation refreshes, all banks."""
        return sum(b.stall_ns for b in self.banks)

    @property
    def total_activations(self) -> int:
        """Demand activations served across all banks."""
        return sum(b.activations for b in self.banks)

    @property
    def total_mitigation_busy_ns(self) -> float:
        """Time spent on victim-refresh row-ops across all banks."""
        return sum(b.mitigation_busy_ns for b in self.banks)

    def scheme_stats(self) -> dict[str, int]:
        """Merged stats across all per-bank scheme instances."""
        merged: dict[str, int] = {}
        for scheme in self.schemes:
            if scheme is None:
                continue
            for key, value in scheme.stats.snapshot().items():
                merged[key] = merged.get(key, 0) + value
        return merged
