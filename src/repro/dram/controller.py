"""A lightweight FR-FCFS-flavoured memory-controller model.

The paper's USIMM configuration uses a closed-page policy with FR-FCFS
scheduling.  Under closed-page, every request activates its row, performs
the column burst and precharges, so "row hit first" reduces to batching
requests that target the *same row and arrive together*.  This model
implements exactly that reduced discipline:

* per-bank FIFO queues with a bounded write queue (Table I: 64 entries);
* same-row requests at the queue head coalesce into one activation;
* bank busy-horizons from :mod:`repro.dram.bank` provide timing;
* mitigation refreshes injected by the bank's scheme block the queue.

It exists so the ROB front end (:mod:`repro.cpu.rob`) has a realistic
sink, and so tests can exercise queueing effects; the headline
experiments drive :class:`~repro.dram.memory_system.MemorySystem`
directly with pre-timed traces, which is equivalent for ETO purposes
because all compared schemes see identical demand streams.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.base import MitigationScheme
from repro.dram.bank import BankState
from repro.dram.config import SystemConfig


@dataclass(frozen=True, slots=True)
class MemRequest:
    """One demand memory request as issued by the CPU front end."""

    arrival_ns: float
    bank: int
    row: int
    is_write: bool = False
    request_id: int = 0


@dataclass(slots=True)
class CompletedRequest:
    """Completion record returned by the controller."""

    request: MemRequest
    start_ns: float
    done_ns: float

    @property
    def latency_ns(self) -> float:
        """Arrival-to-completion latency of the request."""
        return self.done_ns - self.request.arrival_ns


class MemoryController:
    """Closed-page FR-FCFS controller over a set of banks.

    Requests are enqueued with :meth:`enqueue` and drained with
    :meth:`drain`, which services queues in arrival order per bank while
    coalescing consecutive same-row requests into a single activation
    (the closed-page analogue of row-hit-first).
    """

    def __init__(
        self,
        config: SystemConfig,
        schemes: list[MitigationScheme | None] | None = None,
    ) -> None:
        self.config = config
        self.banks = [BankState(config.timings) for _ in range(config.n_banks)]
        self.schemes = schemes if schemes is not None else [None] * config.n_banks
        if len(self.schemes) != config.n_banks:
            raise ValueError(
                f"expected {config.n_banks} schemes, got {len(self.schemes)}"
            )
        self._queues: list[deque[MemRequest]] = [
            deque() for _ in range(config.n_banks)
        ]
        self._write_backlog = 0
        self.completed: list[CompletedRequest] = []

    def enqueue(self, request: MemRequest) -> None:
        """Admit one request; enforces the write-queue capacity."""
        if not 0 <= request.bank < self.config.n_banks:
            raise ValueError(f"bank {request.bank} out of range")
        if request.is_write:
            if self._write_backlog >= self.config.write_queue_capacity:
                # Model write-queue pressure by draining before admitting.
                self.drain_bank(request.bank)
            self._write_backlog += 1
        self._queues[request.bank].append(request)

    def drain_bank(self, bank: int) -> list[CompletedRequest]:
        """Service every queued request on ``bank`` in order."""
        queue = self._queues[bank]
        bank_state = self.banks[bank]
        scheme = self.schemes[bank]
        done_list: list[CompletedRequest] = []
        prev_row: int | None = None
        prev_done = 0.0
        while queue:
            req = queue.popleft()
            if req.is_write:
                self._write_backlog -= 1
            if prev_row == req.row and req.arrival_ns <= prev_done:
                # Closed-page coalescing: piggyback on the open activation
                # burst; column access only, no new ACT seen by the scheme.
                start = max(req.arrival_ns, prev_done)
                done = start + self.config.timings.t_cas
            else:
                start = max(req.arrival_ns, bank_state.free_at_ns)
                done = bank_state.serve_access(req.arrival_ns)
                if scheme is not None:
                    for cmd in scheme.access(req.row):
                        rows = cmd.row_count(self.config.rows_per_bank)
                        bank_state.serve_refresh(done, rows)
                prev_row = req.row
            prev_done = done
            record = CompletedRequest(req, start, done)
            done_list.append(record)
            self.completed.append(record)
        return done_list

    def drain(self) -> list[CompletedRequest]:
        """Service all queues; returns completions in per-bank order."""
        out: list[CompletedRequest] = []
        for bank in range(self.config.n_banks):
            out.extend(self.drain_bank(bank))
        return out

    @property
    def pending(self) -> int:
        """Requests admitted but not yet serviced."""
        return sum(len(q) for q in self._queues)
