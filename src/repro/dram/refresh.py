"""Refresh engines: regular auto-refresh and targeted victim refresh.

Two refresh flavours matter to the paper:

* **Auto-refresh** — every row refreshed once per 64 ms interval.  Its
  power (2.5 mW per 64K-row bank) is the *denominator* of the CMRPO
  metric; the schemes never change it.
* **Targeted (victim) refresh** — extra row refreshes commanded by the
  mitigation scheme.  Their energy (1 nJ/row) and the bank-blocking they
  cause are the *numerator* side of CMRPO and the source of ETO.

:class:`RefreshAccountant` aggregates both, giving the energy model one
authoritative place to read refresh totals from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.config import (
    REFRESH_INTERVAL_S,
    REGULAR_REFRESH_POWER_MW,
    ROW_REFRESH_ENERGY_NJ,
)


@dataclass
class RefreshAccountant:
    """Energy/row bookkeeping for one bank's refresh activity."""

    rows_per_bank: int
    #: victim rows refreshed by the mitigation scheme
    victim_rows: int = 0
    #: targeted refresh commands issued
    commands: int = 0
    #: per-interval victim-row counts (one entry per completed interval)
    per_interval: list[int] = field(default_factory=list)
    _current_interval_rows: int = 0

    def record_victim_refresh(self, n_rows: int) -> None:
        """Account ``n_rows`` of targeted refresh."""
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        self.victim_rows += n_rows
        self._current_interval_rows += n_rows
        self.commands += 1

    def close_interval(self) -> None:
        """Seal the current 64 ms interval's count."""
        self.per_interval.append(self._current_interval_rows)
        self._current_interval_rows = 0

    def victim_energy_nj(self) -> float:
        """Total targeted-refresh energy (nJ)."""
        return self.victim_rows * ROW_REFRESH_ENERGY_NJ

    def victim_power_mw(self, elapsed_s: float) -> float:
        """Average targeted-refresh power over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            raise ValueError("elapsed_s must be positive")
        return self.victim_energy_nj() * 1e-9 / elapsed_s * 1e3

    @staticmethod
    def regular_refresh_power_mw() -> float:
        """The CMRPO reference power (per bank)."""
        return REGULAR_REFRESH_POWER_MW

    @staticmethod
    def regular_refresh_energy_per_interval_nj(rows_per_bank: int) -> float:
        """Energy of one blanket refresh pass over the bank (nJ)."""
        return rows_per_bank * ROW_REFRESH_ENERGY_NJ

    def mean_rows_per_interval(self) -> float:
        """Average victim rows per sealed interval (0 when none sealed)."""
        if not self.per_interval:
            return 0.0
        return sum(self.per_interval) / len(self.per_interval)


def intervals_in(elapsed_s: float) -> float:
    """How many 64 ms auto-refresh intervals fit in ``elapsed_s``."""
    return elapsed_s / REFRESH_INTERVAL_S
