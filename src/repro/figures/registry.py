"""Renderer registry: artifact kinds → figure renderers.

Every ``repro-figure-artifact`` kind a bench emits (see
``repro.report.verify.BENCH_MODULES``) registers exactly one renderer —
a callable turning the validated :class:`~repro.report.schema.Artifact`
into SVG text.  Registration is by ``fnmatch`` pattern so one renderer
can cover a per-threshold family (``fig8_cmrpo_t*``); the first
matching pattern wins, in registration order.

The registry is the introspection point the rest of the layer builds
on: ``repro figures`` resolves renderers through :func:`renderer_for`
(unknown artifact kinds are *skipped with a warning*, never fatal), and
the coverage test walks :func:`registered_patterns` against the golden
store to prove no checked-in artifact kind is unrenderable.

To add a figure, decorate a renderer in :mod:`repro.figures.paper`::

    @register("fig42_roofline*")
    def fig42(artifact, ctx):
        return grouped_bar_chart(artifact.title, ...)

and follow the "Adding a new figure" checklist in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Optional

from repro.report.schema import Artifact


@dataclass(frozen=True)
class RenderContext:
    """Per-render inputs beyond the artifact itself.

    ``golden`` carries the matching golden-store artifact when the
    caller asked for an overlay (None otherwise); ``tolerances`` maps
    column name → human-readable declared tolerance bound for this
    artifact (from the verify tolerance policy), used for overlay
    annotations in the HTML index.
    """

    golden: Optional[Artifact] = None
    tolerances: dict = field(default_factory=dict)


#: A renderer maps (artifact, context) → standalone SVG text.
Renderer = Callable[[Artifact, RenderContext], str]

#: Ordered (pattern, renderer) pairs; first fnmatch wins.
_RENDERERS: list[tuple[str, Renderer]] = []


def register(pattern: str) -> Callable[[Renderer], Renderer]:
    """Class the decorated callable as the renderer for ``pattern``.

    ``pattern`` is an ``fnmatch`` glob over artifact names.  Returns the
    callable unchanged so renderers stay plain functions.
    """
    def wrap(fn: Renderer) -> Renderer:
        _RENDERERS.append((pattern, fn))
        return fn
    return wrap


def renderer_for(name: str) -> Renderer | None:
    """The registered renderer for one artifact name (None = unknown)."""
    for pattern, fn in _RENDERERS:
        if fnmatchcase(name, pattern):
            return fn
    return None


def registered_patterns() -> tuple[str, ...]:
    """All registered patterns, in match-priority order."""
    _ensure_loaded()
    return tuple(pattern for pattern, _ in _RENDERERS)


def _ensure_loaded() -> None:
    """Import the built-in renderer module exactly once."""
    # paper.py registers at import time; importing it here (not at module
    # top) keeps registry importable without the chart stack and avoids
    # a circular import (paper imports `register` from this module).
    from repro.figures import paper  # noqa: F401


def resolve(name: str) -> Renderer | None:
    """Public lookup: load built-ins, then match ``name``."""
    _ensure_loaded()
    return renderer_for(name)
