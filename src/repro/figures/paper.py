"""Built-in renderers: one per checked-in paper figure/table artifact.

Each renderer re-creates the *shape* of the corresponding figure in the
paper from the JSON artifact alone — no simulation, no benchmarks
import — so any ``results/*.json`` (or a golden store directly) renders
the same way.  Renderers register themselves by artifact-name pattern
(:mod:`repro.figures.registry`); the coverage test in
``tests/test_figures.py`` proves every golden artifact kind resolves to
one of these.

Conventions:

* numeric-looking string cells (several benches emit ``"1.42e-04"``)
  are coerced through :meth:`repro.figures.svg.Series.make`;
* a golden artifact in the :class:`~repro.figures.registry.RenderContext`
  becomes overlay marks (bar ticks / dashed lines) drawn from the same
  columns as the current series;
* CMRPO/ETO-style per-workload figures render categories in artifact row
  order, which matches the paper's workload order.
"""

from __future__ import annotations

from repro.figures.registry import RenderContext, register
from repro.figures.svg import Series, grouped_bar_chart, line_chart, table_figure
from repro.report.schema import Artifact


def _numeric_columns(artifact: Artifact) -> list[str]:
    """The artifact columns holding at least one numeric-coercible cell."""
    out = []
    for column in artifact.columns:
        series = Series.make(column, [r.get(column) for r in artifact.rows])
        if any(v is not None for v in series.values):
            out.append(column)
    return out


def _column_series(artifact: Artifact | None, columns: list[str],
                   rows=None) -> list[Series]:
    """One series per column over ``rows`` (default: artifact rows)."""
    if artifact is None:
        return []
    rows = artifact.rows if rows is None else rows
    return [Series.make(c, [r.get(c) for r in rows]) for c in columns]


def _bar_figure(artifact: Artifact, ctx: RenderContext,
                category_column: str, value_columns: list[str],
                y_label: str, y_log: bool = False,
                categories: list[str] | None = None) -> str:
    """Shared grouped-bars path: current series + aligned golden ticks."""
    if categories is None:
        categories = [str(r.get(category_column)) for r in artifact.rows]
    series = _column_series(artifact, value_columns)
    golden = None
    if ctx.golden is not None and len(ctx.golden.rows) == len(artifact.rows):
        golden = _column_series(ctx.golden, value_columns)
    return grouped_bar_chart(artifact.title, categories, series,
                             y_label=y_label, y_log=y_log, golden=golden)


@register("fig8_cmrpo_t*")
def fig8_cmrpo(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 8: CMRPO (%) per workload, one bar group per workload."""
    schemes = [c for c in artifact.columns if c != "workload"]
    return _bar_figure(artifact, ctx, "workload", schemes, "CMRPO (%)")


@register("fig9_eto_t*")
def fig9_eto(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 9: ETO (%) per workload, one bar group per workload."""
    schemes = [c for c in artifact.columns if c != "workload"]
    return _bar_figure(artifact, ctx, "workload", schemes, "ETO (%)")


@register("fig10_sweep_t*")
def fig10_sweep(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 10: mean CMRPO vs counters M across CAT depth limits."""
    schemes = [c for c in artifact.columns if c != "M"]
    return _bar_figure(artifact, ctx, "M", schemes, "mean CMRPO (%)")


@register("fig11_mapping_t*")
def fig11_mapping(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 11: CMRPO per system configuration / mapping policy."""
    schemes = [c for c in artifact.columns if c != "config"]
    return _bar_figure(artifact, ctx, "config", schemes, "CMRPO (%)")


@register("fig12_thresholds")
def fig12_thresholds(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 12: mean CMRPO vs refresh threshold at iso-area."""
    schemes = [c for c in artifact.columns if c != "T"]
    return _bar_figure(artifact, ctx, "T", schemes, "mean CMRPO (%)")


@register("fig13_attacks")
def fig13_attacks(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 13: mean ETO under kernel attacks per (T, intensity)."""
    schemes = [c for c in artifact.columns if c not in ("T", "mode")]
    categories = [f"{r.get('T')}/{r.get('mode')}" for r in artifact.rows]
    return _bar_figure(artifact, ctx, "", schemes, "mean ETO (%)",
                       categories=categories)


@register("fig1_unsurvivability")
def fig1_unsurvivability(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 1: PRA 5-year unsurvivability vs threshold, log-y lines."""
    p_columns = [c for c in artifact.columns if c.startswith("p=")]
    xs = []
    for row in artifact.rows:
        label = str(row.get("T", "0")).lower().rstrip("k")
        try:
            xs.append(float(label))
        except ValueError:
            xs.append(None)
    series = _column_series(artifact, p_columns)
    golden = None
    if ctx.golden is not None and len(ctx.golden.rows) == len(artifact.rows):
        golden = _column_series(ctx.golden, p_columns)
    return line_chart(artifact.title, xs, series,
                      x_label="refresh threshold T (K rows)",
                      y_label="unsurvivability", y_log=True,
                      golden=golden,
                      ref_lines=[("Chipkill 1e-4", 1e-4)])


@register("fig1_lfsr_study")
def fig1_lfsr_study(artifact: Artifact, ctx: RenderContext) -> str:
    """Section III-A: LFSR vs TRNG window failure rates, log-y bars."""
    return _bar_figure(artifact, ctx, "source", ["failure_rate"],
                       "window failure rate", y_log=True)


@register("fig2_sca_energy")
def fig2_sca_energy(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 2: SCA energy vs M, log-log lines + cache reference lines."""
    sweep_rows = [r for r in artifact.rows
                  if isinstance(r.get("M"), (int, float))]
    xs = [float(r["M"]) for r in sweep_rows]
    columns = ["counter_nJ", "refresh_nJ", "total_nJ"]
    series = _column_series(artifact, columns, rows=sweep_rows)
    refs = []
    for row in artifact.rows:
        if isinstance(row.get("M"), str) and row.get("total_nJ") is not None:
            try:
                refs.append((str(row["M"]), float(row["total_nJ"])))
            except ValueError:
                continue
    golden = None
    if ctx.golden is not None:
        golden_rows = [r for r in ctx.golden.rows
                       if isinstance(r.get("M"), (int, float))]
        if len(golden_rows) == len(sweep_rows):
            golden = _column_series(ctx.golden, columns, rows=golden_rows)
    return line_chart(artifact.title, xs, series,
                      x_label="counters per bank M",
                      y_label="nJ per interval",
                      x_log=True, y_log=True, golden=golden, ref_lines=refs)


@register("fig3_row_frequency")
def fig3_row_frequency(artifact: Artifact, ctx: RenderContext) -> str:
    """Figure 3: access concentration per workload (log-y bar groups)."""
    columns = [c for c in artifact.columns if c != "workload"]
    return _bar_figure(artifact, ctx, "workload", columns,
                       "count / share (log)", y_log=True)


@register("counter_cache")
def counter_cache(artifact: Artifact, ctx: RenderContext) -> str:
    """Counter-cache comparison: victim rows per scheme per workload."""
    columns = [c for c in _numeric_columns(artifact) if c != "workload"]
    return _bar_figure(artifact, ctx, "workload", columns,
                       "per-interval magnitude (log)", y_log=True)


@register("ablation_presplit")
def ablation_presplit(artifact: Artifact, ctx: RenderContext) -> str:
    """Ablation: pre-split depth λ vs SRAM reads / refreshes / depth."""
    columns = [c for c in artifact.columns if c != "lambda"]
    categories = [f"λ={r.get('lambda')}" for r in artifact.rows]
    return _bar_figure(artifact, ctx, "", columns, "magnitude (log)",
                       y_log=True, categories=categories)


@register("ablation_thresholds")
def ablation_thresholds(artifact: Artifact, ctx: RenderContext) -> str:
    """Ablation: split-threshold schedule strategies, log-y bar groups."""
    columns = [c for c in artifact.columns if c != "strategy"]
    return _bar_figure(artifact, ctx, "strategy", columns,
                       "CMRPO (%) / rows (log)", y_log=True)


@register("table1_config")
@register("table2_hardware")
@register("table2_prng")
def tables(artifact: Artifact, ctx: RenderContext) -> str:
    """Tables I/II: monospaced table cards (no chart shape to re-create)."""
    return table_figure(artifact.title, list(artifact.columns),
                        [dict(r) for r in artifact.rows])


@register("power_breakdown")
def power_breakdown(artifact: Artifact, ctx: RenderContext) -> str:
    """Power figure: CMRPO component breakdown per scheme (log-y bars)."""
    columns = ["dynamic_mw", "static_mw", "refresh_mw", "total_mw"]
    categories = [f"{r.get('scheme')}@{r.get('T')}" for r in artifact.rows]
    return _bar_figure(artifact, ctx, "", columns,
                       "power (mW per bank, log)", y_log=True,
                       categories=categories)


@register("energy_savings")
def energy_savings(artifact: Artifact, ctx: RenderContext) -> str:
    """Energy figure: per-scheme mitigation energy saving vs baselines."""
    columns = [c for c in artifact.columns if c.startswith("savings_")]
    categories = [f"{r.get('scheme')}@{r.get('T')}" for r in artifact.rows]
    return _bar_figure(artifact, ctx, "", columns, "energy saving (%)",
                       categories=categories)
