"""Directory-level figure rendering: ``results/*.json`` → SVG + HTML.

This is the engine behind ``repro figures``: walk a directory of
``repro-figure-artifact`` JSON documents (a bench ``results/`` dir or a
golden store), resolve each artifact's renderer through the registry,
and write one deterministic SVG per figure plus an optional HTML index
(:mod:`repro.figures.html`) with golden-vs-current overlays and
tolerance annotations.

Failure policy mirrors the rest of the reporting layer:

* an artifact whose *kind* has no registered renderer is **skipped with
  a warning** (new benches may land before their renderer — the docs CI
  job's completeness check catches a registry gap on the golden store);
* an unreadable/invalid JSON document is skipped with a warning too
  (stray files live next to artifacts in ``results/``);
* a renderer *crash* is an error: it is reported per-figure and the run
  exits nonzero, because it means a registered renderer cannot handle
  an artifact it claims.

PNG output is best-effort and gated on optional dependencies (see
:func:`write_png`); SVG is the canonical, committed, diffable form.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.figures.registry import RenderContext, resolve
from repro.report.compare import compare_artifacts, declared_tolerances
from repro.report.schema import Artifact, SchemaError, load_artifact


@dataclass(frozen=True)
class RenderedFigure:
    """One successfully rendered artifact."""

    name: str
    title: str
    svg: str
    #: source JSON path (None when rendered from an in-memory artifact)
    source: Path | None = None
    #: "match" / "diff" / "no-golden" / "off" (overlay not requested)
    golden_status: str = "off"
    #: comparator outcome when a golden was found (None otherwise)
    diff: object = None
    #: column -> human-readable declared tolerance bound
    tolerances: dict = field(default_factory=dict)


@dataclass
class RenderReport:
    """Outcome of one directory render run."""

    rendered: list[RenderedFigure] = field(default_factory=list)
    #: (artifact name or file name, reason) — non-fatal
    skipped: list[tuple[str, str]] = field(default_factory=list)
    #: (artifact name, error message) — fatal for the run's exit code
    errors: list[tuple[str, str]] = field(default_factory=list)
    written: list[Path] = field(default_factory=list)
    index_path: Path | None = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no registered renderer crashed."""
        return not self.errors


def render_artifact(
    artifact: Artifact,
    golden: Artifact | None = None,
    *,
    source: Path | None = None,
) -> RenderedFigure | None:
    """Render one artifact through the registry (None = no renderer).

    When ``golden`` is given, the figure gets overlay marks and the
    comparator verdict (PASS/FAIL plus per-cell differences) is attached
    for the HTML index; tolerance annotations come from the verify
    tolerance policy either way.
    """
    renderer = resolve(artifact.name)
    if renderer is None:
        return None
    tolerances = declared_tolerances(artifact.name, artifact.columns)
    ctx = RenderContext(golden=golden, tolerances=tolerances)
    svg = renderer(artifact, ctx)
    status, diff = "off", None
    if golden is not None:
        diff = compare_artifacts(golden, artifact)
        status = "match" if diff.ok else "diff"
    return RenderedFigure(
        name=artifact.name,
        title=artifact.title,
        svg=svg,
        source=source,
        golden_status=status,
        diff=diff,
        tolerances=tolerances,
    )


def iter_artifact_paths(directory: Path) -> list[Path]:
    """The artifact JSON candidates of one directory, sorted by name."""
    return sorted(p for p in directory.glob("*.json") if p.is_file())


def write_png(svg_path: Path) -> Path | None:
    """Best-effort SVG → PNG next to ``svg_path`` (None = unavailable).

    Rasterisation needs a converter the core install does not require;
    ``cairosvg`` is used when importable.  Absence is not an error —
    SVG is the canonical output — the caller reports it once.
    """
    try:
        import cairosvg  # type: ignore[import-not-found]
    except ImportError:
        return None
    png_path = svg_path.with_suffix(".png")
    cairosvg.svg2png(url=str(svg_path), write_to=str(png_path))
    return png_path


def render_directory(
    results_dir: str | Path,
    out_dir: str | Path,
    *,
    golden_dir: str | Path | None = None,
    html: bool = False,
    only: list[str] | None = None,
    perf_path: str | Path | None = None,
    png: bool = False,
) -> RenderReport:
    """Render every artifact JSON under ``results_dir`` into ``out_dir``.

    ``golden_dir`` switches on golden-vs-current overlays (marks in the
    SVGs, verdicts in the index).  ``only`` restricts to the named
    artifacts.  ``html`` additionally writes ``index.html``;
    ``perf_path`` names a ``BENCH_perf.json`` whose trajectory chart is
    appended to the index.  Returns a :class:`RenderReport`; the caller
    maps ``report.ok`` / warnings onto exit codes.
    """
    from repro.figures.perf import render_perf_report

    t0 = time.perf_counter()
    results_dir = Path(results_dir)
    out_dir = Path(out_dir)
    golden_root = Path(golden_dir) if golden_dir is not None else None
    report = RenderReport()

    out_dir.mkdir(parents=True, exist_ok=True)
    png_missing_noted = False
    for path in iter_artifact_paths(results_dir):
        try:
            artifact = load_artifact(path)
        except SchemaError as exc:
            report.skipped.append((path.name, f"not a figure artifact: {exc}"))
            continue
        if only and artifact.name not in only:
            continue
        golden = None
        if golden_root is not None:
            golden_path = golden_root / f"{artifact.name}.json"
            if golden_path.is_file():
                try:
                    golden = load_artifact(golden_path)
                except SchemaError as exc:
                    report.skipped.append(
                        (artifact.name, f"unreadable golden: {exc}"))
        try:
            figure = render_artifact(artifact, golden, source=path)
        except Exception as exc:  # a registered renderer crashed
            report.errors.append((artifact.name, f"{type(exc).__name__}: {exc}"))
            continue
        if figure is None:
            report.skipped.append(
                (artifact.name,
                 "no renderer registered for this artifact kind"))
            continue
        if golden_root is not None and golden is None and \
                figure.golden_status == "off":
            figure = RenderedFigure(
                name=figure.name, title=figure.title, svg=figure.svg,
                source=figure.source, golden_status="no-golden",
                diff=None, tolerances=figure.tolerances,
            )
        svg_path = out_dir / f"{figure.name}.svg"
        svg_path.write_text(figure.svg, encoding="utf-8")
        report.written.append(svg_path)
        if png:
            png_path = write_png(svg_path)
            if png_path is not None:
                report.written.append(png_path)
            elif not png_missing_noted:
                report.skipped.append(
                    ("*.png", "no SVG rasteriser installed (cairosvg); "
                              "SVG output is canonical"))
                png_missing_noted = True
        report.rendered.append(figure)

    perf_figure = None
    if perf_path is not None and Path(perf_path).is_file():
        try:
            perf_figure = render_perf_report(Path(perf_path))
        except (ValueError, KeyError, OSError) as exc:
            report.skipped.append(
                (str(perf_path), f"perf report unreadable: {exc}"))
    if perf_figure is not None:
        perf_svg = out_dir / "bench_perf.svg"
        perf_svg.write_text(perf_figure.svg, encoding="utf-8")
        report.written.append(perf_svg)

    if html:
        from repro.figures.html import build_index

        index = build_index(
            report.rendered,
            skipped=report.skipped,
            errors=report.errors,
            perf=perf_figure,
            source=str(results_dir),
            overlay=golden_root is not None,
        )
        index_path = out_dir / "index.html"
        index_path.write_text(index, encoding="utf-8")
        report.written.append(index_path)
        report.index_path = index_path
    report.elapsed_s = time.perf_counter() - t0
    return report
