"""Figure/report rendering layer: JSON artifacts → SVG figures + HTML.

The last mile of the reproduction pipeline.  Benches emit versioned
JSON artifacts (:mod:`repro.report.schema`), ``repro verify`` gates
them against goldens, and this package makes them *visible*: a renderer
registry maps every artifact kind to a deterministic SVG figure
(:mod:`repro.figures.paper` via :mod:`repro.figures.registry`), and
``repro figures [--html]`` renders a whole directory into an
index page with golden-vs-current overlays, tolerance annotations, and
the perf trajectory (:mod:`repro.figures.render`,
:mod:`repro.figures.html`, :mod:`repro.figures.perf`).

Everything here is standard-library only (see
:mod:`repro.figures.svg`); optional rasterisers are gated, never
required.  See DESIGN.md "The reporting layer" and docs/REPORT.md for
the rendered gallery.
"""

from repro.figures.registry import (
    RenderContext,
    register,
    registered_patterns,
    renderer_for,
    resolve,
)
from repro.figures.render import (
    RenderedFigure,
    RenderReport,
    render_artifact,
    render_directory,
)

__all__ = [
    "RenderContext",
    "RenderReport",
    "RenderedFigure",
    "register",
    "registered_patterns",
    "render_artifact",
    "render_directory",
    "renderer_for",
    "resolve",
]
