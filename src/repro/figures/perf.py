"""Perf-trajectory figure: the repo-root ``BENCH_perf.json`` as a chart.

``benchmarks/bench_perf.py`` measures the engine and sweep-infrastructure
speedups every PR and writes a ``repro-perf-report`` document to the
repository root (CI uploads it as an artifact).  This module renders
that document as one horizontal-bar figure — the at-a-glance "how fast
is the hot path now" panel the HTML index appends after the paper
figures.

The report is a different document kind from figure artifacts (no rows/
columns contract), so it gets a dedicated loader here instead of a
registry renderer.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.figures.render import RenderedFigure
from repro.figures.svg import Series, grouped_bar_chart

#: Document discriminator of ``benchmarks/bench_perf.py`` reports.
PERF_KIND = "repro-perf-report"


def perf_speedup_rows(doc: dict) -> list[tuple[str, float]]:
    """(label, speedup) pairs extracted from one perf report document.

    Collects the per-scheme engine speedups plus the sweep-cache, trace-
    store, and pool-reuse multipliers — every "×" headline the perf
    bench gates.  Missing sections are simply absent (older reports).
    """
    rows: list[tuple[str, float]] = []
    for scheme, stats in sorted(doc.get("schemes", {}).items()):
        if "speedup_vs_scalar" in stats:
            rows.append((f"{scheme}: batched vs scalar",
                         float(stats["speedup_vs_scalar"])))
        if "speedup_vs_seed_path" in stats:
            rows.append((f"{scheme}: batched vs seed path",
                         float(stats["speedup_vs_seed_path"])))
    cache = doc.get("sweep_cache", {})
    if "speedup" in cache:
        rows.append(("sweep cache: warm vs cold", float(cache["speedup"])))
    trace = doc.get("trace_sweep", {})
    if "cold_speedup_vs_off" in trace:
        rows.append(("trace store: cold vs off",
                     float(trace["cold_speedup_vs_off"])))
    if "warm_speedup_vs_off" in trace:
        rows.append(("trace store: warm vs off",
                     float(trace["warm_speedup_vs_off"])))
    pool = doc.get("sweep_pool", {})
    if "reuse_speedup" in pool:
        rows.append(("pool: reused vs cold spawn",
                     float(pool["reuse_speedup"])))
    return rows


def render_perf_report(path: str | Path) -> RenderedFigure:
    """Render ``BENCH_perf.json`` to the perf-trajectory figure.

    Raises ``ValueError`` when the document is not a perf report (the
    directory renderer downgrades that to a skip warning).
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("kind") != PERF_KIND:
        raise ValueError(f"{path}: not a {PERF_KIND!r} document")
    rows = perf_speedup_rows(doc)
    if not rows:
        raise ValueError(f"{path}: perf report carries no speedup figures")
    kwargs = doc.get("sim_kwargs", {})
    title = (
        "Performance trajectory — measured speedups "
        f"(workload={doc.get('workload', '?')}, "
        f"scale={kwargs.get('scale', '?')})"
    )
    svg = grouped_bar_chart(
        title,
        [label for label, _ in rows],
        [Series.make("speedup (x)", [v for _, v in rows])],
        y_label="speedup (x, log)",
        y_log=True,
        width=860,
    )
    return RenderedFigure(name="bench_perf", title=title, svg=svg,
                          source=path)
