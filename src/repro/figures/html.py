"""Self-contained HTML index for a rendered figure set.

One page, zero external assets: every figure's SVG is inlined, so the
file can be opened from a CI artifact bundle or e-mailed around without
a web server.  The page is deterministic (no timestamps) for the same
reason the SVGs are — rendering the same artifacts twice must produce
identical bytes.

Layout:

* a summary table — one row per artifact (name, title, golden verdict,
  declared tolerances) linking to its section — which is also the
  machine-checkable completeness surface the docs CI job asserts on
  (``id="summary"``, one ``data-artifact`` row per input);
* one section per figure: the inline SVG, the golden-vs-current verdict
  with per-cell differences when a golden was compared, and the
  tolerance-policy annotations that explain how much drift ``repro
  verify`` would accept;
* skipped-input warnings (unknown artifact kinds, stray JSON);
* the perf-trajectory panel from ``BENCH_perf.json`` when available.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

_STYLE = """
body { font-family: ui-sans-serif, 'Helvetica Neue', Arial, sans-serif;
       margin: 2rem auto; max-width: 960px; color: #222; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2.5rem; }
table.summary { border-collapse: collapse; width: 100%; font-size: 0.9rem; }
table.summary th, table.summary td { border-bottom: 1px solid #ddd;
       text-align: left; padding: 0.3rem 0.6rem; }
.badge { padding: 0.1rem 0.5rem; border-radius: 0.6rem; font-size: 0.8rem; }
.badge.match { background: #d9efd9; color: #145214; }
.badge.diff { background: #f6d5d5; color: #7a1212; }
.badge.no-golden { background: #eee8d0; color: #6b5b10; }
.badge.off { background: #e8e8e8; color: #555; }
.tolerance { color: #6b5b10; font-size: 0.85rem; }
.diffs { color: #7a1212; font-size: 0.85rem; white-space: pre-wrap; }
.warnings { color: #6b5b10; font-size: 0.9rem; }
.errors { color: #7a1212; font-size: 0.9rem; }
figure { margin: 1rem 0; } figure svg { max-width: 100%; height: auto; }
.meta { color: #666; font-size: 0.85rem; }
"""

_BADGE_TEXT = {
    "match": "matches golden",
    "diff": "DIFFERS from golden",
    "no-golden": "no golden found",
    "off": "no overlay",
}


def _badge(status: str) -> str:
    return (f'<span class="badge {escape(status)}">'
            f"{escape(_BADGE_TEXT.get(status, status))}</span>")


def _tolerance_note(figure) -> str:
    if not figure.tolerances:
        return ""
    items = "; ".join(f"{escape(col)}: {escape(bound)}"
                      for col, bound in sorted(figure.tolerances.items()))
    return (f'<p class="tolerance">declared verify tolerances — {items} '
            "(all other metrics gate exactly)</p>")


def _diff_block(figure) -> str:
    diff = figure.diff
    if diff is None or diff.ok:
        return ""
    lines = "\n".join(escape(d.render()) for d in diff.differences)
    return (f'<p class="diffs">{len(diff.differences)} difference(s) vs '
            f"golden:\n{lines}</p>")


def build_index(
    rendered: list,
    *,
    skipped: list[tuple[str, str]] | None = None,
    errors: list[tuple[str, str]] | None = None,
    perf=None,
    source: str = "",
    overlay: bool = False,
) -> str:
    """Assemble the index page (returns full HTML text).

    ``rendered`` is the :class:`~repro.figures.render.RenderedFigure`
    list in render order; ``perf`` an optional perf-trajectory figure;
    ``skipped``/``errors`` the non-fatal and fatal problem lists from
    the :class:`~repro.figures.render.RenderReport`.
    """
    skipped = skipped or []
    errors = errors or []
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        "<title>repro figure index</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>repro figure index</h1>",
        f'<p class="meta">rendered from <code>{escape(source)}</code> — '
        f"{len(rendered)} figure(s)"
        + (", golden overlay on" if overlay else "")
        + "</p>",
    ]

    parts.append('<table class="summary" id="summary">')
    parts.append("<tr><th>artifact</th><th>title</th><th>golden</th>"
                 "<th>tolerances</th></tr>")
    for figure in rendered:
        tol = ", ".join(sorted(figure.tolerances)) or "exact"
        parts.append(
            f'<tr data-artifact="{escape(figure.name)}">'
            f'<td><a href="#{escape(figure.name)}">'
            f"{escape(figure.name)}</a></td>"
            f"<td>{escape(figure.title)}</td>"
            f"<td>{_badge(figure.golden_status)}</td>"
            f"<td>{escape(tol)}</td></tr>"
        )
    parts.append("</table>")

    if errors:
        parts.append('<div class="errors"><p>render errors:</p><ul>')
        for name, reason in errors:
            parts.append(f"<li><code>{escape(name)}</code>: "
                         f"{escape(reason)}</li>")
        parts.append("</ul></div>")
    if skipped:
        parts.append('<div class="warnings"><p>skipped inputs:</p><ul>')
        for name, reason in skipped:
            parts.append(f"<li><code>{escape(name)}</code>: "
                         f"{escape(reason)}</li>")
        parts.append("</ul></div>")

    for figure in rendered:
        parts.append(f'<h2 id="{escape(figure.name)}">'
                     f"{escape(figure.name)}</h2>")
        parts.append(f'<p class="meta">{escape(figure.title)} '
                     f"{_badge(figure.golden_status)}</p>")
        parts.append(_tolerance_note(figure))
        parts.append(_diff_block(figure))
        parts.append(f"<figure>{figure.svg}</figure>")

    if perf is not None:
        parts.append('<h2 id="bench_perf">performance trajectory</h2>')
        parts.append(f'<p class="meta">{escape(perf.title)}</p>')
        parts.append(f"<figure>{perf.svg}</figure>")

    parts.append("</body></html>")
    return "\n".join(p for p in parts if p) + "\n"
