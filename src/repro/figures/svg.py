"""Deterministic, dependency-free SVG chart backend.

The rendering layer must work in any environment the simulator works in
(CI runners, containers without a display or matplotlib), and its output
must be byte-for-byte reproducible so rendered figures can be committed
and diffed like the JSON artifacts they come from.  This module is that
backend: a small plot kit written against nothing but the standard
library, emitting stable SVG text — fixed float formatting, no
timestamps, no randomness, element order fixed by input order.

Three chart forms cover every paper figure (see
:mod:`repro.figures.paper`):

* :func:`grouped_bar_chart` — categorical x-axis, one bar group per
  category (Figures 8-13, the ablations, the attack tables);
* :func:`line_chart` — numeric x-axis with optional log scales
  (Figure 2's energy sweep, Figure 1's unsurvivability curves);
* :func:`table_figure` — monospaced table card (Tables I/II).

Golden-overlay marks: bar charts accept per-series *golden* values and
draw them as horizontal tick marks over the bars; line charts draw the
golden series dashed.  Differences beyond the verify tolerance are the
comparator's business (:mod:`repro.report.compare`); the overlay is a
visual aid, not a gate.

When matplotlib is installed the rendered SVG can additionally be
rasterised to PNG (see :func:`repro.figures.render.write_png`); nothing
in this module imports it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

#: Categorical series palette (colour-blind-safe Okabe-Ito order).
PALETTE = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#CC79A7",  # magenta
    "#56B4E9",  # sky
    "#D55E00",  # vermillion
    "#F0E442",  # yellow
    "#999999",  # grey
)

#: Overlay mark colour (golden reference ticks / dashed lines).
GOLDEN_COLOR = "#222222"

_FONT = "ui-sans-serif, 'Helvetica Neue', Arial, sans-serif"
_MONO = "ui-monospace, 'SF Mono', Menlo, Consolas, monospace"


def fmt(value: float) -> str:
    """Deterministic short decimal form for SVG coordinates."""
    text = f"{value:.2f}"
    if text == "-0.00":
        text = "0.00"
    return text


def fmt_tick(value: float) -> str:
    """Deterministic human tick label (3 significant digits, SI-free)."""
    if value == 0:
        return "0"
    mag = abs(value)
    if mag >= 1e5 or mag < 1e-3:
        return f"{value:.1e}"
    if mag >= 100:
        return f"{value:.0f}"
    if mag >= 1:
        return f"{value:g}" if value == round(value, 2) else f"{value:.2f}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """~n 'nice' linear tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if span / step <= n:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * span:
        ticks.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return ticks


def log_ticks(lo: float, hi: float, n: int = 10) -> list[float]:
    """Decade tick positions covering [lo, hi] (both must be > 0).

    Wide ranges (Figure 1 spans ~75 decades) are strided so at most
    ~``n`` labels render; the stride is a whole number of decades, so
    every tick stays an exact power of ten.
    """
    lo_exp = math.floor(math.log10(lo))
    hi_exp = math.ceil(math.log10(hi))
    stride = max(1, math.ceil((hi_exp - lo_exp + 1) / n))
    first = stride * math.ceil(lo_exp / stride)
    return [10.0 ** e for e in range(first, hi_exp + 1, stride)]


@dataclass(frozen=True)
class Series:
    """One named value series of a chart."""

    label: str
    values: tuple
    color: str = ""

    @staticmethod
    def make(label: str, values, color: str = "") -> "Series":
        """Build a series, tolerating None/str cells (coerced or dropped)."""
        coerced = []
        for v in values:
            if isinstance(v, bool):
                coerced.append(None)
            elif isinstance(v, (int, float)):
                coerced.append(float(v))
            elif isinstance(v, str):
                try:
                    coerced.append(float(v))
                except ValueError:
                    coerced.append(None)
            else:
                coerced.append(None)
        return Series(label, tuple(coerced), color)


@dataclass
class SvgDoc:
    """An SVG document under construction (append-only element list)."""

    width: int
    height: int
    parts: list = field(default_factory=list)

    def line(self, x1, y1, x2, y2, stroke="#333", width=1.0, dash=""):
        """Append one line segment."""
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{fmt(x1)}" y1="{fmt(y1)}" x2="{fmt(x2)}" '
            f'y2="{fmt(y2)}" stroke="{stroke}" stroke-width="{width:g}"{d}/>'
        )

    def rect(self, x, y, w, h, fill, stroke="none", opacity=1.0, title=""):
        """Append one rectangle (optionally with a hover tooltip)."""
        tip = f"<title>{escape(title)}</title>" if title else ""
        op = f' fill-opacity="{opacity:g}"' if opacity != 1.0 else ""
        self.parts.append(
            f'<rect x="{fmt(x)}" y="{fmt(y)}" width="{fmt(w)}" '
            f'height="{fmt(h)}" fill="{fill}" stroke="{stroke}"{op}>'
            f"{tip}</rect>"
        )

    def circle(self, cx, cy, r, fill, title=""):
        """Append one dot marker."""
        tip = f"<title>{escape(title)}</title>" if title else ""
        self.parts.append(
            f'<circle cx="{fmt(cx)}" cy="{fmt(cy)}" r="{r:g}" '
            f'fill="{fill}">{tip}</circle>'
        )

    def polyline(self, points, stroke, width=2.0, dash=""):
        """Append one open polyline through ``points`` [(x, y), ...]."""
        if not points:
            return
        coords = " ".join(f"{fmt(x)},{fmt(y)}" for x, y in points)
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:g}"{d}/>'
        )

    def text(self, x, y, content, size=12, anchor="start", color="#222",
             mono=False, rotate=None, bold=False):
        """Append one text element."""
        family = _MONO if mono else _FONT
        extra = ' font-weight="600"' if bold else ""
        if rotate is not None:
            extra += f' transform="rotate({rotate:g} {fmt(x)} {fmt(y)})"'
        self.parts.append(
            f'<text x="{fmt(x)}" y="{fmt(y)}" font-family="{family}" '
            f'font-size="{size:g}" text-anchor="{anchor}" '
            f'fill="{color}"{extra}>{escape(str(content))}</text>'
        )

    def tostring(self) -> str:
        """Serialise the document to standalone SVG text."""
        head = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" role="img">'
        )
        background = (
            f'<rect x="0" y="0" width="{self.width}" '
            f'height="{self.height}" fill="#ffffff"/>'
        )
        return "\n".join([head, background, *self.parts, "</svg>"]) + "\n"


class _Scale:
    """Map one data axis onto a pixel interval (linear or log10)."""

    def __init__(self, lo: float, hi: float, px_lo: float, px_hi: float,
                 log: bool = False):
        if log:
            lo = max(lo, 1e-300)
            hi = max(hi, lo * 10.0)
            self._lo, self._hi = math.log10(lo), math.log10(hi)
        else:
            if hi <= lo:
                hi = lo + 1.0
            self._lo, self._hi = lo, hi
        self._px_lo, self._px_hi = px_lo, px_hi
        self.log = log

    def __call__(self, value: float) -> float:
        v = math.log10(max(value, 1e-300)) if self.log else value
        frac = (v - self._lo) / (self._hi - self._lo)
        return self._px_lo + frac * (self._px_hi - self._px_lo)


def _series_colors(series: list[Series]) -> list[str]:
    return [s.color or PALETTE[i % len(PALETTE)]
            for i, s in enumerate(series)]


def _finite(series: list[Series]) -> list[float]:
    return [v for s in series for v in s.values
            if v is not None and math.isfinite(v)]


def _legend(doc: SvgDoc, series: list[Series], colors: list[str],
            x: float, y: float) -> None:
    """One-row legend of colour swatches starting at (x, y)."""
    cx = x
    for s, color in zip(series, colors):
        doc.rect(cx, y - 9, 10, 10, fill=color)
        doc.text(cx + 14, y, s.label, size=11)
        cx += 24 + 7 * len(s.label)


def _frame(doc: SvgDoc, title: str, left: float, right: float,
           top: float, bottom: float) -> None:
    """Title plus the two axis lines of the plot frame."""
    doc.text(10, 20, title, size=13, bold=True)
    doc.line(left, top, left, bottom)
    doc.line(left, bottom, right, bottom)


def _y_axis(doc: SvgDoc, scale: _Scale, lo: float, hi: float,
            left: float, right: float, y_log: bool, label: str) -> None:
    """Horizontal gridlines + tick labels on the y axis."""
    ticks = log_ticks(lo, hi) if y_log else nice_ticks(lo, hi)
    for t in ticks:
        py = scale(t)
        doc.line(left, py, right, py, stroke="#dddddd", width=0.5)
        doc.text(left - 6, py + 4, fmt_tick(t), size=10, anchor="end",
                 color="#555")
    if label:
        doc.text(12, 34, label, size=10, color="#555")


def grouped_bar_chart(
    title: str,
    categories: list[str],
    series: list[Series],
    *,
    y_label: str = "",
    y_log: bool = False,
    golden: list[Series] | None = None,
    width: int = 720,
    height: int = 360,
) -> str:
    """Render one grouped bar chart to SVG text.

    ``categories`` labels the x axis (one bar group each); ``series``
    supplies one bar per group per series.  ``golden`` (series aligned
    with ``series``) draws reference tick marks at the golden values.
    Non-finite / missing values simply render no bar.
    """
    left, right, top, bottom = 64, width - 16, 36, height - 64
    doc = SvgDoc(width, height)
    colors = _series_colors(series)

    values = _finite(series) + (_finite(golden) if golden else [])
    if y_log:
        positives = [v for v in values if v > 0] or [1.0]
        lo, hi = min(positives) / 1.5, max(positives) * 1.5
    else:
        lo = min(0.0, min(values, default=0.0))
        hi = max(values, default=1.0) * 1.08 or 1.0
    scale = _Scale(lo, hi, bottom, top, log=y_log)

    _frame(doc, title, left, right, top, bottom)
    _y_axis(doc, scale, lo, hi, left, right, y_log, y_label)

    n_groups = max(1, len(categories))
    n_series = max(1, len(series))
    group_w = (right - left) / n_groups
    bar_w = max(1.5, 0.8 * group_w / n_series)
    base_py = scale(max(lo, 1e-300) if y_log else 0.0)

    for gi, cat in enumerate(categories):
        gx = left + gi * group_w
        rotate = len(categories) > 8 or max(
            (len(c) for c in categories), default=0) > 8
        doc.text(gx + group_w / 2, bottom + (14 if not rotate else 10),
                 cat, size=10, anchor="end" if rotate else "middle",
                 rotate=-35 if rotate else None, color="#333")
        for si, (s, color) in enumerate(zip(series, colors)):
            v = s.values[gi] if gi < len(s.values) else None
            bx = gx + group_w * 0.1 + si * bar_w
            if v is not None and math.isfinite(v) and (v > 0 or not y_log):
                py = scale(v)
                y0, y1 = min(py, base_py), max(py, base_py)
                doc.rect(bx, y0, bar_w * 0.92, max(y1 - y0, 0.75),
                         fill=color, title=f"{cat} / {s.label}: {v:g}")
            if golden and si < len(golden):
                gv = (golden[si].values[gi]
                      if gi < len(golden[si].values) else None)
                if gv is not None and math.isfinite(gv) and \
                        (gv > 0 or not y_log):
                    gy = scale(gv)
                    doc.line(bx - 1, gy, bx + bar_w * 0.92 + 1, gy,
                             stroke=GOLDEN_COLOR, width=1.5)
    _legend(doc, series, colors, left, height - 10)
    if golden:
        gx0 = left + sum(24 + 7 * len(s.label) for s in series)
        doc.line(gx0, height - 14, gx0 + 12, height - 14,
                 stroke=GOLDEN_COLOR, width=1.5)
        doc.text(gx0 + 16, height - 10, "golden", size=11)
    return doc.tostring()


def line_chart(
    title: str,
    x_values: list[float],
    series: list[Series],
    *,
    x_label: str = "",
    y_label: str = "",
    x_log: bool = False,
    y_log: bool = False,
    golden: list[Series] | None = None,
    ref_lines: list[tuple[str, float]] | None = None,
    width: int = 720,
    height: int = 360,
) -> str:
    """Render one multi-series line chart to SVG text.

    ``ref_lines`` draws labelled horizontal reference levels (Figure 2's
    counter-cache lines).  ``golden`` series render dashed in the
    overlay colour.  Points with missing values break the polyline.
    """
    left, right, top, bottom = 64, width - 16, 36, height - 64
    doc = SvgDoc(width, height)
    colors = _series_colors(series)

    xs = [x for x in x_values if x is not None and math.isfinite(x)]
    values = _finite(series) + (_finite(golden) if golden else [])
    if ref_lines:
        values += [v for _, v in ref_lines]
    if y_log:
        positives = [v for v in values if v > 0] or [1.0]
        lo, hi = min(positives) / 1.5, max(positives) * 1.5
    else:
        lo = min(0.0, min(values, default=0.0))
        hi = max(values, default=1.0) * 1.08 or 1.0
    x_lo, x_hi = (min(xs, default=0.0), max(xs, default=1.0))
    xscale = _Scale(x_lo, x_hi, left, right, log=x_log)
    yscale = _Scale(lo, hi, bottom, top, log=y_log)

    _frame(doc, title, left, right, top, bottom)
    _y_axis(doc, yscale, lo, hi, left, right, y_log, y_label)
    x_ticks = log_ticks(max(x_lo, 1e-300), max(x_hi, 1e-299)) if x_log \
        else nice_ticks(x_lo, x_hi, 7)
    for t in x_ticks:
        px = xscale(t)
        doc.line(px, bottom, px, bottom + 4)
        doc.text(px, bottom + 16, fmt_tick(t), size=10, anchor="middle",
                 color="#555")
    if x_label:
        doc.text((left + right) / 2, bottom + 32, x_label, size=10,
                 anchor="middle", color="#555")

    def draw(all_series, dash):
        for s, color in zip(all_series, colors):
            segment = []
            markers = []
            for x, v in zip(x_values, s.values):
                usable = (x is not None and v is not None
                          and math.isfinite(x) and math.isfinite(v)
                          and (v > 0 or not y_log) and (x > 0 or not x_log))
                if usable:
                    px, py = xscale(x), yscale(v)
                    segment.append((px, py))
                    markers.append((px, py, x, v))
                else:
                    doc.polyline(segment, color, dash=dash)
                    segment = []
            doc.polyline(segment, color, dash=dash)
            if not dash:
                for px, py, x, v in markers:
                    doc.circle(px, py, 2.5, color,
                               title=f"{s.label}: x={x:g}, y={v:g}")

    draw(series, dash="")
    if golden:
        draw(golden, dash="5,4")
    for label, level in ref_lines or []:
        py = yscale(level)
        doc.line(left, py, right, py, stroke="#888888", width=1.0,
                 dash="2,3")
        doc.text(right - 4, py - 4, label, size=10, anchor="end",
                 color="#666")
    _legend(doc, series, colors, left, height - 10)
    if golden:
        gx0 = left + sum(24 + 7 * len(s.label) for s in series)
        doc.line(gx0, height - 14, gx0 + 12, height - 14,
                 stroke=GOLDEN_COLOR, width=1.5, dash="5,4")
        doc.text(gx0 + 16, height - 10, "golden (dashed)", size=11)
    return doc.tostring()


def table_figure(
    title: str,
    columns: list[str],
    rows: list[dict],
    *,
    width: int = 840,
) -> str:
    """Render one table artifact as a monospaced SVG card."""
    col_w = {
        c: max(len(c), *(len(_cell(r.get(c))) for r in rows), 1) if rows
        else len(c)
        for c in columns
    }
    line_h, pad = 20, 12
    height = 64 + line_h * (len(rows) + 1) + pad
    doc = SvgDoc(width, height)
    doc.text(10, 20, title, size=13, bold=True)
    x = 16
    y = 48
    xs = []
    for c in columns:
        xs.append(x)
        doc.text(x, y, c, size=12, mono=True, bold=True)
        x += 9 * (col_w[c] + 2)
    doc.line(16, y + 6, min(x, width - 10), y + 6, stroke="#999")
    for i, row in enumerate(rows):
        ry = y + line_h * (i + 1)
        if i % 2 == 1:
            doc.rect(12, ry - 14, min(x, width - 10) - 10, line_h,
                     fill="#f4f4f4")
        for c, cx in zip(columns, xs):
            doc.text(cx, ry, _cell(row.get(c)), size=12, mono=True)
    return doc.tostring()


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
