"""Reproduction of *Mitigating Wordline Crosstalk Using Adaptive Trees of
Counters* (Seyedzadeh, Jones, Melhem — ISCA 2018).

The package implements the paper's contribution — the Counter-based
Adaptive Tree (CAT) family of rowhammer/wordline-crosstalk mitigation
schemes — together with every substrate the evaluation depends on:

* :mod:`repro.core` — CAT tree, PRCAT, DRCAT, and the SCA / PRA baselines.
* :mod:`repro.dram` — a DDR3-style bank/channel substrate with targeted
  refresh and bank-blocking accounting.
* :mod:`repro.cpu` — USIMM-style trace records and a ROB-limited front end.
* :mod:`repro.workloads` — synthetic generators for the 18 Memory
  Scheduling Championship workloads and the 12 kernel rowhammer attacks.
* :mod:`repro.energy` — the Table II hardware energy/area model and the
  CMRPO metric.
* :mod:`repro.analysis` — analytical models (PRA unsurvivability, LFSR
  Monte-Carlo, SCA energy breakdown, split-threshold cost model).
* :mod:`repro.sim` — the trace-driven simulator and experiment runner.

Quickstart::

    from repro import ExperimentSpec, SchemeSpec, run_spec
    spec = ExperimentSpec(
        scheme=SchemeSpec.create("drcat", n_counters=64),
        workload="blackscholes",
    )
    result = run_spec(spec)
    print(result.cmrpo, result.eto)

or, for one-off convenience runs::

    from repro import simulate_workload
    result = simulate_workload("blackscholes", scheme="drcat")
"""

from repro.core import (
    CounterTree,
    DRCATScheme,
    MitigationScheme,
    PRAScheme,
    PRCATScheme,
    RefreshCommand,
    SCAScheme,
    SplitThresholds,
    make_scheme,
)
from repro.dram.config import DRAMTimings, SystemConfig
from repro.energy.cmrpo import CMRPOBreakdown, compute_cmrpo
from repro.experiments import (
    ExperimentSpec,
    Plan,
    ResultCache,
    SchemeSpec,
    run_plan,
    run_spec,
)
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate_workload, sweep

__version__ = "1.0.0"

__all__ = [
    "CounterTree",
    "SplitThresholds",
    "MitigationScheme",
    "RefreshCommand",
    "SCAScheme",
    "PRAScheme",
    "PRCATScheme",
    "DRCATScheme",
    "make_scheme",
    "SystemConfig",
    "DRAMTimings",
    "CMRPOBreakdown",
    "compute_cmrpo",
    "SimulationResult",
    "ExperimentSpec",
    "SchemeSpec",
    "Plan",
    "ResultCache",
    "run_spec",
    "run_plan",
    "simulate_workload",
    "sweep",
    "__version__",
]
