"""Reproduction of *Mitigating Wordline Crosstalk Using Adaptive Trees of
Counters* (Seyedzadeh, Jones, Melhem — ISCA 2018).

The package implements the paper's contribution — the Counter-based
Adaptive Tree (CAT) family of rowhammer/wordline-crosstalk mitigation
schemes — together with every substrate the evaluation depends on:

* :mod:`repro.core` — CAT tree, PRCAT, DRCAT, and the SCA / PRA baselines.
* :mod:`repro.dram` — a DDR3-style bank/channel substrate with targeted
  refresh and bank-blocking accounting.
* :mod:`repro.cpu` — USIMM-style trace records and a ROB-limited front end.
* :mod:`repro.workloads` — synthetic generators for the 18 Memory
  Scheduling Championship workloads and the 12 kernel rowhammer attacks.
* :mod:`repro.energy` — the Table II hardware energy/area model and the
  CMRPO metric.
* :mod:`repro.analysis` — analytical models (PRA unsurvivability, LFSR
  Monte-Carlo, SCA energy breakdown, split-threshold cost model).
* :mod:`repro.sim` — the trace-driven simulator and experiment runner.
* :mod:`repro.server` — ``repro serve``, the stdlib-only HTTP + SSE
  service over the experiment layer (content-hash dedup, sharded plan
  scheduling, streamed per-epoch metrics).

Quickstart — stream a run incrementally through the session API::

    from repro import ExperimentSpec, SchemeSpec, open_session
    session = open_session(ExperimentSpec(
        scheme=SchemeSpec.create("drcat", n_counters=64),
        workload="blackscholes",
    ))
    session.on_epoch(lambda e: print(e.epoch, e.delta.eto))
    session.advance(session.total_ns / 2)   # pausable, checkpointable
    snap = session.snapshot()               # JSON-able; resume anywhere
    result = session.result()
    print(result.cmrpo, result.eto)

or, for one-shot batch runs::

    from repro import simulate_workload
    result = simulate_workload("blackscholes", scheme="drcat")
"""

from repro._version import __version__

from repro.core import (
    CounterTree,
    DRCATScheme,
    MitigationScheme,
    PRAScheme,
    PRCATScheme,
    RefreshCommand,
    SCAScheme,
    SplitThresholds,
    make_scheme,
)
from repro.dram.config import DRAMTimings, SystemConfig
from repro.energy.cmrpo import CMRPOBreakdown, compute_cmrpo
from repro.errors import (
    CellExecutionError,
    CellFailure,
    FatalError,
    ReproError,
    RetryableError,
)
from repro.experiments import (
    ExperimentSpec,
    Plan,
    ResultCache,
    SchemeSpec,
    SweepReport,
    run_plan,
    run_spec,
)
from repro.api import Session, open_session
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate_workload, sweep

# __version__ comes from repro/_version.py, the single source setup.py
# also builds the distribution metadata from.  The co-located constant
# is preferred over importlib.metadata deliberately: it ships with
# every install *and* always describes the code actually imported,
# whereas a metadata lookup can be shadowed by a stale installed
# distribution when developing with PYTHONPATH=src.

__all__ = [
    "CounterTree",
    "SplitThresholds",
    "MitigationScheme",
    "RefreshCommand",
    "SCAScheme",
    "PRAScheme",
    "PRCATScheme",
    "DRCATScheme",
    "make_scheme",
    "SystemConfig",
    "DRAMTimings",
    "CMRPOBreakdown",
    "compute_cmrpo",
    "SimulationResult",
    "ExperimentSpec",
    "SchemeSpec",
    "Plan",
    "ResultCache",
    "run_spec",
    "run_plan",
    "SweepReport",
    "ReproError",
    "RetryableError",
    "FatalError",
    "CellFailure",
    "CellExecutionError",
    "simulate_workload",
    "sweep",
    "Session",
    "open_session",
    "__version__",
]
