"""Shared-work registry: one execution per content hash, many waiters.

The experiment layer's specs and plans are content-hashed
(:meth:`ExperimentSpec.content_hash` / :meth:`Plan.content_hash`), which
gives concurrent submitters a precise identity for "the same work".
:class:`SharedWorkRegistry` turns that identity into in-flight
deduplication: the first claimant of a hash becomes the *owner* and
actually executes; every later claimant while the work is still in
flight is handed the owner's ticket instead of starting a duplicate.
Completed work leaves the registry — re-submissions of finished work are
served by the :class:`~repro.experiments.cache.ResultCache` (hits) or
re-executed (the cache was cleared; there is nothing to share).

The registry is in-process and thread-safe — exactly the scope
``repro serve`` needs, where every submission lands on one asyncio
process before fan-out.  *Cross-process* duplicate suppression is the
result cache's job (completed cells flush as they land, so a second
process's cells hit), guarded by the advisory publish lock in
:mod:`repro.locking`.
"""

from __future__ import annotations

import threading
from typing import Generic, TypeVar

T = TypeVar("T")


class SharedWorkRegistry(Generic[T]):
    """Thread-safe map of in-flight work, keyed by content hash.

    Tickets are opaque caller objects (``repro serve`` stores job ids).
    The lifecycle is ``claim`` → work runs → ``release``; claims between
    the two share the owner's ticket.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, T] = {}
        #: claims satisfied by an existing in-flight ticket (the
        #: submissions that did *zero* new work); exposed on the
        #: server's health surface and asserted by the dedup tests.
        self.shared = 0

    def claim(self, key: str, ticket: T) -> tuple[T, bool]:
        """Claim ``key``; returns ``(ticket, owner?)``.

        The first claimant's ticket is recorded and returned with
        ``owner=True`` — that caller must eventually :meth:`release`.
        Later claimants get the recorded ticket with ``owner=False``.
        """
        with self._lock:
            held = self._inflight.get(key)
            if held is not None:
                self.shared += 1
                return held, False
            self._inflight[key] = ticket
            return ticket, True

    def release(self, key: str, ticket: T) -> None:
        """Retire ``key`` (idempotent; only the owner's ticket matches).

        Called when the work completes *or fails* — a failed execution
        must not pin later identical submissions to its dead ticket.
        """
        with self._lock:
            if self._inflight.get(key) == ticket:
                del self._inflight[key]

    def get(self, key: str) -> T | None:
        """The in-flight ticket for ``key``, or None."""
        with self._lock:
            return self._inflight.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)


__all__ = ["SharedWorkRegistry"]
