"""Executing specs and plans, with caching and process-pool fan-out."""

from __future__ import annotations

import concurrent.futures
from collections.abc import Iterable

from repro.experiments.cache import ResultCache
from repro.experiments.plan import Plan
from repro.experiments.spec import ExperimentSpec


def run_spec(spec: ExperimentSpec):
    """Run one experiment; returns a
    :class:`~repro.sim.metrics.SimulationResult`."""
    from repro.sim.simulator import TraceDrivenSimulator

    return TraceDrivenSimulator(spec).run()


def _pool_cell(spec: ExperimentSpec):
    """Module-level for pickling into worker processes."""
    return run_spec(spec)


def run_plan(
    plan: Plan | Iterable[ExperimentSpec],
    *,
    workers: int = 1,
    cache: "ResultCache | str | None" = None,
) -> list:
    """Run every cell of a plan; returns results in plan order.

    ``cache`` (a :class:`ResultCache`, a directory path, or None) is
    consulted per cell by spec content hash: hits skip the simulation
    entirely, misses run — serially or on a process pool when
    ``workers > 1`` — and are written back.  Per-cell seeding makes
    results identical at any worker count and any hit/miss split.
    """
    specs = tuple(plan.specs if isinstance(plan, Plan) else plan)
    cache = ResultCache.coerce(cache)
    results: list = [None] * len(specs)
    miss_indices: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                results[i] = hit
                continue
        miss_indices.append(i)
    if miss_indices:
        miss_specs = [specs[i] for i in miss_indices]
        if workers > 1 and len(miss_specs) > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(miss_specs))
            ) as pool:
                fresh = list(pool.map(_pool_cell, miss_specs))
        else:
            fresh = [_pool_cell(spec) for spec in miss_specs]
        for i, spec, result in zip(miss_indices, miss_specs, fresh):
            results[i] = result
            if cache is not None:
                cache.put(spec, result)
    return results
