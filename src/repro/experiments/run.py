"""Executing specs and plans, with caching and process-pool fan-out.

``REPRO_SESSION_MODE`` selects the execution path every spec takes:

* ``direct`` (default) — the batch run-to-completion loop;
* ``session`` — open a streaming :class:`repro.api.Session` and drive it
  to completion (proves the session facade against the batch path);
* ``checkpoint`` — run half the simulated horizon, snapshot, round-trip
  the snapshot through JSON, restore into a *fresh* session, and finish
  (proves checkpoint/resume bit-identity; ``repro verify --session
  checkpoint`` gates the whole figure suite through this path).

All three paths are bit-identical by construction; the knob exists so
CI can prove it stays that way.  The sweep-cell result cache is bypassed
for the non-direct modes — a cache hit would silently skip the very
code path being exercised.

Pool fan-out goes through the process-wide persistent :class:`SweepPool`
(created on first use, grown on demand, reused by every plan in the
process) with chunked cell scheduling; each chunk carries the parent's
current session/trace/cache environment so a long-lived pool never acts
on stale worker-side settings.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import json
import math
import os
from collections.abc import Iterable

from repro.experiments.cache import ResultCache
from repro.experiments.plan import Plan
from repro.experiments.spec import ExperimentSpec
from repro.report.config import SESSION_MODES, env_choice


def session_mode() -> str:
    """The validated ``REPRO_SESSION_MODE`` execution path."""
    return env_choice(os.environ, "REPRO_SESSION_MODE",
                      default="direct", choices=SESSION_MODES)


def run_spec(spec: ExperimentSpec):
    """Run one experiment; returns a
    :class:`~repro.sim.metrics.SimulationResult`."""
    mode = session_mode()
    if mode == "direct":
        from repro.sim.simulator import TraceDrivenSimulator

        return TraceDrivenSimulator(spec).run()
    from repro.api import Session

    session = Session(spec)
    if mode == "checkpoint":
        # Mid-run cut: half the simulated horizon — mid-interval for
        # single-interval runs, the interior boundary region otherwise.
        session.advance(session.total_ns / 2.0)
        doc = json.loads(json.dumps(session.snapshot()))
        session = Session.restore(doc)
    return session.result()


def _pool_cell(spec: ExperimentSpec):
    """Module-level for pickling into worker processes."""
    return run_spec(spec)


#: Environment knobs a worker must re-read per chunk: a *persistent*
#: pool outlives environment changes in the parent (``repro verify``
#: scopes REPRO_SESSION_MODE per run; benches toggle the trace store),
#: so every chunk carries the parent's current values instead of
#: trusting whatever the worker inherited at spawn time.
_POOL_ENV_KEYS = (
    "REPRO_SESSION_MODE",
    "REPRO_TRACE_STORE",
    "REPRO_TRACE_STORE_DIR",
    "REPRO_BENCH_CACHE_DIR",
)

#: Target chunks per worker: large enough to amortize per-task spec
#: pickling and IPC, small enough to keep the pool load-balanced.
_CHUNKS_PER_WORKER = 4


def _pool_env() -> dict[str, str | None]:
    """The parent-side values of :data:`_POOL_ENV_KEYS` (None = unset)."""
    return {key: os.environ.get(key) for key in _POOL_ENV_KEYS}


def _pool_run_chunk(specs: list, env: dict):
    """Worker-side: apply the parent's env, then run one spec chunk."""
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    return [run_spec(spec) for spec in specs]


class SweepPool:
    """The process-wide persistent worker pool behind :func:`run_plan`.

    Historically every plan cold-started (and tore down) its own
    ``ProcessPoolExecutor``; a multi-plan invocation — ``repro verify``
    runs 14 bench modules, several with multiple plans — paid the spawn
    cost over and over.  This pool is created on first use, grows when
    a wider plan asks for more workers, and is reused by every
    subsequent plan in the process; :func:`atexit` tears it down.

    Workers attach to trace-store memmaps lazily (each worker opens its
    own :class:`~repro.sim.tracestore.TraceStore` singleton on first
    cell), so all workers of all plans share one OS page-cache copy of
    every generated stream.
    """

    _executor: concurrent.futures.ProcessPoolExecutor | None = None
    _width = 0

    @classmethod
    def get(cls, workers: int) -> concurrent.futures.ProcessPoolExecutor:
        """The shared executor, (re)built with at least ``workers``."""
        if cls._executor is None or cls._width < workers:
            cls.shutdown()
            cls._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            )
            cls._width = workers
        return cls._executor

    @classmethod
    def width(cls) -> int:
        """Current worker count (0 = no pool spawned yet)."""
        return cls._width

    @classmethod
    def shutdown(cls) -> None:
        """Tear the pool down (next :meth:`get` cold-starts a fresh one)."""
        if cls._executor is not None:
            cls._executor.shutdown()
            cls._executor = None
            cls._width = 0

    @classmethod
    def map_chunked(cls, specs: list, workers: int) -> list:
        """Run ``specs`` on the pool in pickling-amortized chunks."""
        pool = cls.get(workers)
        size = max(1, math.ceil(len(specs) / (workers * _CHUNKS_PER_WORKER)))
        env = _pool_env()
        futures = [
            pool.submit(_pool_run_chunk, specs[i:i + size], env)
            for i in range(0, len(specs), size)
        ]
        return [result for f in futures for result in f.result()]


atexit.register(SweepPool.shutdown)


def run_plan(
    plan: Plan | Iterable[ExperimentSpec],
    *,
    workers: int = 1,
    cache: "ResultCache | str | None" = None,
) -> list:
    """Run every cell of a plan; returns results in plan order.

    ``cache`` (a :class:`ResultCache`, a directory path, or None) is
    consulted per cell by spec content hash: hits skip the simulation
    entirely, misses run — serially or on a process pool when
    ``workers > 1`` — and are written back.  Per-cell seeding makes
    results identical at any worker count and any hit/miss split.
    """
    specs = tuple(plan.specs if isinstance(plan, Plan) else plan)
    cache = ResultCache.coerce(cache)
    if cache is not None and session_mode() != "direct":
        # A cache hit would skip the session/checkpoint path entirely,
        # making the equivalence gate vacuous; always simulate.
        cache = None
    results: list = [None] * len(specs)
    miss_indices: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                results[i] = hit
                continue
        miss_indices.append(i)
    if miss_indices:
        miss_specs = [specs[i] for i in miss_indices]
        if workers > 1 and len(miss_specs) > 1:
            fresh = SweepPool.map_chunked(
                miss_specs, min(workers, len(miss_specs))
            )
        else:
            fresh = [_pool_cell(spec) for spec in miss_specs]
        for i, spec, result in zip(miss_indices, miss_specs, fresh):
            results[i] = result
            if cache is not None:
                cache.put(spec, result)
    return results
