"""Executing specs and plans, with caching, fan-out and fault tolerance.

``REPRO_SESSION_MODE`` selects the execution path every spec takes:

* ``direct`` (default) — the batch run-to-completion loop;
* ``session`` — open a streaming :class:`repro.api.Session` and drive it
  to completion (proves the session facade against the batch path);
* ``checkpoint`` — run half the simulated horizon, snapshot, round-trip
  the snapshot through JSON, restore into a *fresh* session, and finish
  (proves checkpoint/resume bit-identity; ``repro verify --session
  checkpoint`` gates the whole figure suite through this path).

All three paths are bit-identical by construction; the knob exists so
CI can prove it stays that way.  The sweep-cell result cache is bypassed
for the non-direct modes — a cache hit would silently skip the very
code path being exercised.

Pool fan-out goes through the process-wide persistent :class:`SweepPool`
(created on first use, grown on demand, reused by every plan in the
process) with chunked cell scheduling; each chunk carries the parent's
current session/trace/cache/fault environment so a long-lived pool
never acts on stale worker-side settings.

Fault tolerance
---------------
:func:`run_plan` is built to survive operational failure without
corrupting results:

* **Per-cell isolation** — every cell runs under its own try/except,
  in workers and in the serial path alike; one poisoned cell produces a
  structured :class:`~repro.errors.CellFailure` instead of taking its
  chunk (or the plan) down with it.
* **Bounded retries** — cells whose failure is classified retryable
  (:func:`repro.errors.is_retryable`) are re-run with exponential
  backoff plus deterministic jitter, up to ``max_retries`` extra
  attempts.  Deterministic failures are never retried.
* **Pool recovery** — a ``BrokenProcessPool`` (an OOM-killed or crashed
  worker takes the whole executor down) marks only the *unfinished*
  chunks as retryable, tears the executor down, and the next round
  cold-starts a fresh pool; results that had already landed are kept.
  A chunk that exceeds its ``cell_timeout`` budget is treated the same
  way, with the hung workers terminated.
* **Crash-safe resume** — completed cells flush to the
  :class:`ResultCache` *as they land*, so a killed sweep re-run against
  the same cache recomputes only the missing/failed cells.  SIGINT and
  SIGTERM drain already-completed futures into the cache before the
  pool is torn down.
* **keep_going** — ``run_plan(..., keep_going=True)`` returns a
  :class:`SweepReport` (per-cell status, attempts, timings, failures)
  instead of raising on the first permanently failed cell.

The deterministic fault-injection harness
(:mod:`repro.testing.faults`, armed via ``REPRO_FAULTS``) drives each
of these paths on demand; the fault-injection test suite asserts sweeps
converge to bit-identical results with the harness armed.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import contextlib
import json
import math
import os
import random
import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import (
    CellExecutionError,
    CellFailure,
    CellStatus,
    CellTimeout,
)
from repro.experiments.cache import ResultCache
from repro.experiments.plan import Plan
from repro.experiments.spec import ExperimentSpec
from repro.report.config import SESSION_MODES, env_bool, env_choice
from repro.testing.faults import ENV_VAR as FAULTS_ENV_VAR
from repro.testing.faults import ROUND_VAR as FAULTS_ROUND_VAR
from repro.testing.faults import fault_point


def session_mode() -> str:
    """The validated ``REPRO_SESSION_MODE`` execution path."""
    return env_choice(os.environ, "REPRO_SESSION_MODE",
                      default="direct", choices=SESSION_MODES)


def run_spec(spec: ExperimentSpec):
    """Run one experiment; returns a
    :class:`~repro.sim.metrics.SimulationResult`."""
    mode = session_mode()
    if mode == "direct":
        from repro.sim.simulator import TraceDrivenSimulator

        return TraceDrivenSimulator(spec).run()
    from repro.api import Session

    session = Session(spec)
    if mode == "checkpoint":
        # Mid-run cut: half the simulated horizon — mid-interval for
        # single-interval runs, the interior boundary region otherwise.
        session.advance(session.total_ns / 2.0)
        doc = json.loads(json.dumps(session.snapshot()))
        session = Session.restore(doc)
    return session.result()


def _pool_cell(spec: ExperimentSpec):
    """Module-level for pickling into worker processes."""
    return run_spec(spec)


#: The per-cell execution seam as defined by this module.  Fault and
#: robustness tests monkeypatch ``run_spec``/``_pool_cell`` to poison
#: individual cells; fused evaluation bypasses the per-cell call, so it
#: steps aside whenever the seam is not pristine (see
#: :func:`_run_fused_groups`).
_UNPATCHED_CELL_SEAMS = (run_spec, _pool_cell)


# -- fused multi-scheme evaluation ----------------------------------------
#
# Scheme-axis grid cells share their demand streams: the stream key
# (:func:`repro.sim.tracestore.stream_key_doc`) deliberately excludes
# scheme, threshold, and engine.  The trace store already dedupes
# *generation* across such cells; fusion also dedupes the *replay* —
# one interval fetch feeds every fused cell's core before the next
# interval is touched, so N cells pay one stream walk over shared
# arrays instead of N independent fetch+install passes.  Each core
# still owns its memory system and scheme, so results are bit-identical
# to solo runs by construction (the arrays are read-only to the engine).


def fused_sweep_enabled() -> bool:
    """The ``REPRO_FUSED_SWEEP`` knob (default on).

    ``repro verify`` proves goldens pass with the knob both on and off;
    benches measure the ratio between the two.
    """
    return env_bool(os.environ, "REPRO_FUSED_SWEEP", default=True)


def _fuse_key(spec: ExperimentSpec) -> str | None:
    """Grouping key for fused evaluation, or None when unfusable.

    Cells fuse when they share stream identity *and* engine/interval
    count (fused cores advance in lock-step through the same per-bank
    arrays).  Fusion stays out of the way of the non-direct session
    modes (they exercise the facade paths on purpose) and of armed
    fault injection (deterministic fault-site counting assumes the
    isolated per-cell path).
    """
    if session_mode() != "direct" or os.environ.get(FAULTS_ENV_VAR):
        return None
    try:
        from repro.sim.simulator import TraceDrivenSimulator
        from repro.sim.tracestore import stream_key

        doc = TraceDrivenSimulator(spec).trace_key_doc()
        return f"{stream_key(doc)}:{spec.engine}:{spec.n_intervals}"
    except Exception:
        return None


def _run_specs_fused(specs_group: list) -> list:
    """Run same-stream specs with one stream fetch per interval.

    The first cell's core is the *lead*: it fetches every interval
    (trace-store hit or generation, advancing its arrival RNG exactly
    as a solo run would), and every core — lead included — installs the
    shared arrays and serves them to exhaustion before the next
    interval is fetched.  Follower RNGs are never consumed; stream
    content is a pure function of the shared key, so the installed
    arrays match what each follower would have generated itself.

    Returns per-spec results in group order.  Any failure raises — the
    caller falls back to the isolated per-cell path, which owns retry
    and failure-classification semantics.
    """
    from repro.sim.simulator import TraceDrivenSimulator

    sims = [TraceDrivenSimulator(spec) for spec in specs_group]
    cores = [sim.open_core() for sim in sims]
    lead = cores[0]
    for interval in range(lead.n_intervals):
        per_bank = lead.fetch_interval(interval)
        for core in cores:
            core.install_interval(interval, per_bank)
            core.advance_installed()
    return [sim._finalize(core.totals()) for sim, core in zip(sims, cores)]


def _run_fused_groups(specs, indices, deliver) -> list[int]:
    """One fused pass over ``indices``; returns what still must run.

    Indices whose specs share a fuse key (groups of two or more) run
    through :func:`_run_specs_fused`; each completed cell is handed to
    ``deliver(index, result, elapsed)``.  Unfusable cells — and every
    member of a group that failed for any reason — come back (in plan
    order) for the isolated per-cell path.

    When the per-cell seam has been replaced (robustness tests poison
    ``run_spec``/``_pool_cell`` to simulate per-cell failures), fusing
    would route around the replacement, so everything comes back for
    the per-cell path instead.
    """
    if (run_spec, _pool_cell) != _UNPATCHED_CELL_SEAMS:
        return sorted(indices)
    groups: dict[str, list[int]] = {}
    leftover: list[int] = []
    for i in indices:
        key = _fuse_key(specs[i])
        if key is None:
            leftover.append(i)
        else:
            groups.setdefault(key, []).append(i)
    for members in groups.values():
        if len(members) < 2:
            leftover.extend(members)
            continue
        t0 = time.perf_counter()
        try:
            group_results = _run_specs_fused([specs[i] for i in members])
        except Exception:
            # Fusion is an optimization: fall back to the per-cell
            # path, which owns failure classification and retries.
            leftover.extend(members)
            continue
        per = (time.perf_counter() - t0) / len(members)
        for i, result in zip(members, group_results):
            deliver(i, result, per)
    leftover.sort()
    return leftover


#: Environment knobs a worker must re-read per chunk: a *persistent*
#: pool outlives environment changes in the parent (``repro verify``
#: scopes REPRO_SESSION_MODE per run; benches toggle the trace store;
#: the scheduler advances the fault-injection round), so every chunk
#: carries the parent's current values instead of trusting whatever the
#: worker inherited at spawn time.
_POOL_ENV_KEYS = (
    "REPRO_SESSION_MODE",
    "REPRO_TRACE_STORE",
    "REPRO_TRACE_STORE_DIR",
    "REPRO_BENCH_CACHE_DIR",
    "REPRO_FUSED_SWEEP",
    FAULTS_ENV_VAR,
    FAULTS_ROUND_VAR,
)

#: Target chunks per worker: large enough to amortize per-task spec
#: pickling and IPC, small enough to keep the pool load-balanced.
_CHUNKS_PER_WORKER = 4

#: Retry backoff: ``base * 2**(round-1)`` seconds, capped, with a
#: deterministic jitter factor in [0.5, 1.5).
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0

#: Grace added to ``cell_timeout * chunk_size`` before a chunk future
#: is declared hung (covers worker spawn and result IPC).
_TIMEOUT_GRACE_S = 5.0


def _pool_env() -> dict[str, str | None]:
    """The parent-side values of :data:`_POOL_ENV_KEYS` (None = unset)."""
    return {key: os.environ.get(key) for key in _POOL_ENV_KEYS}


def _pool_prime() -> None:
    """Worker-side warmup run by :meth:`SweepPool._prime` at spawn.

    Imports the modules every cell touches and warms the jit kernels,
    so the first real chunk a worker receives starts simulating
    immediately instead of compiling/importing on the clock.
    """
    import repro.sim.simulator  # noqa: F401 — import cost is the point
    import repro.sim.tracestore  # noqa: F401
    from repro.core.jitkern import warm_kernels

    warm_kernels()


def _pool_run_chunk(specs: list, env: dict, attempt: int = 1) -> list[dict]:
    """Worker-side: apply the parent's env, run one chunk cell by cell.

    Each cell is isolated: the return value is one outcome dict per
    spec — ``{"ok": True, "result": ...}`` or ``{"ok": False,
    "failure": <CellFailure dict>}`` — so a poisoned cell cannot void
    its chunk-mates' completed work.  Failures travel as plain dicts
    (tracebacks captured worker-side) because exception objects pickle
    unreliably.
    """
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    outcomes: list[dict | None] = [None] * len(specs)

    def deliver(i: int, result, elapsed: float) -> None:
        outcomes[i] = {"ok": True, "result": result}

    remaining = list(range(len(specs)))
    if len(remaining) > 1 and fused_sweep_enabled():
        remaining = _run_fused_groups(specs, remaining, deliver)
    for i in remaining:
        spec = specs[i]
        try:
            fault_point("pool.worker")
            outcomes[i] = {"ok": True, "result": run_spec(spec)}
        except Exception as exc:
            outcomes[i] = {
                "ok": False,
                "failure": CellFailure.from_exception(
                    spec, attempt, exc
                ).to_dict(),
            }
    return outcomes


class SweepPool:
    """The process-wide persistent worker pool behind :func:`run_plan`.

    Historically every plan cold-started (and tore down) its own
    ``ProcessPoolExecutor``; a multi-plan invocation — ``repro verify``
    runs 14 bench modules, several with multiple plans — paid the spawn
    cost over and over.  This pool is created on first use, grows when
    a wider plan asks for more workers, and is reused by every
    subsequent plan in the process; :func:`atexit` tears it down.

    Workers attach to trace-store memmaps lazily (each worker opens its
    own :class:`~repro.sim.tracestore.TraceStore` singleton on first
    cell), so all workers of all plans share one OS page-cache copy of
    every generated stream.
    """

    _executor: concurrent.futures.ProcessPoolExecutor | None = None
    _width = 0

    @classmethod
    def get(cls, workers: int) -> concurrent.futures.ProcessPoolExecutor:
        """The shared executor, (re)built with at least ``workers``."""
        if cls._executor is None or cls._width < workers:
            cls.shutdown()
            cls._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            )
            cls._width = workers
            cls._prime(cls._executor, workers)
        return cls._executor

    @staticmethod
    def _prime(executor, workers: int) -> None:
        """Pay per-worker one-time costs at spawn, not inside chunk one.

        Each fresh worker imports the simulation stack and warms the
        jit kernels (under numba: loads or builds the compiled
        artifacts) the first time it runs a cell.  Left lazy, that cost
        lands *inside* the first chunk of the first plan — serialized
        with real cell work, counted against ``cell_timeout`` budgets,
        and re-paid by every plan that happens to grow the pool.
        Priming at spawn pays it once, in parallel across workers,
        which is what makes pool *reuse* (the whole point of a
        persistent pool) measurably cheaper than a cold start.

        Best-effort: one fast worker may pick up two prime tasks while
        another gets none; the straggler then primes lazily as before.
        """
        futures = [executor.submit(_pool_prime) for _ in range(workers)]
        for future in futures:
            try:
                future.result()
            except Exception:
                # A prime failure is never fatal: the worker (or its
                # replacement) will simply pay the lazy path.
                pass

    @classmethod
    def width(cls) -> int:
        """Current worker count (0 = no pool spawned yet)."""
        return cls._width

    @classmethod
    def shutdown(cls, cancel_futures: bool = True) -> None:
        """Tear the pool down (next :meth:`get` cold-starts a fresh one).

        Queued-but-unstarted chunks are cancelled by default: the
        :func:`atexit` teardown must never block interpreter exit
        behind a backlog of work nobody will collect.  Running chunks
        are still awaited (a mid-write kill could tear store entries);
        use :meth:`kill` when workers are known to be hung.
        """
        if cls._executor is not None:
            cls._executor.shutdown(cancel_futures=cancel_futures)
            cls._executor = None
            cls._width = 0

    @classmethod
    def kill(cls) -> None:
        """Terminate worker processes outright and discard the executor.

        The recovery path for *hung* chunks: ``shutdown`` would wait on
        them forever.  Store writes stay safe under termination because
        every store publish is an atomic rename.
        """
        executor = cls._executor
        if executor is None:
            return
        cls._executor = None
        cls._width = 0
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, AttributeError):
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    @classmethod
    def map_chunked(cls, specs: list, workers: int) -> list:
        """Run ``specs`` on the pool in pickling-amortized chunks.

        The strict legacy surface: results in order, first cell failure
        re-raised as :class:`~repro.errors.CellExecutionError`.  The
        fault-tolerant scheduler in :func:`run_plan` supersedes this
        for plan execution.
        """
        pool = cls.get(workers)
        size = max(1, math.ceil(len(specs) / (workers * _CHUNKS_PER_WORKER)))
        env = _pool_env()
        futures = [
            pool.submit(_pool_run_chunk, specs[i:i + size], env)
            for i in range(0, len(specs), size)
        ]
        results = []
        for future in futures:
            for outcome in future.result():
                if outcome["ok"]:
                    results.append(outcome["result"])
                else:
                    raise CellExecutionError(
                        [CellFailure.from_dict(outcome["failure"])]
                    )
        return results


atexit.register(SweepPool.shutdown)


@dataclass
class SweepReport:
    """What one fault-tolerant sweep actually did, cell by cell.

    ``results`` holds the per-cell
    :class:`~repro.sim.metrics.SimulationResult` objects in plan order
    (``None`` for permanently failed cells); ``cells`` carries the
    matching :class:`~repro.errors.CellStatus` records (status,
    attempts, wall time, failure history).
    """

    cells: list[CellStatus] = field(default_factory=list)
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell completed (simulated or cached)."""
        return not self.failed and not self.pending

    @property
    def failed(self) -> list[CellStatus]:
        """Cells whose retry budget ran out."""
        return [c for c in self.cells if c.status == "failed"]

    @property
    def pending(self) -> list[CellStatus]:
        """Cells a cooperative stop left untouched (resumable work)."""
        return [c for c in self.cells if c.status == "pending"]

    def counts(self) -> dict[str, int]:
        """Cell counts by final status."""
        out: dict[str, int] = {}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    def total_attempts(self) -> int:
        """Execution attempts summed over all cells (retries included)."""
        return sum(c.attempts for c in self.cells)

    def to_dict(self) -> dict:
        """JSON-able execution record (results travel separately)."""
        return {
            "kind": "repro-sweep-report",
            "report_version": 1,
            "ok": self.ok,
            "counts": self.counts(),
            "total_attempts": self.total_attempts(),
            "cells": [c.to_dict() for c in self.cells],
        }

    def failure_rows(self) -> list[dict]:
        """Failed-cell summary rows for CLI tables."""
        rows = []
        for cell in self.failed:
            last = cell.failures[-1] if cell.failures else None
            rows.append({
                "cell": cell.index,
                "label": cell.label,
                "attempts": cell.attempts,
                "error": last.error_type if last else "?",
                "message": (last.message[:60] if last else ""),
            })
        return rows


def _backoff_s(round_no: int, salt: int = 0) -> float:
    """Exponential backoff with deterministic jitter for one round."""
    base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** (round_no - 1)))
    jitter = random.Random((round_no << 16) ^ salt).random()
    return base * (0.5 + jitter)


def _backoff_wait(round_no: int, salt: int, stop) -> bool:
    """Sleep one retry backoff; True when ``stop`` cut it short."""
    deadline = time.monotonic() + _backoff_s(round_no, salt=salt)
    while True:
        if stop is not None and stop():
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        time.sleep(remaining if stop is None
                   else min(remaining, _STOP_POLL_S))


def _flush_cell(cache: ResultCache | None, spec, result) -> bool:
    """Persist one completed cell immediately (crash-safe resume).

    A failed write is retried once (covers transient store trouble and
    the injected ``cache.put`` fault) and then dropped: the in-memory
    result is intact either way, the cache is an optimization.
    """
    if cache is None:
        return True
    for attempt in range(2):
        try:
            cache.put(spec, result)
            return True
        except Exception:
            if attempt:
                return False
            time.sleep(0.01)
    return False


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM as KeyboardInterrupt for the scheduler's scope.

    Both signals then share one drain path: completed futures flush to
    the cache, the pool tears down cleanly, and the interrupt
    propagates.  Outside the main thread (or without signal support)
    this is a no-op.
    """
    import signal
    import threading

    installed = False
    previous = None
    owner_pid = os.getpid()
    if threading.current_thread() is threading.main_thread():
        def _handler(signum, frame):
            if os.getpid() != owner_pid:
                # A forked pool worker inherited this handler; dying
                # loudly with KeyboardInterrupt would spray tracebacks
                # on every SweepPool.kill().  Die like SIG_DFL instead.
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)
                return
            raise KeyboardInterrupt("SIGTERM")

        try:
            previous = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM, _handler)
            installed = True
        except (ValueError, OSError):
            installed = False
    try:
        yield
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)


class _StopRequested(Exception):
    """Internal: a ``run_plan(stop=...)`` callback asked for a drain."""


#: How often a pooled wait re-checks its ``stop`` callback.
_STOP_POLL_S = 0.25


def _wait_future(future, budget, stop):
    """``future.result(timeout=budget)`` that polls ``stop`` while waiting.

    The budget is honored exactly (waits happen in ``_STOP_POLL_S``
    slices that never overshoot the deadline); a truthy ``stop`` raises
    :class:`_StopRequested` between slices.
    """
    if stop is None:
        return future.result(timeout=budget)
    deadline = None if budget is None else time.monotonic() + budget
    while True:
        if stop():
            raise _StopRequested
        slice_s = _STOP_POLL_S
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise concurrent.futures.TimeoutError
            slice_s = min(slice_s, remaining)
        try:
            return future.result(timeout=slice_s)
        except concurrent.futures.TimeoutError:
            if deadline is None or time.monotonic() < deadline:
                continue
            raise


def _run_round_serial(specs, pending, attempt, on_ok, on_fail,
                      stop=None) -> None:
    """One retry round, in-process: per-cell isolation, no pool.

    Cells sharing a stream key run fused first (one stream fetch per
    interval for the whole group); whatever the fused pass does not
    complete falls through to the isolated per-cell loop.  A truthy
    ``stop`` between cells ends the round early; untouched cells keep
    their ``pending`` status and resume on the next run.
    """
    if stop is not None and stop():
        return
    if len(pending) > 1 and fused_sweep_enabled():
        pending = _run_fused_groups(specs, pending, on_ok)
    for i in pending:
        if stop is not None and stop():
            return
        t0 = time.perf_counter()
        try:
            result = _pool_cell(specs[i])
        except Exception as exc:
            on_fail(
                i,
                CellFailure.from_exception(specs[i], attempt, exc),
                time.perf_counter() - t0,
            )
        else:
            on_ok(i, result, time.perf_counter() - t0)


def _run_round_pooled(
    specs, pending, workers, cell_timeout, attempt, on_ok, on_fail,
    stop=None,
) -> None:
    """One retry round on the process pool, chunked.

    Every pending index receives exactly one ``on_ok``/``on_fail``
    callback.  A broken pool fails only the chunks that had not
    finished; a chunk exceeding its time budget fails retryably and the
    hung workers are terminated so the next round gets a live pool.
    A truthy ``stop`` (polled while waiting on chunks) drains like an
    interrupt — finished chunks flush, the rest are cancelled and the
    pool killed — but raises :class:`_StopRequested` for the scheduler
    to absorb instead of propagating to the caller.
    """
    width = min(workers, len(pending))
    pool = SweepPool.get(width)
    size = max(1, math.ceil(len(pending) / (width * _CHUNKS_PER_WORKER)))
    env = _pool_env()
    futures = [
        (
            pool.submit(
                _pool_run_chunk,
                [specs[i] for i in pending[j:j + size]],
                env,
                attempt,
            ),
            pending[j:j + size],
        )
        for j in range(0, len(pending), size)
    ]
    broken = False
    hung = False
    try:
        for future, chunk in futures:
            budget = (
                None if cell_timeout is None
                else cell_timeout * len(chunk) + _TIMEOUT_GRACE_S
            )
            t0 = time.perf_counter()
            try:
                outcomes = _wait_future(future, budget, stop)
            except concurrent.futures.TimeoutError:
                future.cancel()
                hung = True
                per = (time.perf_counter() - t0) / len(chunk)
                for i in chunk:
                    on_fail(i, CellFailure.from_exception(
                        specs[i], attempt,
                        CellTimeout(
                            f"chunk exceeded its {budget:.1f}s budget "
                            f"({cell_timeout}s/cell)"
                        ),
                    ), per)
                continue
            except concurrent.futures.BrokenExecutor as exc:
                broken = True
                per = (time.perf_counter() - t0) / len(chunk)
                for i in chunk:
                    on_fail(i, CellFailure.from_exception(
                        specs[i], attempt, exc
                    ), per)
                continue
            per = (time.perf_counter() - t0) / max(1, len(chunk))
            for i, outcome in zip(chunk, outcomes):
                if outcome["ok"]:
                    on_ok(i, outcome["result"], per)
                else:
                    on_fail(
                        i, CellFailure.from_dict(outcome["failure"]), per
                    )
    except (KeyboardInterrupt, SystemExit, _StopRequested) as exc:
        # Drain: deliver every chunk that did finish (flushing its
        # cells to the cache via on_ok), cancel the rest, tear the
        # pool down, and let the interrupt propagate.
        for future, chunk in futures:
            if future.done() and not future.cancelled():
                try:
                    outcomes = future.result(timeout=0)
                except Exception:
                    continue
                for i, outcome in zip(chunk, outcomes):
                    if outcome["ok"]:
                        on_ok(i, outcome["result"], 0.0)
            else:
                future.cancel()
        if isinstance(exc, _StopRequested):
            # Cooperative stop is deadline-bound (graceful drain must
            # exit on time): terminate running chunks rather than wait.
            # Mid-write kills are safe — every store publish is an
            # atomic rename.
            SweepPool.kill()
        else:
            SweepPool.shutdown(cancel_futures=True)
        raise
    if hung:
        SweepPool.kill()
    elif broken:
        SweepPool.shutdown(cancel_futures=True)


def run_plan(
    plan: Plan | Iterable[ExperimentSpec],
    *,
    workers: int = 1,
    cache: "ResultCache | str | None" = None,
    keep_going: bool = False,
    max_retries: int = 2,
    cell_timeout: float | None = None,
    stop=None,
):
    """Run every cell of a plan, fault-tolerantly; results in plan order.

    ``cache`` (a :class:`ResultCache`, a directory path, or None) is
    consulted per cell by spec content hash: hits skip the simulation
    entirely, misses run — serially or on a process pool when
    ``workers > 1`` — and flush back *as each cell completes*, so a
    killed sweep resumes from its completed cells.  Per-cell seeding
    makes results identical at any worker count, any hit/miss split,
    and any retry history.

    ``max_retries`` bounds the *extra* attempts a retryably failing
    cell gets (exponential backoff + deterministic jitter between
    rounds); deterministic failures are never retried.
    ``cell_timeout`` (seconds per cell) bounds each pooled chunk's wall
    time; a hung chunk fails retryably and its workers are terminated.

    Returns the list of per-cell results.  On a permanent cell failure
    this raises :class:`~repro.errors.CellExecutionError` (carrying the
    failure records and the partial :class:`SweepReport`) — unless
    ``keep_going=True``, in which case the full :class:`SweepReport`
    is returned instead, with ``None`` results for failed cells.

    ``stop`` (a zero-argument callable, polled between cells and while
    waiting on pooled chunks) requests a cooperative drain: completed
    cells flush to the cache as usual, untouched cells stay ``pending``
    in the report, and the call returns promptly instead of finishing
    the plan.  Because a stopped report is inherently partial, ``stop``
    requires ``keep_going=True`` — the ``repro serve`` graceful-drain
    path is the intended caller, and it resumes the job from the cache
    after restart.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if stop is not None and not keep_going:
        raise ValueError("stop= requires keep_going=True: a stopped "
                         "plan yields a partial report, not results")
    specs = tuple(plan.specs if isinstance(plan, Plan) else plan)
    cache = ResultCache.coerce(cache)
    if cache is not None and session_mode() != "direct":
        # A cache hit would skip the session/checkpoint path entirely,
        # making the equivalence gate vacuous; always simulate.
        cache = None
    cells = [
        CellStatus(
            index=i,
            spec_hash=spec.content_hash(),
            label=f"{spec.workload_label}/{spec.scheme.display_label}",
            status="pending",
        )
        for i, spec in enumerate(specs)
    ]
    results: list = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                results[i] = hit
                cells[i].status = "cached"
                continue
        pending.append(i)

    def on_ok(i: int, result, elapsed: float) -> None:
        results[i] = result
        cells[i].status = "ok"
        cells[i].elapsed_s += elapsed
        _flush_cell(cache, specs[i], result)

    faults_on = bool(os.environ.get(FAULTS_ENV_VAR))
    saved_round = os.environ.get(FAULTS_ROUND_VAR)
    try:
        with _sigterm_as_interrupt():
            round_no = 0
            while pending and round_no <= max_retries:
                if stop is not None and stop():
                    break
                if round_no and _backoff_wait(round_no, len(pending), stop):
                    break
                if faults_on:
                    # Injected faults hold fire past round zero so every
                    # armed failure is transient by construction; the
                    # chunk env threads the round to pool workers.
                    os.environ[FAULTS_ROUND_VAR] = str(round_no)
                attempt = round_no + 1
                retry_budget_left = round_no < max_retries
                next_pending: list[int] = []

                def on_fail(i: int, failure: CellFailure,
                            elapsed: float) -> None:
                    cells[i].failures.append(failure)
                    cells[i].elapsed_s += elapsed
                    if failure.retryable and retry_budget_left:
                        next_pending.append(i)
                    else:
                        cells[i].status = "failed"

                def tick(i: int) -> None:
                    cells[i].attempts = attempt

                for i in pending:
                    tick(i)
                try:
                    if workers > 1 and len(pending) > 1:
                        _run_round_pooled(
                            specs, pending, workers, cell_timeout,
                            attempt, on_ok, on_fail, stop=stop,
                        )
                    else:
                        _run_round_serial(
                            specs, pending, attempt, on_ok, on_fail,
                            stop=stop,
                        )
                except _StopRequested:
                    pending = next_pending
                    break
                pending = next_pending
                round_no += 1
    finally:
        if saved_round is None:
            os.environ.pop(FAULTS_ROUND_VAR, None)
        else:
            os.environ[FAULTS_ROUND_VAR] = saved_round

    report = SweepReport(cells=cells, results=results)
    if keep_going:
        return report
    failed = report.failed
    if failed:
        raise CellExecutionError(
            [c.failures[-1] for c in failed if c.failures], report
        )
    return results
