"""Executing specs and plans, with caching and process-pool fan-out.

``REPRO_SESSION_MODE`` selects the execution path every spec takes:

* ``direct`` (default) — the batch run-to-completion loop;
* ``session`` — open a streaming :class:`repro.api.Session` and drive it
  to completion (proves the session facade against the batch path);
* ``checkpoint`` — run half the simulated horizon, snapshot, round-trip
  the snapshot through JSON, restore into a *fresh* session, and finish
  (proves checkpoint/resume bit-identity; ``repro verify --session
  checkpoint`` gates the whole figure suite through this path).

All three paths are bit-identical by construction; the knob exists so
CI can prove it stays that way.  The sweep-cell result cache is bypassed
for the non-direct modes — a cache hit would silently skip the very
code path being exercised.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
from collections.abc import Iterable

from repro.experiments.cache import ResultCache
from repro.experiments.plan import Plan
from repro.experiments.spec import ExperimentSpec
from repro.report.config import SESSION_MODES, env_choice


def session_mode() -> str:
    """The validated ``REPRO_SESSION_MODE`` execution path."""
    return env_choice(os.environ, "REPRO_SESSION_MODE",
                      default="direct", choices=SESSION_MODES)


def run_spec(spec: ExperimentSpec):
    """Run one experiment; returns a
    :class:`~repro.sim.metrics.SimulationResult`."""
    mode = session_mode()
    if mode == "direct":
        from repro.sim.simulator import TraceDrivenSimulator

        return TraceDrivenSimulator(spec).run()
    from repro.api import Session

    session = Session(spec)
    if mode == "checkpoint":
        # Mid-run cut: half the simulated horizon — mid-interval for
        # single-interval runs, the interior boundary region otherwise.
        session.advance(session.total_ns / 2.0)
        doc = json.loads(json.dumps(session.snapshot()))
        session = Session.restore(doc)
    return session.result()


def _pool_cell(spec: ExperimentSpec):
    """Module-level for pickling into worker processes."""
    return run_spec(spec)


def run_plan(
    plan: Plan | Iterable[ExperimentSpec],
    *,
    workers: int = 1,
    cache: "ResultCache | str | None" = None,
) -> list:
    """Run every cell of a plan; returns results in plan order.

    ``cache`` (a :class:`ResultCache`, a directory path, or None) is
    consulted per cell by spec content hash: hits skip the simulation
    entirely, misses run — serially or on a process pool when
    ``workers > 1`` — and are written back.  Per-cell seeding makes
    results identical at any worker count and any hit/miss split.
    """
    specs = tuple(plan.specs if isinstance(plan, Plan) else plan)
    cache = ResultCache.coerce(cache)
    if cache is not None and session_mode() != "direct":
        # A cache hit would skip the session/checkpoint path entirely,
        # making the equivalence gate vacuous; always simulate.
        cache = None
    results: list = [None] * len(specs)
    miss_indices: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.get(spec)
            if hit is not None:
                results[i] = hit
                continue
        miss_indices.append(i)
    if miss_indices:
        miss_specs = [specs[i] for i in miss_indices]
        if workers > 1 and len(miss_specs) > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(miss_specs))
            ) as pool:
                fresh = list(pool.map(_pool_cell, miss_specs))
        else:
            fresh = [_pool_cell(spec) for spec in miss_specs]
        for i, spec, result in zip(miss_indices, miss_specs, fresh):
            results[i] = result
            if cache is not None:
                cache.put(spec, result)
    return results
