"""Plans: declarative grids of experiment specs.

A :class:`Plan` is an ordered list of :class:`ExperimentSpec` cells.
:meth:`Plan.grid` expands a cartesian product of axes over a base spec::

    plan = Plan.grid(
        base_spec,
        scheme=[SchemeSpec.create("sca", "SCA_64", n_counters=64),
                SchemeSpec.create("drcat", "DRCAT_64")],
        workload=["black", "face"],
        refresh_threshold=[32768, 16384],
    )

Axis names are ExperimentSpec field names; two get coercion sugar:
``scheme`` accepts SchemeSpec instances, bare kind strings, or
serialized dicts, and ``workload`` accepts names, aliases, or
WorkloadSpec objects (inline models land in ``workload_model``).
Expansion order is the axes' declaration order with the rightmost axis
fastest — the same nesting a hand-written loop would produce.

Plans built by ``grid`` remember their compact {base, axes} description
so ``to_dict`` emits the grid rather than the expansion; coupled
(non-cartesian) figures concatenate grids with ``+``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields, replace

from repro.experiments.spec import (
    ExperimentSpec,
    SchemeSpec,
    SpecError,
    _decode_tagged,
    _encode_tagged,
    coerce_scheme,
)
from repro.workloads.suites import WorkloadSpec, resolve_workload

PLAN_KIND = "repro-experiment-plan"
PLAN_VERSION = 1

_SPEC_FIELDS = {f.name for f in fields(ExperimentSpec)}


def _axis_apply(spec: ExperimentSpec, name: str, value) -> ExperimentSpec:
    """One axis assignment, with coercion sugar for scheme/workload."""
    if name == "scheme":
        return replace(spec, scheme=coerce_scheme(value))
    if name == "workload":
        if isinstance(value, WorkloadSpec):
            try:
                registered = resolve_workload(value.name)
            except KeyError:
                registered = None
            if registered == value:
                return replace(spec, workload=value.name, workload_model=None)
            return replace(spec, workload_model=value)
        return replace(spec, workload=value, workload_model=None)
    if name not in _SPEC_FIELDS:
        raise SpecError(
            f"unknown plan axis {name!r}; axes must be ExperimentSpec "
            f"fields ({', '.join(sorted(_SPEC_FIELDS))})"
        )
    return replace(spec, **{name: value})


def _axis_value_doc(name: str, value):
    """JSON form of one axis value (inline models serialize in full)."""
    if name == "scheme":
        return coerce_scheme(value).to_dict()
    if name == "workload" and isinstance(value, WorkloadSpec):
        return _encode_tagged(value)
    return value


@dataclass(frozen=True)
class Plan:
    """An ordered list of experiment cells, optionally grid-described."""

    specs: tuple[ExperimentSpec, ...]
    #: compact {base, axes} description when built by :meth:`grid`
    source: dict | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def grid(cls, base: ExperimentSpec | None = None, **axes) -> "Plan":
        """Cartesian expansion of ``axes`` over ``base`` (see module doc)."""
        if base is None:
            base = ExperimentSpec(scheme=SchemeSpec("drcat"))
        names = list(axes)
        value_lists = [list(axes[name]) for name in names]
        for name, values in zip(names, value_lists):
            if not values:
                raise SpecError(f"plan axis {name!r} has no values")
        specs = []
        for combo in itertools.product(*value_lists):
            spec = base
            for name, value in zip(names, combo):
                spec = _axis_apply(spec, name, value)
            specs.append(spec)
        source = {
            "base": base.to_dict(),
            "axes": [
                [name, [_axis_value_doc(name, v) for v in values]]
                for name, values in zip(names, value_lists)
            ],
        }
        return cls(tuple(specs), source)

    @classmethod
    def of(cls, specs) -> "Plan":
        """A plan over an explicit spec list (no grid description)."""
        return cls(tuple(specs))

    def __add__(self, other: "Plan") -> "Plan":
        """Concatenate plans (coupled, non-cartesian figures)."""
        if not isinstance(other, Plan):
            return NotImplemented
        sources = None
        if self.source is not None and other.source is not None:
            mine = self.source.get("concat", [self.source])
            theirs = other.source.get("concat", [other.source])
            sources = {"concat": [*mine, *theirs]}
        return Plan(self.specs + other.specs, sources)

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def keys(self) -> list[tuple[str, str]]:
        """Per-cell (workload, scheme-label) keys, in plan order."""
        return [spec.key() for spec in self.specs]

    def content_hash(self) -> str:
        """Digest over every cell's content hash, in order."""
        joined = ",".join(spec.content_hash() for spec in self.specs)
        return hashlib.sha256(joined.encode("ascii")).hexdigest()[:16]

    def summary(self) -> dict:
        """Compact provenance header for artifacts (additive, small)."""
        doc: dict = {
            "n_cells": len(self.specs),
            "plan_hash": self.content_hash(),
        }
        if self.source is not None:
            doc["plan"] = self.source
        return doc

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready plan document (grid form when one is known)."""
        doc: dict = {"kind": PLAN_KIND, "plan_version": PLAN_VERSION}
        if self.source is not None and "concat" not in self.source:
            doc.update(self.source)
        else:
            doc["specs"] = [spec.to_dict() for spec in self.specs]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Plan":
        """Validate and expand a plan document (grid or spec list)."""
        if not isinstance(doc, dict) or doc.get("kind") != PLAN_KIND:
            raise SpecError(
                f"not a {PLAN_KIND!r} document (run `repro plan --example` "
                "for the expected shape)"
            )
        version = doc.get("plan_version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise SpecError(f"plan_version {version} is not supported")
        if "specs" in doc:
            return cls.of(
                ExperimentSpec.from_dict(d) for d in doc["specs"]
            )
        if "base" not in doc or "axes" not in doc:
            raise SpecError("plan document needs either specs or base+axes")
        base = ExperimentSpec.from_dict(doc["base"])
        axes: dict = {}
        for entry in doc["axes"]:
            try:
                name, values = entry
            except (TypeError, ValueError):
                raise SpecError(
                    f"malformed plan axis entry {entry!r}"
                ) from None
            if name == "workload":
                values = [
                    _decode_tagged(v) if isinstance(v, dict) else v
                    for v in values
                ]
            axes[name] = values
        return cls.grid(base, **axes)

    def to_json(self) -> str:
        """The :meth:`to_dict` document as indented JSON text."""
        return json.dumps(self.to_dict(), indent=2) + "\n"


def load_plan(path) -> Plan:
    """Read one Plan JSON file."""
    from pathlib import Path

    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from None
    return Plan.from_dict(doc)
