"""On-disk sweep-cell result cache keyed by spec content hash.

Each cache entry is one (spec, result) pair stored as JSON under
``<root>/<salt>/<spec-hash>.json``.  The salt partition combines a
manually bumped :data:`CACHE_VERSION` with a fingerprint of the
installed ``repro`` source tree, so *any* code change automatically
invalidates cached results — a stale cache can therefore never mask a
numerics regression in ``repro verify``.  Re-running a bench after an
unrelated edit outside ``src/repro`` (or with no edit at all) hits the
warm cache and skips the simulation entirely.

Entries store the producing spec alongside the result; a hash collision
or hand-edited file is detected and treated as a miss.  Corrupt entries
are likewise misses, never errors.

Publishes are atomic (``mkstemp`` + ``os.replace``) *and* serialized
across processes by a per-store advisory lock (see
:mod:`repro.locking`), so any number of concurrent writers — ``repro
serve`` workers, parallel sweeps, ad-hoc CLI runs — can share one store
directory without ever interleaving partial entries.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.experiments.spec import ExperimentSpec
from repro.locking import advisory_lock
from repro.testing.faults import corrupting, fault_point

#: Manual salt: bump when cached-result semantics change in a way the
#: code fingerprint cannot see (e.g. an external data file).
CACHE_VERSION = "v1"


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (content + relative path).

    Computed once per process (~1 ms for the ~40-file tree).  Any edit
    under ``src/repro`` changes the fingerprint and thereby the cache
    partition, guaranteeing cached results always came from the exact
    code that is running.

    The numba version (or its absence) is part of the digest: the jit
    tier's kernels compile under whatever numba is installed, so
    installing, removing, or upgrading numba moves the partition —
    cached cells and stored traces can never silently mix tiers.  (All
    tiers are contractually bit-identical, but the salt makes the
    guarantee structural rather than trusted.)
    """
    from repro.core.jitkern import NUMBA_VERSION

    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    digest.update(f"numba={NUMBA_VERSION or 'absent'}".encode("utf-8"))
    return digest.hexdigest()[:16]


class ResultCache:
    """Filesystem-backed (spec → SimulationResult) store."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root) / f"{CACHE_VERSION}-{code_fingerprint()}"
        self.hits = 0
        self.misses = 0

    @classmethod
    def coerce(cls, cache) -> "ResultCache | None":
        """None passes through; paths become caches; caches are caches."""
        if cache is None or isinstance(cache, ResultCache):
            return cache
        return cls(cache)

    def path_for(self, spec: ExperimentSpec) -> Path:
        """The store path for ``spec`` (keyed by its content hash)."""
        return self.root / f"{spec.content_hash()}.json"

    def get(self, spec: ExperimentSpec):
        """The cached result for ``spec``, or None (miss)."""
        from repro.sim.metrics import SimulationResult

        path = self.path_for(spec)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            stored = doc.get("spec")
            # Compare label-stripped forms: the display label is not
            # part of the hash, so differently labelled writers of the
            # same experiment must hit each other's entries.
            if not isinstance(stored, dict) or ExperimentSpec.from_dict(
                stored
            ).canonical_dict() != spec.canonical_dict():
                raise ValueError("cache entry spec mismatch")
            result = SimulationResult.from_dict(doc["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt or colliding entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result) -> Path:
        """Persist one result (atomic rename; concurrent writers safe).

        Instrumented as the ``cache.put`` fault-injection site: the
        ``raise`` kind fails the write (the sweep scheduler retries
        it), the ``corrupt`` kind tears the stored document so a later
        :meth:`get` must detect it and recompute.
        """
        fault_point("cache.put")
        doc = {"spec": spec.to_dict(), "result": result.to_dict()}
        return self._write(self.path_for(spec), doc,
                           corrupt_site="cache.put")

    def _write(self, path: Path, doc: dict,
               corrupt_site: str | None = None) -> Path:
        """Publish one entry: advisory lock + atomic temp-file rename.

        The rename alone makes a single publish atomic; the per-store
        advisory lock (:func:`repro.locking.advisory_lock`) additionally
        serializes concurrent multi-process writers — ``repro serve``
        pool workers, parallel sweeps, and ad-hoc CLI runs can all
        target one store — so interleaved publishes of the same entry
        resolve to exactly one winner and partial entries can never be
        observed.  Lock trouble (timeout, unwritable lock path) is an
        ``OSError`` like any other failed write; every caller already
        treats a failed put as a droppable optimization.
        """
        text = json.dumps(doc, indent=1)
        if corrupt_site is not None:
            text = corrupting(corrupt_site, text)
        path.parent.mkdir(parents=True, exist_ok=True)
        with advisory_lock(self.root / ".publish"):
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return path

    # -- partial runs (session snapshots) --------------------------------
    #
    # Warm-started sweeps: a checkpointed prefix of a run is reusable by
    # any experiment sharing the spec's semantic content — e.g. sweep
    # cells re-based on a longer horizon, or interactive what-if forks.
    # Snapshots are keyed by (spec content hash, position tag) in the
    # same fingerprint-salted partition as results, so stale code can
    # never resume into new numerics.

    def snapshot_path(self, spec: ExperimentSpec, tag: str | int) -> Path:
        """Where a partial-run snapshot of ``spec`` at ``tag`` lives."""
        return self.root / f"{spec.content_hash()}.snap-{tag}.json"

    def get_snapshot(self, spec: ExperimentSpec, tag: str | int):
        """The stored session-snapshot document, or None (miss)."""
        path = self.snapshot_path(spec, tag)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            stored = doc.get("spec")
            if not isinstance(stored, dict) or ExperimentSpec.from_dict(
                stored
            ).canonical_dict() != spec.canonical_dict():
                raise ValueError("snapshot entry spec mismatch")
            snapshot = doc["snapshot"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return snapshot

    def put_snapshot(
        self, spec: ExperimentSpec, tag: str | int, snapshot: dict
    ) -> Path:
        """Persist one partial-run snapshot (atomic, like :meth:`put`).

        Instrumented as the ``server.checkpoint`` fault-injection site:
        ``raise`` fails the write (callers treat a checkpoint as a
        droppable optimization), ``corrupt`` tears the stored document
        so a later :meth:`get_snapshot` must detect it and degrade to a
        cold start.
        """
        fault_point("server.checkpoint")
        doc = {"spec": spec.to_dict(), "snapshot": snapshot}
        return self._write(self.snapshot_path(spec, tag), doc,
                           corrupt_site="server.checkpoint")

    def delete_snapshot(self, spec: ExperimentSpec, tag: str | int) -> bool:
        """Drop a stored snapshot (a finished run no longer needs its
        resume point); returns whether a file was removed."""
        try:
            self.snapshot_path(spec, tag).unlink()
            return True
        except OSError:
            return False


def sweep_orphan_tmp(root: "Path | str | None") -> int:
    """Delete ``*.tmp`` residue under ``root``; returns the count removed.

    Every store write in the repro stack goes ``tempfile.mkstemp`` →
    write → ``os.replace``; a writer killed between the first two steps
    leaves an orphaned ``*.tmp`` file that nothing will ever read or
    rename.  ``repro cache stats``/``clear`` call this over the result
    and trace partitions so killed sweeps don't leak disk forever.
    Files a live writer still owns are safe: losing a tmp file only
    makes that writer's ``os.replace`` fail, which every store already
    treats as an ignorable write failure.
    """
    if root is None:
        return 0
    root = Path(root)
    if not root.is_dir():
        return 0
    removed = 0
    for path in root.rglob("*.tmp"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed
