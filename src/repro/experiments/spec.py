"""Declarative experiment specifications with stable content hashing.

An :class:`ExperimentSpec` is the complete, serializable description of
one simulator run: what system, what workload (or attack mix), which
mitigation scheme with which typed parameters, and the simulation
economy knobs (scale, banks, intervals, engine, seed).  Everything the
stack historically threaded through ~12 positional/keyword arguments
lives here once, with ``to_dict``/``from_dict`` round-tripping and a
stable :meth:`~ExperimentSpec.content_hash` that keys the on-disk sweep
result cache (:mod:`repro.experiments.cache`).

:class:`SchemeSpec` pairs a registered scheme name with its typed
params record from :mod:`repro.core.registry`, plus an optional display
label (``"SCA_128"``) used when grids key results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace

from repro.core.registry import (
    build_params,
    get_scheme_info,
    params_from_dict,
    params_to_dict,
)
from repro.dram.config import NAMED_CONFIGS, DRAMTimings, SystemConfig
from repro.report.config import ENGINE_NAMES
from repro.workloads.suites import WorkloadSpec, resolve_workload

#: Bump on incompatible spec-layout changes; ``from_dict`` rejects
#: other versions with a regeneration hint.
SPEC_VERSION = 1

#: Base seed of the simulator's arrival-time stream (the historical
#: hard-coded value; part of the spec so runs can be re-seeded).
DEFAULT_SEED = 0xC0FFEE

#: Default simulation economy knobs (kept equal to the historical
#: ``repro.sim.runner`` defaults so legacy calls map onto identical specs).
DEFAULT_SCALE = 16.0
DEFAULT_BANKS = 2
DEFAULT_INTERVALS = 2

#: The paper's default system, by registry name.
DEFAULT_SYSTEM = "dual-core/2channels"


class SpecError(ValueError):
    """A spec document or field combination is invalid."""


def _encode_tagged(value):
    """JSON form of config/workload objects embedded in a spec."""
    if isinstance(value, SystemConfig):
        return {"__type__": "SystemConfig", **asdict(value)}
    if isinstance(value, WorkloadSpec):
        return {"__type__": "WorkloadSpec", **asdict(value)}
    return value


def _decode_tagged(value):
    if isinstance(value, dict) and value.get("__type__") == "SystemConfig":
        doc = {k: v for k, v in value.items() if k != "__type__"}
        if isinstance(doc.get("timings"), dict):
            doc["timings"] = DRAMTimings(**doc["timings"])
        return SystemConfig(**doc)
    if isinstance(value, dict) and value.get("__type__") == "WorkloadSpec":
        doc = {k: v for k, v in value.items() if k != "__type__"}
        return WorkloadSpec(**doc)
    return value


@dataclass(frozen=True)
class SchemeSpec:
    """A registered scheme name plus its typed parameter record."""

    kind: str
    params: object | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        info = get_scheme_info(self.kind)
        object.__setattr__(self, "kind", info.name)
        if self.params is None:
            object.__setattr__(self, "params", info.default_params())
        elif not isinstance(self.params, info.params_cls):
            raise TypeError(
                f"scheme {info.name!r} expects {info.params_cls.__name__} "
                f"params, got {type(self.params).__name__}"
            )

    @classmethod
    def create(cls, kind: str, label: str | None = None, **params) -> "SchemeSpec":
        """Build a spec from loose keyword parameters (strictly validated:
        unlike legacy ``make_scheme`` kwargs, a knob the scheme does not
        have — even a cross-scheme legacy name — is a ``TypeError``)."""
        return cls(kind, build_params(kind, _strict=True, **params), label)

    @classmethod
    def from_legacy(
        cls,
        kind: str,
        *,
        counters: int = 64,
        max_levels: int = 11,
        pra_probability: float = 0.002,
        threshold_strategy: str = "auto",
        label: str | None = None,
    ) -> "SchemeSpec":
        """The SchemeSpec the historical cross-scheme kwarg soup means.

        Single home of the old-name → typed-field dispatch; the
        simulator/runner/CLI deprecation shims all route through here so
        a new scheme or parameter is mapped in exactly one place.
        """
        kind = kind.lower()
        if kind in ("prcat", "drcat"):
            return cls.create(
                kind,
                label,
                n_counters=counters,
                max_levels=max_levels,
                threshold_strategy=threshold_strategy,
            )
        if kind == "sca":
            return cls.create(kind, label, n_counters=counters)
        if kind == "pra":
            return cls.create(kind, label, probability=pra_probability)
        # Other kinds (ccache, future registrants) take none of the
        # legacy soup names; unknown kinds raise the registry's
        # ValueError here, preserving construction-time failure.
        return cls.create(kind, label)

    @property
    def display_label(self) -> str:
        """Label used when grids key results (falls back to the kind)."""
        return self.label or self.kind

    def to_dict(self) -> dict:
        """JSON-ready form: kind, params dict, optional label."""
        return {
            "kind": self.kind,
            "params": params_to_dict(self.params),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SchemeSpec":
        """Rebuild a scheme spec serialized by :meth:`to_dict`."""
        try:
            kind = doc["kind"]
        except (TypeError, KeyError):
            raise SpecError(f"scheme document {doc!r} has no 'kind'") from None
        return cls(
            kind,
            params_from_dict(kind, doc.get("params") or {}),
            doc.get("label"),
        )


def coerce_scheme(value) -> SchemeSpec:
    """Accept a SchemeSpec, a bare kind string, or a serialized dict."""
    if isinstance(value, SchemeSpec):
        return value
    if isinstance(value, str):
        return SchemeSpec(value)
    if isinstance(value, dict):
        return SchemeSpec.from_dict(value)
    raise TypeError(f"cannot interpret {value!r} as a scheme spec")


@dataclass(frozen=True)
class ExperimentSpec:
    """Complete declarative description of one simulator run."""

    scheme: SchemeSpec
    #: canonical workload label (aliases are resolved on construction);
    #: for ``kind="attack"`` this is the *benign* workload of the mix
    workload: str = "black"
    #: ``"workload"`` (Figure 8/9 style) or ``"attack"`` (Figure 13)
    kind: str = "workload"
    attack_kernel: str | None = None
    attack_mode: str | None = None
    #: a :data:`repro.dram.config.NAMED_CONFIGS` key, or an inline
    #: :class:`SystemConfig` for off-catalogue systems
    system: str | SystemConfig = DEFAULT_SYSTEM
    #: inline workload model overriding ``workload`` (rarely needed;
    #: grids that scale traffic use ``intensity_scale`` instead)
    workload_model: WorkloadSpec | None = None
    #: multiplier applied to the workload's mean activation intensity
    #: (Figure 11's quad-core traffic scaling)
    intensity_scale: float = 1.0
    refresh_threshold: int = 32768
    scale: float = DEFAULT_SCALE
    n_banks: int = DEFAULT_BANKS
    n_intervals: int = DEFAULT_INTERVALS
    engine: str = "batched"
    seed: int = DEFAULT_SEED
    #: session epoch/checkpoint policy: auto-snapshot every this many
    #: epochs when the run is driven through a streaming session with a
    #: snapshot sink (``repro run --stream --snapshot-dir``).  Like the
    #: scheme label this is *cosmetic for the numbers* — checkpointing
    #: is bit-identical by contract — so it is excluded from
    #: :meth:`content_hash`.
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        scheme = coerce_scheme(self.scheme)
        object.__setattr__(self, "scheme", scheme)
        if self.kind not in ("workload", "attack"):
            raise SpecError(
                f"spec kind must be 'workload' or 'attack', got {self.kind!r}"
            )
        if self.kind == "attack":
            if not self.attack_kernel or not self.attack_mode:
                raise SpecError(
                    "attack specs need attack_kernel and attack_mode"
                )
        if self.workload_model is None:
            # Resolve aliases eagerly so equal experiments hash equally.
            object.__setattr__(
                self, "workload", resolve_workload(self.workload).name
            )
        if isinstance(self.system, dict):
            # Hand-written spec documents may inline a system object
            # (with or without the serializer's "__type__" tag); coerce
            # eagerly so a malformed one fails at load time with the
            # field named, not at run time.
            doc = {k: v for k, v in self.system.items() if k != "__type__"}
            try:
                if isinstance(doc.get("timings"), dict):
                    doc["timings"] = DRAMTimings(**doc["timings"])
                object.__setattr__(self, "system", SystemConfig(**doc))
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"invalid inline system config: {exc}"
                ) from None
        elif isinstance(self.system, str):
            if self.system not in NAMED_CONFIGS:
                raise SpecError(
                    f"unknown system {self.system!r}; named systems: "
                    f"{', '.join(NAMED_CONFIGS)}"
                )
        elif not isinstance(self.system, SystemConfig):
            raise SpecError(
                f"system must be a named-config string, a SystemConfig, "
                f"or an inline config object; got "
                f"{type(self.system).__name__}"
            )
        if self.scale < 1.0:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.n_banks < 1 or self.n_intervals < 1:
            raise ValueError("need at least one bank and one interval")
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )
        if self.refresh_threshold <= 0:
            raise ValueError("refresh_threshold must be positive")
        if self.intensity_scale <= 0:
            raise ValueError("intensity_scale must be positive")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 epoch or None, got "
                f"{self.checkpoint_every}"
            )

    # -- resolution -------------------------------------------------------

    def resolve_system(self) -> SystemConfig:
        """The :class:`SystemConfig` this spec runs on."""
        if isinstance(self.system, SystemConfig):
            return self.system
        return NAMED_CONFIGS[self.system]

    def resolve_workload_model(self) -> WorkloadSpec:
        """The (possibly intensity-scaled) workload model to simulate."""
        model = (
            self.workload_model
            if self.workload_model is not None
            else resolve_workload(self.workload)
        )
        if self.intensity_scale != 1.0:
            model = replace(
                model, intensity=model.intensity * self.intensity_scale
            )
        return model

    @property
    def workload_label(self) -> str:
        """Display name of the workload (inline models use their own)."""
        if self.workload_model is not None:
            return self.workload_model.name
        return self.workload

    def key(self) -> tuple[str, str]:
        """The (workload, scheme-label) pair sweeps key results by."""
        return (self.workload_label, self.scheme.display_label)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, stable key order, JSON-ready."""
        doc = {"spec_version": SPEC_VERSION, "scheme": self.scheme.to_dict()}
        for f in fields(self):
            if f.name == "scheme":
                continue
            doc[f.name] = _encode_tagged(getattr(self, f.name))
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ExperimentSpec":
        """Validate and rebuild a spec serialized by :meth:`to_dict`."""
        if not isinstance(doc, dict):
            raise SpecError("spec document must be an object")
        version = doc.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"spec_version {version} is not supported (this build "
                f"reads version {SPEC_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known - {"spec_version"}
        if unknown:
            raise SpecError(
                f"spec document has unknown field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = {}
        for key, value in doc.items():
            if key == "spec_version":
                continue
            if key == "scheme":
                kwargs[key] = SchemeSpec.from_dict(value)
            else:
                kwargs[key] = _decode_tagged(value)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise SpecError(f"invalid spec document: {exc}") from None

    def to_json(self) -> str:
        """The :meth:`to_dict` document as indented JSON text."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def canonical_dict(self) -> dict:
        """:meth:`to_dict` minus cosmetic fields (the scheme's display
        label and the checkpoint policy cannot change the numbers), the
        form hashing and cache equality use."""
        doc = self.to_dict()
        doc["scheme"] = dict(doc["scheme"], label=None)
        doc["checkpoint_every"] = None
        return doc

    def content_hash(self) -> str:
        """Stable 16-hex-digit digest of the spec's semantic content.

        Equal experiments hash equally — workload aliases resolve at
        construction and the cosmetic scheme label is excluded, so a
        labelled bench cell and an unlabelled CLI spec of the same run
        share cache entries.  Any semantic field change — scheme
        params, engine, seed — changes the digest.
        """
        canonical = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_spec(path) -> ExperimentSpec:
    """Read one ExperimentSpec JSON file."""
    from pathlib import Path

    text = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"{path}: not valid JSON ({exc})") from None
    return ExperimentSpec.from_dict(doc)


__all__ = [
    "SPEC_VERSION",
    "DEFAULT_SEED",
    "DEFAULT_SCALE",
    "DEFAULT_BANKS",
    "DEFAULT_INTERVALS",
    "DEFAULT_SYSTEM",
    "SpecError",
    "SchemeSpec",
    "coerce_scheme",
    "ExperimentSpec",
    "load_spec",
]
