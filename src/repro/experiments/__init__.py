"""Declarative experiment layer: specs, plans, caching, execution.

The evaluation space of the paper — schemes × workloads × attacks ×
(T, counters, levels, scale) — is described by frozen, serializable,
content-hashed :class:`ExperimentSpec` records instead of per-call
keyword soup.  :class:`Plan` expands axis grids into spec lists;
:func:`run_plan` executes them with an on-disk per-cell result cache
(:class:`ResultCache`) and optional process-pool fan-out.  See
DESIGN.md, "The experiments layer".
"""

from repro.experiments.cache import CACHE_VERSION, ResultCache, code_fingerprint
from repro.experiments.plan import Plan, load_plan
from repro.experiments.spec import (
    DEFAULT_SEED,
    SPEC_VERSION,
    ExperimentSpec,
    SchemeSpec,
    SpecError,
    coerce_scheme,
    load_spec,
)
from repro.experiments.run import SweepPool, SweepReport, run_plan, run_spec
from repro.experiments.shared import SharedWorkRegistry

__all__ = [
    "SharedWorkRegistry",
    "SPEC_VERSION",
    "DEFAULT_SEED",
    "CACHE_VERSION",
    "SpecError",
    "SchemeSpec",
    "coerce_scheme",
    "ExperimentSpec",
    "load_spec",
    "Plan",
    "load_plan",
    "ResultCache",
    "code_fingerprint",
    "run_spec",
    "run_plan",
    "SweepPool",
    "SweepReport",
]
