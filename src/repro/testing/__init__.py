"""Deterministic test harnesses (fault injection, failure drills).

Nothing in this package affects production behaviour unless explicitly
armed through the environment; see :mod:`repro.testing.faults`.
"""

from repro.testing.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultConfigError,
    FaultSpec,
    corrupting,
    fault_point,
    faults_armed,
    faults_summary,
    parse_faults,
    reset_faults,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultConfigError",
    "FaultSpec",
    "corrupting",
    "fault_point",
    "faults_armed",
    "faults_summary",
    "parse_faults",
    "reset_faults",
]
