"""Deterministic fault injection for the sweep fault-tolerance layer.

The robustness claims of :func:`repro.experiments.run.run_plan` —
per-cell isolation, bounded retries, pool recovery, crash-safe resume —
are only claims until something actually fails.  This module plants
named *injection sites* on the hot failure surfaces and arms them from
the environment, so CI can make every failure mode happen on demand,
reproducibly, and then assert the sweep still converges to bit-identical
golden results.

Arming
------
``REPRO_FAULTS`` holds a comma-separated list of ``site:kind[:seed]``
triples::

    REPRO_FAULTS="tracestore.write:raise:3,pool.worker:kill-worker" \
        repro sweep --workers 2 --keep-going ...

Sites (where the fault fires):

========================  ====================================================
``tracestore.read``       :meth:`TraceStore.get <repro.sim.tracestore.TraceStore.get>`
``tracestore.write``      :meth:`TraceStore.put <repro.sim.tracestore.TraceStore.put>`
``cache.put``             :meth:`ResultCache.put <repro.experiments.cache.ResultCache.put>`
``pool.worker``           worker-side, per cell, inside a sweep chunk
``session.advance``       :meth:`SessionCore.advance <repro.sim.session.SessionCore.advance>`
``server.journal.write``  :meth:`Journal.append <repro.server.journal.Journal.append>`
``server.journal.read``   journal segment bytes on replay (``corrupt``:
                          torn-tail recovery must degrade to the last
                          good frame)
``server.driver``         top of a ``repro serve`` job-driver execution
                          (``raise`` exercises retryable requeue)
``server.checkpoint``     :meth:`ResultCache.put_snapshot
                          <repro.experiments.cache.ResultCache.put_snapshot>`
                          (a failed/corrupt checkpoint must degrade to
                          a longer recompute, never a wrong result)
========================  ====================================================

Kinds (what happens):

* ``raise`` — raise :class:`~repro.errors.InjectedFault` (a
  :class:`~repro.errors.RetryableError`);
* ``corrupt`` — mangle the bytes flowing through the site (truncate at
  half plus seeded byte noise), exercising the torn-write/torn-read
  detection paths;
* ``delay`` — sleep ``0.01 * (1 + seed % 5)`` seconds (drives timeout
  paths when a cell budget is set);
* ``kill-worker`` — ``os._exit(86)``, the closest stand-in for an OOM
  kill; only meaningful at ``pool.worker``.

Determinism
-----------
Each armed fault fires **exactly once per process**, on the first call
that reaches its site, and only while the scheduler is on retry round
zero (``REPRO_FAULTS_ROUND``, set by ``run_plan`` and threaded through
worker chunk environments) — so recovery attempts run clean and every
injected failure is transient by construction.  The seed feeds the
corruption noise and delay length, keeping runs byte-reproducible.

The sites themselves cost one dict lookup when ``REPRO_FAULTS`` is
unset; production runs never pay for the harness.
"""

from __future__ import annotations

import os
import time

from repro.errors import InjectedFault

FAULT_SITES = (
    "tracestore.read",
    "tracestore.write",
    "cache.put",
    "pool.worker",
    "session.advance",
    "server.journal.write",
    "server.journal.read",
    "server.driver",
    "server.checkpoint",
)

FAULT_KINDS = ("raise", "corrupt", "delay", "kill-worker")

ENV_VAR = "REPRO_FAULTS"
ROUND_VAR = "REPRO_FAULTS_ROUND"

#: Exit code an injected worker kill dies with (distinguishable from
#: genuine crashes in CI logs).
KILL_EXIT_CODE = 86


class FaultConfigError(ValueError):
    """``REPRO_FAULTS`` holds an unusable value."""


class FaultSpec:
    """One armed fault: a (site, kind, seed) triple."""

    __slots__ = ("site", "kind", "seed")

    def __init__(self, site: str, kind: str, seed: int = 0) -> None:
        if site not in FAULT_SITES:
            raise FaultConfigError(
                f"unknown fault site {site!r}: expected one of "
                f"{', '.join(FAULT_SITES)}"
            )
        if kind not in FAULT_KINDS:
            raise FaultConfigError(
                f"unknown fault kind {kind!r}: expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        self.site = site
        self.kind = kind
        self.seed = seed

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.site, self.kind, self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSpec({self.site}:{self.kind}:{self.seed})"


def parse_faults(raw: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value; empty string means disarmed."""
    specs: list[FaultSpec] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) not in (2, 3):
            raise FaultConfigError(
                f"malformed fault {part!r}: expected site:kind[:seed]"
            )
        seed = 0
        if len(pieces) == 3:
            try:
                seed = int(pieces[2])
            except ValueError:
                raise FaultConfigError(
                    f"malformed fault seed {pieces[2]!r} in {part!r}: "
                    "expected an integer"
                ) from None
        specs.append(FaultSpec(pieces[0], pieces[1], seed))
    return tuple(specs)


#: Per-process harness state: the raw env string last parsed, the armed
#: specs, and which of them already fired (faults are one-shot).
_state: dict = {"raw": None, "specs": (), "fired": set()}


def _armed() -> tuple[FaultSpec, ...]:
    raw = os.environ.get(ENV_VAR, "")
    if raw != _state["raw"]:
        _state["raw"] = raw
        _state["specs"] = parse_faults(raw)
        _state["fired"] = set()
    return _state["specs"]


def reset_faults() -> None:
    """Forget fired-fault state (tests re-arm within one process)."""
    _state["raw"] = None
    _state["specs"] = ()
    _state["fired"] = set()


def faults_armed() -> bool:
    """Whether any fault is currently armed."""
    return bool(os.environ.get(ENV_VAR)) and bool(_armed())


def faults_summary() -> str:
    """The armed-fault description for status headers (``off`` if none)."""
    raw = os.environ.get(ENV_VAR, "").strip()
    return raw if raw else "off"


def _recovery_round() -> bool:
    """True once the scheduler is past round zero (faults hold fire)."""
    raw = os.environ.get(ROUND_VAR, "")
    try:
        return int(raw) > 0 if raw else False
    except ValueError:
        return False


def _take(site: str, kinds: tuple[str, ...]) -> FaultSpec | None:
    """The first matching un-fired fault for ``site``, marked fired."""
    if not os.environ.get(ENV_VAR):
        return None
    specs = _armed()
    if not specs or _recovery_round():
        return None
    for spec in specs:
        if spec.site == site and spec.kind in kinds \
                and spec.key not in _state["fired"]:
            _state["fired"].add(spec.key)
            return spec
    return None


def fault_point(site: str) -> None:
    """Give an armed ``raise``/``delay``/``kill-worker`` fault its shot.

    Call this at the top of an instrumented operation.  No armed fault
    (the overwhelmingly common case) returns immediately.
    """
    spec = _take(site, ("raise", "delay", "kill-worker"))
    if spec is None:
        return
    if spec.kind == "raise":
        raise InjectedFault(f"injected fault at {site} (seed {spec.seed})")
    if spec.kind == "delay":
        time.sleep(0.01 * (1 + spec.seed % 5))
        return
    # kill-worker: die the way an OOM-killed worker dies — no cleanup,
    # no exception, no exit handlers.
    os._exit(KILL_EXIT_CODE)


def corrupting(site: str, data):
    """Pass ``data`` (str or bytes) through an armed ``corrupt`` fault.

    Instrumented writers route their payload through this just before
    persisting (and readers just after loading) so a fired fault
    produces exactly the torn/garbled artifact the robustness paths
    must detect.  Truncating an object document at half length plus
    seeded byte noise is never valid JSON and never a valid ``.npy``,
    so detection is guaranteed rather than probabilistic.
    """
    spec = _take(site, ("corrupt",))
    if spec is None:
        return data
    is_text = isinstance(data, str)
    raw = data.encode("utf-8", errors="replace") if is_text else bytes(data)
    cut = max(1, len(raw) // 2)
    noise = bytes((7 + spec.seed * 31 + i) % 256 for i in range(4))
    mangled = raw[:cut] + noise
    if is_text:
        return mangled.decode("utf-8", errors="replace")
    return mangled


__all__ = [
    "ENV_VAR",
    "ROUND_VAR",
    "KILL_EXIT_CODE",
    "FAULT_SITES",
    "FAULT_KINDS",
    "FaultConfigError",
    "FaultSpec",
    "parse_faults",
    "reset_faults",
    "faults_armed",
    "faults_summary",
    "fault_point",
    "corrupting",
]
