"""Experiment runner: the public entry points benches and examples use.

:func:`simulate_workload` runs one (workload, scheme) experiment with the
paper's default configuration; :func:`sweep` runs a cartesian sweep and
returns results keyed by parameters — the helper every figure bench is
built on.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dram.config import DUAL_CORE_2CH, SystemConfig
from repro.sim.metrics import SimulationResult, mean_over
from repro.sim.simulator import TraceDrivenSimulator
from repro.workloads.attacks import AttackKernel, get_kernel
from repro.workloads.suites import WORKLOAD_ORDER, WorkloadSpec, get_workload

#: Default simulation economy knobs.  Benches override for more fidelity.
DEFAULT_SCALE = 16.0
DEFAULT_BANKS = 2
DEFAULT_INTERVALS = 2


def simulate_workload(
    workload: str | WorkloadSpec,
    scheme: str = "drcat",
    *,
    config: SystemConfig | None = None,
    counters: int = 64,
    max_levels: int = 11,
    refresh_threshold: int = 32768,
    pra_probability: float = 0.002,
    threshold_strategy: str = "auto",
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
) -> SimulationResult:
    """Run one experiment and return CMRPO/ETO metrics.

    ``workload`` may be a Figure 8 label (``"blackscholes"`` is accepted
    as an alias for ``"black"``) or a :class:`WorkloadSpec`.
    """
    spec = _resolve_workload(workload)
    sim = TraceDrivenSimulator(
        config or DUAL_CORE_2CH,
        scheme,
        n_counters=counters,
        max_levels=max_levels,
        refresh_threshold=refresh_threshold,
        pra_probability=pra_probability,
        threshold_strategy=threshold_strategy,
        scale=scale,
        n_banks_simulated=n_banks,
        n_intervals=n_intervals,
    )
    return sim.run(spec)


def simulate_attack(
    kernel: str | AttackKernel,
    mode: str,
    scheme: str,
    *,
    benign: str | WorkloadSpec = "libq",
    config: SystemConfig | None = None,
    counters: int = 64,
    max_levels: int = 11,
    refresh_threshold: int = 32768,
    pra_probability: float = 0.002,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
) -> SimulationResult:
    """Run one Figure 13 attack experiment."""
    kernel_obj = get_kernel(kernel) if isinstance(kernel, str) else kernel
    benign_spec = _resolve_workload(benign)
    sim = TraceDrivenSimulator(
        config or DUAL_CORE_2CH,
        scheme,
        n_counters=counters,
        max_levels=max_levels,
        refresh_threshold=refresh_threshold,
        pra_probability=pra_probability,
        scale=scale,
        n_banks_simulated=n_banks,
        n_intervals=n_intervals,
    )
    return sim.run_attack(kernel_obj, mode, benign_spec)


def sweep(
    workloads: Iterable[str | WorkloadSpec] | None = None,
    schemes: Iterable[str] = ("pra", "sca", "prcat", "drcat"),
    **kwargs,
) -> dict[tuple[str, str], SimulationResult]:
    """Cartesian (workload × scheme) sweep.

    Returns ``{(workload_name, scheme): SimulationResult}``.  Keyword
    arguments forward to :func:`simulate_workload`; per-scheme overrides
    can be given as ``scheme_overrides={"sca": {"counters": 128}}``.
    """
    scheme_overrides: dict[str, dict] = kwargs.pop("scheme_overrides", {})
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    results: dict[tuple[str, str], SimulationResult] = {}
    for workload in names:
        spec = _resolve_workload(workload)
        for scheme in schemes:
            overrides = dict(kwargs)
            overrides.update(scheme_overrides.get(scheme, {}))
            results[(spec.name, scheme)] = simulate_workload(
                spec, scheme, **overrides
            )
    return results


def suite_means(
    results: dict[tuple[str, str], SimulationResult], attr: str = "cmrpo"
) -> dict[str, float]:
    """Per-scheme mean of ``attr`` over all workloads in a sweep."""
    by_scheme: dict[str, list[SimulationResult]] = {}
    for (_workload, scheme), result in results.items():
        by_scheme.setdefault(scheme, []).append(result)
    return {
        scheme: mean_over(runs, attr) for scheme, runs in by_scheme.items()
    }


def _resolve_workload(workload: str | WorkloadSpec) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    aliases = {
        "blackscholes": "black",
        "facesim": "face",
        "streamcluster": "str",
        "fluidanimate": "fluid",
        "swaptions": "swapt",
        "freqmine": "freq",
        "libquantum": "libq",
        "leslie3d": "leslie",
        "mummer": "mum",
        "tigr": "tigr",
    }
    return get_workload(aliases.get(workload, workload))
