"""Experiment runner: the public entry points benches and examples use.

The canonical input everywhere is the declarative layer in
:mod:`repro.experiments`: :func:`simulate_workload` accepts a full
:class:`~repro.experiments.ExperimentSpec`, and :func:`sweep` accepts a
:class:`~repro.experiments.Plan` (with an optional per-cell on-disk
result cache keyed by spec content hash).  The convenience keyword forms
remain — ``simulate_workload("black", scheme="drcat")`` builds the
equivalent spec internally — but per-scheme parameters are typed:
pass ``scheme=SchemeSpec.create(kind, ...)``.  (The pre-spec loose
keyword soup — ``counters=`` / ``max_levels=`` / ``pra_probability=`` /
``threshold_strategy=`` / ``scheme_overrides=`` — was removed after its
one-release deprecation window and now raises ``TypeError``.)

``sweep(..., workers=N)`` dispatches independent cells over a process
pool; every cell seeds its own generators deterministically, so results
are identical at any worker count and any cache hit/miss split.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dram.config import SystemConfig
from repro.experiments.plan import Plan
from repro.experiments.run import run_plan, run_spec
from repro.experiments.spec import (
    DEFAULT_BANKS,
    DEFAULT_INTERVALS,
    DEFAULT_SCALE,
    DEFAULT_SYSTEM,
    ExperimentSpec,
    coerce_scheme,
)
from repro.sim.metrics import SimulationResult, mean_over
from repro.sim.simulator import TraceDrivenSimulator
from repro.workloads.attacks import AttackKernel, get_kernel
from repro.workloads.suites import WorkloadSpec, resolve_workload

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_BANKS",
    "DEFAULT_INTERVALS",
    "simulate_workload",
    "simulate_attack",
    "sweep",
    "suite_means",
]


def _workload_fields(workload: str | WorkloadSpec) -> dict:
    """ExperimentSpec fields describing one workload argument."""
    if isinstance(workload, WorkloadSpec):
        try:
            registered = resolve_workload(workload.name)
        except KeyError:
            registered = None
        if registered == workload:
            return {"workload": workload.name}
        return {"workload_model": workload}
    return {"workload": str(workload)}


def build_spec(
    workload: str | WorkloadSpec,
    scheme,
    *,
    config: SystemConfig | None = None,
    refresh_threshold: int = 32768,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> ExperimentSpec:
    """The ExperimentSpec a convenience keyword call describes."""
    return ExperimentSpec(
        scheme=coerce_scheme(scheme),
        system=config if config is not None else DEFAULT_SYSTEM,
        refresh_threshold=refresh_threshold,
        scale=scale,
        n_banks=n_banks,
        n_intervals=n_intervals,
        engine=engine,
        **_workload_fields(workload),
    )


def simulate_workload(
    workload: str | WorkloadSpec | ExperimentSpec,
    scheme="drcat",
    *,
    config: SystemConfig | None = None,
    refresh_threshold: int = 32768,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> SimulationResult:
    """Run one experiment and return CMRPO/ETO metrics.

    The first argument may be a full
    :class:`~repro.experiments.ExperimentSpec` (every other argument is
    then ignored), or a workload — a Figure 8 label, a long-form alias
    (``"blackscholes"``), or a :class:`WorkloadSpec` — paired with a
    scheme given as a :class:`~repro.experiments.SchemeSpec` or a bare
    kind string (per-scheme parameters go through
    :meth:`SchemeSpec.create <repro.experiments.SchemeSpec.create>`).
    ``engine`` selects the per-event ``"scalar"`` loop or the
    (event-exact, bit-identical) ``"batched"`` fast path.
    """
    if isinstance(workload, ExperimentSpec):
        return run_spec(workload)
    spec = build_spec(
        workload,
        scheme,
        config=config,
        refresh_threshold=refresh_threshold,
        scale=scale,
        n_banks=n_banks,
        n_intervals=n_intervals,
        engine=engine,
    )
    return run_spec(spec)


def simulate_attack(
    kernel: str | AttackKernel,
    mode: str,
    scheme,
    *,
    benign: str | WorkloadSpec = "libq",
    config: SystemConfig | None = None,
    refresh_threshold: int = 32768,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> SimulationResult:
    """Run one Figure 13 attack experiment.

    As with :func:`simulate_workload`, ``kernel`` may be a full attack
    :class:`~repro.experiments.ExperimentSpec`; otherwise a kernel
    name/object, mix mode and scheme describe the cell.
    """
    if isinstance(kernel, ExperimentSpec):
        return run_spec(kernel)
    kernel_obj = get_kernel(kernel) if isinstance(kernel, str) else kernel
    spec = ExperimentSpec(
        scheme=coerce_scheme(scheme),
        kind="attack",
        attack_kernel=kernel_obj.name,
        attack_mode=mode,
        system=config if config is not None else DEFAULT_SYSTEM,
        refresh_threshold=refresh_threshold,
        scale=scale,
        n_banks=n_banks,
        n_intervals=n_intervals,
        engine=engine,
        **_workload_fields(benign),
    )
    try:
        registered = get_kernel(kernel_obj.name)
    except KeyError:
        registered = None
    if registered != kernel_obj:
        # An off-registry kernel object cannot be named in a spec; run
        # it directly (uncacheable, but fully supported).
        sim = TraceDrivenSimulator(spec)
        return sim.run_attack(kernel_obj, mode, spec.resolve_workload_model())
    return run_spec(spec)


#: Default scheme axis of a legacy sweep; identity-compared so an
#: explicitly passed ``schemes`` alongside a Plan is detectable.
_DEFAULT_SWEEP_SCHEMES = ("pra", "sca", "prcat", "drcat")


def sweep(
    workloads: Plan | Iterable[str | WorkloadSpec] | None = None,
    schemes: Iterable = _DEFAULT_SWEEP_SCHEMES,
    workers: int = 1,
    *,
    cache=None,
    **kwargs,
) -> dict[tuple[str, str], SimulationResult]:
    """Run a :class:`~repro.experiments.Plan`, or a cartesian grid.

    Returns ``{(workload_name, scheme_label): SimulationResult}``.  The
    first argument may be a Plan (``schemes`` and the grid keyword
    arguments are then invalid); otherwise a (workload × scheme) grid is
    built, with scheme entries given as kind strings or typed
    :class:`~repro.experiments.SchemeSpec` objects and the remaining
    keywords (``refresh_threshold=`` / ``scale=`` / ... ) applied to
    every cell via :func:`build_spec`.

    ``workers > 1`` runs cells on a process pool; ``cache`` (a
    directory path or :class:`~repro.experiments.ResultCache`) enables
    the per-cell on-disk result cache keyed by spec content hash.
    """
    if isinstance(workloads, Plan):
        if kwargs:
            raise TypeError(
                "sweep(plan) takes no grid keyword arguments "
                f"({', '.join(kwargs)})"
            )
        if schemes is not _DEFAULT_SWEEP_SCHEMES:
            raise TypeError(
                "sweep(plan) takes no schemes argument — the plan's "
                "cells already carry their SchemeSpecs"
            )
        plan = workloads
        keys = plan.keys()
        duplicates = {k for k in keys if keys.count(k) > 1}
        if duplicates:
            # dict(zip(...)) would silently keep only the last cell per
            # key; plans with axes beyond workload/scheme (thresholds,
            # engines, ...) need the full per-spec results.
            raise ValueError(
                "sweep(plan) keys results by (workload, scheme-label), "
                f"but these keys repeat: {sorted(duplicates)}; give the "
                "colliding cells distinct SchemeSpec labels, or use "
                "repro.experiments.run_plan for per-spec results"
            )
    else:
        plan = _grid_plan(workloads, schemes, kwargs)
    results = run_plan(plan, workers=workers, cache=cache)
    return dict(zip(plan.keys(), results))


def _grid_plan(
    workloads: Iterable[str | WorkloadSpec] | None,
    schemes: Iterable,
    kwargs: dict,
) -> Plan:
    """The Plan a ``sweep(workloads=, schemes=, **run_knobs)`` means."""
    from repro.workloads.suites import WORKLOAD_ORDER

    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    specs = [
        build_spec(workload, scheme, **kwargs)
        for workload in names
        for scheme in schemes
    ]
    return Plan.of(specs)


def suite_means(
    results: dict[tuple[str, str], SimulationResult], attr: str = "cmrpo"
) -> dict[str, float]:
    """Per-scheme mean of ``attr`` over all workloads in a sweep."""
    by_scheme: dict[str, list[SimulationResult]] = {}
    for (_workload, scheme), result in results.items():
        by_scheme.setdefault(scheme, []).append(result)
    return {
        scheme: mean_over(runs, attr) for scheme, runs in by_scheme.items()
    }


def _resolve_workload(workload: str | WorkloadSpec) -> WorkloadSpec:
    """Deprecated alias for :func:`repro.workloads.resolve_workload`."""
    return resolve_workload(workload)
