"""Experiment runner: the public entry points benches and examples use.

:func:`simulate_workload` runs one (workload, scheme) experiment with the
paper's default configuration; :func:`sweep` runs a cartesian sweep and
returns results keyed by parameters — the helper every figure bench is
built on.  ``sweep(..., workers=N)`` dispatches independent
(workload, scheme) cells over a process pool; every cell seeds its own
generators deterministically, so results are identical at any worker
count.
"""

from __future__ import annotations

import concurrent.futures
from collections.abc import Iterable

from repro.dram.config import DUAL_CORE_2CH, SystemConfig
from repro.sim.metrics import SimulationResult, mean_over
from repro.sim.simulator import TraceDrivenSimulator
from repro.workloads.attacks import AttackKernel, get_kernel
from repro.workloads.suites import WORKLOAD_ORDER, WorkloadSpec, get_workload

#: Default simulation economy knobs.  Benches override for more fidelity.
DEFAULT_SCALE = 16.0
DEFAULT_BANKS = 2
DEFAULT_INTERVALS = 2


def simulate_workload(
    workload: str | WorkloadSpec,
    scheme: str = "drcat",
    *,
    config: SystemConfig | None = None,
    counters: int = 64,
    max_levels: int = 11,
    refresh_threshold: int = 32768,
    pra_probability: float = 0.002,
    threshold_strategy: str = "auto",
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> SimulationResult:
    """Run one experiment and return CMRPO/ETO metrics.

    ``workload`` may be a Figure 8 label (``"blackscholes"`` is accepted
    as an alias for ``"black"``) or a :class:`WorkloadSpec`.  ``engine``
    selects the per-event ``"scalar"`` loop or the (event-exact,
    bit-identical) ``"batched"`` fast path.
    """
    spec = _resolve_workload(workload)
    sim = TraceDrivenSimulator(
        config or DUAL_CORE_2CH,
        scheme,
        n_counters=counters,
        max_levels=max_levels,
        refresh_threshold=refresh_threshold,
        pra_probability=pra_probability,
        threshold_strategy=threshold_strategy,
        scale=scale,
        n_banks_simulated=n_banks,
        n_intervals=n_intervals,
        engine=engine,
    )
    return sim.run(spec)


def simulate_attack(
    kernel: str | AttackKernel,
    mode: str,
    scheme: str,
    *,
    benign: str | WorkloadSpec = "libq",
    config: SystemConfig | None = None,
    counters: int = 64,
    max_levels: int = 11,
    refresh_threshold: int = 32768,
    pra_probability: float = 0.002,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> SimulationResult:
    """Run one Figure 13 attack experiment."""
    kernel_obj = get_kernel(kernel) if isinstance(kernel, str) else kernel
    benign_spec = _resolve_workload(benign)
    sim = TraceDrivenSimulator(
        config or DUAL_CORE_2CH,
        scheme,
        n_counters=counters,
        max_levels=max_levels,
        refresh_threshold=refresh_threshold,
        pra_probability=pra_probability,
        scale=scale,
        n_banks_simulated=n_banks,
        n_intervals=n_intervals,
        engine=engine,
    )
    return sim.run_attack(kernel_obj, mode, benign_spec)


def _sweep_cell(
    cell: tuple[WorkloadSpec, str, dict],
) -> tuple[tuple[str, str], SimulationResult]:
    """Run one (workload, scheme) cell; module-level for pickling."""
    spec, scheme, kwargs = cell
    return (spec.name, scheme), simulate_workload(spec, scheme, **kwargs)


def sweep(
    workloads: Iterable[str | WorkloadSpec] | None = None,
    schemes: Iterable[str] = ("pra", "sca", "prcat", "drcat"),
    workers: int = 1,
    **kwargs,
) -> dict[tuple[str, str], SimulationResult]:
    """Cartesian (workload × scheme) sweep.

    Returns ``{(workload_name, scheme): SimulationResult}``.  Keyword
    arguments forward to :func:`simulate_workload`; per-scheme overrides
    can be given as ``scheme_overrides={"sca": {"counters": 128}}``.

    ``workers > 1`` runs the independent cells on a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  All seeding is
    per-cell and deterministic, so the result dict is identical at any
    worker count (cells are reassembled in submission order).
    """
    scheme_overrides: dict[str, dict] = kwargs.pop("scheme_overrides", {})
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    cells: list[tuple[WorkloadSpec, str, dict]] = []
    for workload in names:
        spec = _resolve_workload(workload)
        for scheme in schemes:
            overrides = dict(kwargs)
            overrides.update(scheme_overrides.get(scheme, {}))
            cells.append((spec, scheme, overrides))
    results: dict[tuple[str, str], SimulationResult] = {}
    if workers > 1 and len(cells) > 1:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(cells))
        ) as pool:
            for key, result in pool.map(_sweep_cell, cells):
                results[key] = result
    else:
        for cell in cells:
            key, result = _sweep_cell(cell)
            results[key] = result
    return results


def suite_means(
    results: dict[tuple[str, str], SimulationResult], attr: str = "cmrpo"
) -> dict[str, float]:
    """Per-scheme mean of ``attr`` over all workloads in a sweep."""
    by_scheme: dict[str, list[SimulationResult]] = {}
    for (_workload, scheme), result in results.items():
        by_scheme.setdefault(scheme, []).append(result)
    return {
        scheme: mean_over(runs, attr) for scheme, runs in by_scheme.items()
    }


def _resolve_workload(workload: str | WorkloadSpec) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    aliases = {
        "blackscholes": "black",
        "facesim": "face",
        "streamcluster": "str",
        "fluidanimate": "fluid",
        "swaptions": "swapt",
        "freqmine": "freq",
        "libquantum": "libq",
        "leslie3d": "leslie",
        "mummer": "mum",
        "tigr": "tigr",
    }
    return get_workload(aliases.get(workload, workload))
