"""Experiment runner: the public entry points benches and examples use.

The canonical input everywhere is the declarative layer in
:mod:`repro.experiments`: :func:`simulate_workload` accepts a full
:class:`~repro.experiments.ExperimentSpec`, and :func:`sweep` accepts a
:class:`~repro.experiments.Plan` (with an optional per-cell on-disk
result cache keyed by spec content hash).  The historical keyword forms
still work: ``simulate_workload("black", scheme="drcat")`` builds the
equivalent spec internally, and the per-scheme parameter soup
(``counters=... / max_levels=... / pra_probability=... /
threshold_strategy=...``) is kept as a deprecated shim for one release —
it emits a ``DeprecationWarning`` pointing at
:meth:`SchemeSpec.create <repro.experiments.SchemeSpec.create>`.

``sweep(..., workers=N)`` dispatches independent cells over a process
pool; every cell seeds its own generators deterministically, so results
are identical at any worker count and any cache hit/miss split.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from repro.dram.config import SystemConfig
from repro.experiments.plan import Plan
from repro.experiments.run import run_plan, run_spec
from repro.experiments.spec import (
    DEFAULT_BANKS,
    DEFAULT_INTERVALS,
    DEFAULT_SCALE,
    DEFAULT_SYSTEM,
    ExperimentSpec,
    SchemeSpec,
)
from repro.sim.metrics import SimulationResult, mean_over
from repro.sim.simulator import TraceDrivenSimulator
from repro.workloads.attacks import AttackKernel, get_kernel
from repro.workloads.suites import WorkloadSpec, resolve_workload

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_BANKS",
    "DEFAULT_INTERVALS",
    "simulate_workload",
    "simulate_attack",
    "sweep",
    "suite_means",
]

#: Sentinel distinguishing "not passed" from an explicit default in the
#: deprecated scheme-kwarg shim.
_UNSET = object()

_SOUP_MESSAGE = (
    "passing per-scheme parameters as loose keywords "
    "(counters/max_levels/pra_probability/threshold_strategy) is "
    "deprecated; pass scheme=SchemeSpec.create(kind, ...) or a full "
    "ExperimentSpec instead"
)


def _coerce_legacy_scheme(scheme, soup: dict, stacklevel: int = 3) -> SchemeSpec:
    """Build a SchemeSpec from a legacy (kind, kwarg-soup) pair.

    ``soup`` maps the historical keyword names to values-or-_UNSET; any
    explicitly passed value triggers the one-release deprecation shim.
    ``stacklevel`` must point the warning at the *user's* call site so
    deprecated calls are locatable (each wrapper adds one frame).
    """
    if isinstance(scheme, SchemeSpec):
        if any(v is not _UNSET for v in soup.values()):
            raise TypeError(
                "scheme is already a SchemeSpec; do not also pass the "
                "deprecated counters/max_levels/pra_probability/"
                "threshold_strategy keywords"
            )
        return scheme
    if any(v is not _UNSET for v in soup.values()):
        warnings.warn(_SOUP_MESSAGE, DeprecationWarning,
                      stacklevel=stacklevel)
    filled = {k: v for k, v in soup.items() if v is not _UNSET}
    return SchemeSpec.from_legacy(str(scheme), **filled)


def _workload_fields(workload: str | WorkloadSpec) -> dict:
    """ExperimentSpec fields describing one workload argument."""
    if isinstance(workload, WorkloadSpec):
        try:
            registered = resolve_workload(workload.name)
        except KeyError:
            registered = None
        if registered == workload:
            return {"workload": workload.name}
        return {"workload_model": workload}
    return {"workload": str(workload)}


def build_spec(
    workload: str | WorkloadSpec,
    scheme,
    *,
    config: SystemConfig | None = None,
    refresh_threshold: int = 32768,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
    soup: dict | None = None,
    _warn_stacklevel: int = 4,
) -> ExperimentSpec:
    """The ExperimentSpec a legacy keyword call describes."""
    soup = soup or {
        k: _UNSET
        for k in ("counters", "max_levels", "pra_probability",
                  "threshold_strategy")
    }
    return ExperimentSpec(
        scheme=_coerce_legacy_scheme(scheme, soup,
                                     stacklevel=_warn_stacklevel),
        system=config if config is not None else DEFAULT_SYSTEM,
        refresh_threshold=refresh_threshold,
        scale=scale,
        n_banks=n_banks,
        n_intervals=n_intervals,
        engine=engine,
        **_workload_fields(workload),
    )


def simulate_workload(
    workload: str | WorkloadSpec | ExperimentSpec,
    scheme="drcat",
    *,
    config: SystemConfig | None = None,
    counters=_UNSET,
    max_levels=_UNSET,
    refresh_threshold: int = 32768,
    pra_probability=_UNSET,
    threshold_strategy=_UNSET,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> SimulationResult:
    """Run one experiment and return CMRPO/ETO metrics.

    The first argument may be a full
    :class:`~repro.experiments.ExperimentSpec` (every other argument is
    then ignored), or a workload — a Figure 8 label, a long-form alias
    (``"blackscholes"``), or a :class:`WorkloadSpec` — paired with a
    scheme given as a :class:`~repro.experiments.SchemeSpec` or a bare
    kind string.  ``engine`` selects the per-event ``"scalar"`` loop or
    the (event-exact, bit-identical) ``"batched"`` fast path.
    """
    if isinstance(workload, ExperimentSpec):
        return run_spec(workload)
    spec = build_spec(
        workload,
        scheme,
        config=config,
        refresh_threshold=refresh_threshold,
        scale=scale,
        n_banks=n_banks,
        n_intervals=n_intervals,
        engine=engine,
        soup={
            "counters": counters,
            "max_levels": max_levels,
            "pra_probability": pra_probability,
            "threshold_strategy": threshold_strategy,
        },
    )
    return run_spec(spec)


def simulate_attack(
    kernel: str | AttackKernel,
    mode: str,
    scheme,
    *,
    benign: str | WorkloadSpec = "libq",
    config: SystemConfig | None = None,
    counters=_UNSET,
    max_levels=_UNSET,
    refresh_threshold: int = 32768,
    pra_probability=_UNSET,
    scale: float = DEFAULT_SCALE,
    n_banks: int = DEFAULT_BANKS,
    n_intervals: int = DEFAULT_INTERVALS,
    engine: str = "batched",
) -> SimulationResult:
    """Run one Figure 13 attack experiment.

    As with :func:`simulate_workload`, ``kernel`` may be a full attack
    :class:`~repro.experiments.ExperimentSpec`; otherwise a kernel
    name/object, mix mode and scheme describe the cell.
    """
    if isinstance(kernel, ExperimentSpec):
        return run_spec(kernel)
    scheme_spec = _coerce_legacy_scheme(scheme, {
        "counters": counters,
        "max_levels": max_levels,
        "pra_probability": pra_probability,
        "threshold_strategy": _UNSET,
    })
    kernel_obj = get_kernel(kernel) if isinstance(kernel, str) else kernel
    spec = ExperimentSpec(
        scheme=scheme_spec,
        kind="attack",
        attack_kernel=kernel_obj.name,
        attack_mode=mode,
        system=config if config is not None else DEFAULT_SYSTEM,
        refresh_threshold=refresh_threshold,
        scale=scale,
        n_banks=n_banks,
        n_intervals=n_intervals,
        engine=engine,
        **_workload_fields(benign),
    )
    try:
        registered = get_kernel(kernel_obj.name)
    except KeyError:
        registered = None
    if registered != kernel_obj:
        # An off-registry kernel object cannot be named in a spec; run
        # it directly (uncacheable, but fully supported).
        sim = TraceDrivenSimulator(spec)
        return sim.run_attack(kernel_obj, mode, spec.resolve_workload_model())
    return run_spec(spec)


#: Default scheme axis of a legacy sweep; identity-compared so an
#: explicitly passed ``schemes`` alongside a Plan is detectable.
_DEFAULT_SWEEP_SCHEMES = ("pra", "sca", "prcat", "drcat")


def sweep(
    workloads: Plan | Iterable[str | WorkloadSpec] | None = None,
    schemes: Iterable = _DEFAULT_SWEEP_SCHEMES,
    workers: int = 1,
    *,
    cache=None,
    **kwargs,
) -> dict[tuple[str, str], SimulationResult]:
    """Run a :class:`~repro.experiments.Plan`, or a legacy cartesian grid.

    Returns ``{(workload_name, scheme_label): SimulationResult}``.  The
    first argument may be a Plan (``schemes`` and the legacy keyword
    arguments are then invalid); otherwise a (workload × scheme) grid is
    built from names, with per-scheme overrides via
    ``scheme_overrides={"sca": {"counters": 128}}`` (deprecated — put
    typed ``SchemeSpec``s in a Plan instead).

    ``workers > 1`` runs cells on a process pool; ``cache`` (a
    directory path or :class:`~repro.experiments.ResultCache`) enables
    the per-cell on-disk result cache keyed by spec content hash.
    """
    if isinstance(workloads, Plan):
        if kwargs:
            raise TypeError(
                "sweep(plan) takes no legacy keyword arguments "
                f"({', '.join(kwargs)})"
            )
        if schemes is not _DEFAULT_SWEEP_SCHEMES:
            raise TypeError(
                "sweep(plan) takes no schemes argument — the plan's "
                "cells already carry their SchemeSpecs"
            )
        plan = workloads
        keys = plan.keys()
        duplicates = {k for k in keys if keys.count(k) > 1}
        if duplicates:
            # dict(zip(...)) would silently keep only the last cell per
            # key; plans with axes beyond workload/scheme (thresholds,
            # engines, ...) need the full per-spec results.
            raise ValueError(
                "sweep(plan) keys results by (workload, scheme-label), "
                f"but these keys repeat: {sorted(duplicates)}; give the "
                "colliding cells distinct SchemeSpec labels, or use "
                "repro.experiments.run_plan for per-spec results"
            )
    else:
        plan = _legacy_plan(workloads, schemes, kwargs)
    results = run_plan(plan, workers=workers, cache=cache)
    return dict(zip(plan.keys(), results))


def _legacy_plan(
    workloads: Iterable[str | WorkloadSpec] | None,
    schemes: Iterable,
    kwargs: dict,
) -> Plan:
    """The Plan a legacy ``sweep(workloads=, schemes=, **kwargs)`` means."""
    from repro.workloads.suites import WORKLOAD_ORDER

    scheme_overrides: dict[str, dict] = kwargs.pop("scheme_overrides", {})
    if scheme_overrides:
        warnings.warn(_SOUP_MESSAGE, DeprecationWarning, stacklevel=3)
    soup = {
        "counters": kwargs.pop("counters", _UNSET),
        "max_levels": kwargs.pop("max_levels", _UNSET),
        "pra_probability": kwargs.pop("pra_probability", _UNSET),
        "threshold_strategy": kwargs.pop("threshold_strategy", _UNSET),
    }
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    specs = []
    for workload in names:
        for scheme in schemes:
            cell_soup = dict(soup)
            cell_kwargs = dict(kwargs)
            if isinstance(scheme, str) and scheme in scheme_overrides:
                # The historical contract: overrides merge into the full
                # simulate_workload kwargs, so scheme-param names route
                # through the soup and run knobs (refresh_threshold,
                # engine, scale, ...) override the cell's spec fields.
                for key, value in scheme_overrides[scheme].items():
                    if key in cell_soup:
                        cell_soup[key] = value
                    else:
                        cell_kwargs[key] = value
            specs.append(
                build_spec(workload, scheme, soup=cell_soup,
                           _warn_stacklevel=5, **cell_kwargs)
            )
    return Plan.of(specs)


def suite_means(
    results: dict[tuple[str, str], SimulationResult], attr: str = "cmrpo"
) -> dict[str, float]:
    """Per-scheme mean of ``attr`` over all workloads in a sweep."""
    by_scheme: dict[str, list[SimulationResult]] = {}
    for (_workload, scheme), result in results.items():
        by_scheme.setdefault(scheme, []).append(result)
    return {
        scheme: mean_over(runs, attr) for scheme, runs in by_scheme.items()
    }


def _resolve_workload(workload: str | WorkloadSpec) -> WorkloadSpec:
    """Deprecated alias for :func:`repro.workloads.resolve_workload`."""
    return resolve_workload(workload)
