"""The re-entrant simulation core behind runs and sessions.

Historically the simulator's loop drove a run to completion: generate
every bank's stream for an interval, push it through the engine, repeat.
:class:`SessionCore` inverts that control flow into an explicit state
machine — pending per-bank streams, per-bank cursors, the arrival RNG,
and the :class:`~repro.dram.memory_system.MemorySystem` — whose
:meth:`~SessionCore.advance` method serves *up to* a time or access
budget and can be called again to continue.  Run-to-completion
(:meth:`TraceDrivenSimulator.run <repro.sim.simulator.TraceDrivenSimulator.run>`)
is now simply ``advance()`` with no limits, so the batch engine and the
streaming session API (:mod:`repro.api`) share one loop and one
equivalence argument:

* pausing is exact — within an epoch segment banks are independent and
  the shared totals commute, and epoch boundaries are only crossed when
  the next served access lies beyond them (see
  :func:`repro.sim.engine.advance_batched_streams`);
* resuming is exact — every piece of loop state is explicit, and
  :meth:`to_state` / :meth:`SessionCore.from_state` capture and restore
  it (together with the scheme/bank state protocol) bit-identically.

Streams are generated lazily, one interval at a time, consuming the
arrival RNG in exactly the order the historical loop did (per bank, in
bank order, per interval), so a core that is never paused produces the
byte-identical result history.

Generation itself is de-duplicated through the content-addressed
:mod:`trace store <repro.sim.tracestore>`: before generating an
interval the core consults the store, and a hit hands back zero-copy
memory-mapped views of the byte-exact arrays a previous generation pass
produced — restoring the arrival RNG to its recorded post-generation
state so the consumption order above is preserved.  All N cells of a
scheme-axis grid therefore share one generation pass.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.dram.memory_system import MemorySystem
from repro.sim.engine import advance_batched_streams, quantize_times_ns
from repro.sim.metrics import RunTotals
from repro.sim.tracestore import open_store, stream_key
from repro.testing.faults import fault_point
from repro.workloads.synthetic import interarrival_times_ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import TraceDrivenSimulator


def merge_streams(
    per_bank: list[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-bank (times, rows) into sorted (times, banks, rows) arrays.

    Bank and row ids stay in integer dtypes throughout (no ``float64``
    round-trip), and one stable argsort on the time column preserves the
    per-bank ordering for tied timestamps.
    """
    if not per_bank:
        return (
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    times = np.concatenate([t for t, _ in per_bank])
    banks = np.concatenate(
        [np.full(len(rows), bank, dtype=np.int64)
         for bank, (_, rows) in enumerate(per_bank)]
    )
    rows = np.concatenate(
        [r.astype(np.int64, copy=False) for _, r in per_bank]
    )
    order = np.argsort(times, kind="stable")
    return times[order], banks[order], rows[order]


class SessionCore:
    """Incremental driver of one experiment's access streams.

    Parameters
    ----------
    sim:
        The configured simulator (spec, system, scheme factory).
    label, full_intensity, rows_fn:
        One stream plan from
        :meth:`~repro.sim.simulator.TraceDrivenSimulator.stream_plan`.
    trace_key_doc:
        The stream-identity document
        (:func:`~repro.sim.tracestore.stream_key_doc`) describing what
        ``rows_fn`` generates, or None when the plan is not
        content-addressable (off-registry attack kernels); None also
        results when the store is disabled.
    """

    def __init__(
        self,
        sim: "TraceDrivenSimulator",
        label: str,
        full_intensity: float,
        rows_fn: Callable[[int, int], np.ndarray],
        trace_key_doc: dict | None = None,
    ) -> None:
        self.sim = sim
        self.label = label
        self.full_intensity = full_intensity
        self.rows_fn = rows_fn
        self.engine = sim.engine
        # The jit tier shares the batched engine's per-bank stream
        # format and segment loop; only the bank-segment kernel differs.
        self._banked = self.engine in ("batched", "jit")
        self._jit = self.engine == "jit"
        self.n_banks = sim.n_banks_simulated
        self.n_intervals = sim.n_intervals
        self.epoch_ns = sim.epoch_s * 1e9
        self.memory = MemorySystem(
            sim.config,
            sim._scheme_factory(),
            epoch_s=sim.epoch_s,
            active_banks=self.n_banks,
        )
        sim._last_memory = self.memory
        self.arrival_rng = np.random.Generator(np.random.PCG64(sim.seed))
        #: index of the interval whose streams are loaded (-1 = none yet)
        self.interval = -1
        # Batched engine: per-bank pending arrays + cursors.
        self._bank_times: list[np.ndarray] = []
        self._bank_rows: list[np.ndarray] = []
        self._cursors: list[int] = []
        # Scalar engine: merged pending arrays + one cursor (numpy for
        # searchsorted/suffix capture, lists for the per-event loop).
        self._m_times = np.empty(0, dtype=np.float64)
        self._m_banks = np.empty(0, dtype=np.int64)
        self._m_rows = np.empty(0, dtype=np.int64)
        self._m_times_list: list[float] = []
        self._m_banks_list: list[int] = []
        self._m_rows_list: list[int] = []
        self._m_cursor = 0
        # Position floor carried across snapshot/restore (cursors reset
        # to zero on restore, so served history is otherwise invisible).
        self._position_floor = 0.0
        # Content-addressed generation sharing (None = always generate).
        self._trace_store = None
        self._trace_key: str | None = None
        self._trace_key_doc = trace_key_doc
        if trace_key_doc is not None:
            store = open_store()
            if store is not None:
                self._trace_store = store
                self._trace_key = stream_key(trace_key_doc)

    # -- interval loading --------------------------------------------------

    def _generate_interval(self, interval: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-bank quantized (times, rows) of one interval.

        Consumes the arrival RNG per bank in bank order — the exact
        historical generation order, which keeps unpaused runs
        byte-identical to the pre-session loop.
        """
        base_ns = interval * self.epoch_ns
        per_bank: list[tuple[np.ndarray, np.ndarray]] = []
        for bank in range(self.n_banks):
            rows = self.rows_fn(bank, interval)
            times = interarrival_times_ns(
                self.arrival_rng, len(rows), self.epoch_ns
            )
            per_bank.append((quantize_times_ns(times + base_ns), rows))
        return per_bank

    def _fetch_interval(self, interval: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """One interval's streams: trace-store hit, or generate (+store).

        A hit restores the arrival RNG to the entry's recorded
        post-generation state, leaving the generator exactly where
        generating would have left it — the chained per-interval states
        are a pure function of the stream key, so hits and misses can
        interleave freely (even across processes) without divergence.
        """
        store, key = self._trace_store, self._trace_key
        if store is None or key is None:
            return self._generate_interval(interval)
        hit = store.get(key, self._trace_key_doc, interval, self.n_banks)
        if hit is not None:
            per_bank, rng_state = hit
            try:
                self.arrival_rng.bit_generator.state = rng_state
            except (ValueError, KeyError, TypeError):
                # A malformed recorded state must degrade to
                # regeneration like any other corrupt entry (numpy
                # validates before mutating, so the RNG is untouched).
                store.drop(key, interval)
            else:
                return per_bank
        per_bank = self._generate_interval(interval)
        store.put(key, self._trace_key_doc, interval, per_bank,
                  self.arrival_rng.bit_generator.state)
        return per_bank

    def _install_streams(
        self, per_bank: list[tuple[np.ndarray, np.ndarray]]
    ) -> None:
        if self._banked:
            self._bank_times = [t for t, _ in per_bank]
            self._bank_rows = [
                r.astype(np.int64, copy=False) for _, r in per_bank
            ]
            self._cursors = [0] * len(per_bank)
        else:
            times, banks, rows = merge_streams(per_bank)
            self._m_times, self._m_banks, self._m_rows = times, banks, rows
            self._m_times_list = times.tolist()
            self._m_banks_list = banks.tolist()
            self._m_rows_list = rows.tolist()
            self._m_cursor = 0

    def _interval_exhausted(self) -> bool:
        if self.interval < 0:
            return True
        if self._banked:
            return all(
                c >= len(t) for c, t in zip(self._cursors, self._bank_times)
            )
        return self._m_cursor >= len(self._m_times_list)

    def _load_next_interval(self) -> bool:
        """Generate and install the next interval; False when done."""
        if self.interval + 1 >= self.n_intervals:
            return False
        self.interval += 1
        self._install_streams(self._fetch_interval(self.interval))
        return True

    # -- fused multi-scheme evaluation (see repro.experiments.run) ---------

    def fetch_interval(self, interval: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """One interval's per-bank (times, rows) streams, fetched once.

        Public entry for the fused sweep path: a *lead* core fetches
        each interval (trace-store hit or generation, advancing its
        arrival RNG exactly as a solo run would) and every fused
        follower installs the same arrays via :meth:`install_interval`.
        The arrays are only ever read by the engine, so sharing them
        across cores is safe.
        """
        return self._fetch_interval(interval)

    def install_interval(
        self, interval: int, per_bank: list[tuple[np.ndarray, np.ndarray]]
    ) -> None:
        """Install externally fetched streams as interval ``interval``.

        The follower's own arrival RNG is deliberately not consumed —
        stream content is a pure function of the (shared) stream key, so
        the installed arrays are bit-identical to what the follower
        would have generated itself.
        """
        if interval != self.interval + 1:
            raise ValueError(
                f"interval {interval} installed out of order "
                f"(core is at {self.interval})"
            )
        self.interval = interval
        self._install_streams(per_bank)

    def advance_installed(self) -> int:
        """Serve the currently installed interval's stream to exhaustion.

        Unlike :meth:`advance` this never loads the next interval — the
        fused driver owns interval fetching.  Epoch boundaries inside
        (and, on the next call, between) intervals cross exactly as the
        solo loop crosses them: the engine only advances an epoch when
        the next pending access lies beyond it.
        """
        if self.interval < 0:
            return 0
        if self._banked:
            return advance_batched_streams(
                self.memory,
                list(zip(self._bank_times, self._bank_rows)),
                self._cursors,
                jit=self._jit,
            )
        return self._advance_scalar(None, None)

    @property
    def done(self) -> bool:
        """True once every interval's stream has been fully served."""
        return self.interval + 1 >= self.n_intervals and \
            self._interval_exhausted()

    # -- the re-entrant loop -----------------------------------------------

    def advance(
        self,
        *,
        until_ns: float | None = None,
        max_accesses: int | None = None,
    ) -> int:
        """Serve accesses up to the given limits; returns the count served.

        With no limits, runs to completion.  ``until_ns`` serves every
        access arriving strictly before that time; ``max_accesses``
        bounds the number served in this call.  Pausing at any point and
        continuing later yields the bit-identical final state.
        """
        fault_point("session.advance")
        served = 0
        while True:
            if self._interval_exhausted():
                if not self._load_next_interval():
                    break
            budget = None if max_accesses is None else max_accesses - served
            if budget is not None and budget <= 0:
                break
            if self._banked:
                n = advance_batched_streams(
                    self.memory,
                    list(zip(self._bank_times, self._bank_rows)),
                    self._cursors,
                    until_ns=until_ns,
                    max_accesses=budget,
                    jit=self._jit,
                )
            else:
                n = self._advance_scalar(until_ns, budget)
            served += n
            if not self._interval_exhausted():
                # A limit stopped the engine inside this interval.
                break
            if n == 0 and self.interval + 1 >= self.n_intervals:
                break
        return served

    def _advance_scalar(
        self, until_ns: float | None, max_accesses: int | None
    ) -> int:
        """Per-event reference loop over the merged pending stream."""
        start = self._m_cursor
        end = len(self._m_times_list)
        if until_ns is not None:
            end = int(
                np.searchsorted(self._m_times, until_ns, side="left")
            )
        if max_accesses is not None:
            end = min(end, start + max_accesses)
        if end <= start:
            return 0
        access = self.memory.access
        times = self._m_times_list
        banks = self._m_banks_list
        rows = self._m_rows_list
        for k in range(start, end):
            # The cursor leads each serve so an epoch tap firing inside
            # ``access`` observes a consistent pending suffix.
            self._m_cursor = k
            access(times[k], banks[k], rows[k])
        self._m_cursor = end
        return end - start

    # -- injection ---------------------------------------------------------

    def inject(
        self, bank: int, times: np.ndarray, rows: np.ndarray
    ) -> int:
        """Splice extra activations into the current interval's stream.

        ``times`` (ns, any order; quantized here) must fall inside the
        current interval's window; ``rows`` are row ids on ``bank``.
        The injected accesses merge into the *pending* suffix in time
        order (existing accesses first on ties) and are served by
        subsequent :meth:`advance` calls exactly as generated traffic
        would be.  Returns the number of accesses injected.
        """
        if self.interval < 0 and not self._load_next_interval():
            raise RuntimeError("cannot inject into a zero-interval run")
        if not 0 <= bank < self.n_banks:
            raise ValueError(
                f"bank {bank} out of range for {self.n_banks} "
                "simulated bank(s)"
            )
        times = quantize_times_ns(np.asarray(times, dtype=np.float64))
        rows = np.asarray(rows, dtype=np.int64)
        if len(times) != len(rows):
            raise ValueError("times and rows must have equal length")
        if len(times) == 0:
            return 0
        order = np.argsort(times, kind="stable")
        times, rows = times[order], rows[order]
        lo = self.interval * self.epoch_ns
        hi = (self.interval + 1) * self.epoch_ns
        if float(times[0]) < lo or float(times[-1]) >= hi:
            raise ValueError(
                f"injected times must lie in the current interval window "
                f"[{lo}, {hi}) ns"
            )
        n_rows = self.sim.config.rows_per_bank
        if int(rows.min()) < 0 or int(rows.max()) >= n_rows:
            raise ValueError(
                f"injected rows out of range for bank with {n_rows} rows"
            )
        if self._banked:
            c = self._cursors[bank]
            pending_t = self._bank_times[bank][c:]
            pending_r = self._bank_rows[bank][c:]
            cat_t = np.concatenate([pending_t, times])
            cat_r = np.concatenate([pending_r, rows])
            new_order = np.argsort(cat_t, kind="stable")
            self._bank_times[bank] = cat_t[new_order]
            self._bank_rows[bank] = cat_r[new_order]
            self._cursors[bank] = 0
        else:
            c = self._m_cursor
            cat_t = np.concatenate([self._m_times[c:], times])
            cat_b = np.concatenate(
                [self._m_banks[c:], np.full(len(rows), bank, dtype=np.int64)]
            )
            cat_r = np.concatenate([self._m_rows[c:], rows])
            new_order = np.argsort(cat_t, kind="stable")
            self._m_times = cat_t[new_order]
            self._m_banks = cat_b[new_order]
            self._m_rows = cat_r[new_order]
            self._m_times_list = self._m_times.tolist()
            self._m_banks_list = self._m_banks.tolist()
            self._m_rows_list = self._m_rows.tolist()
            self._m_cursor = 0
        return len(times)

    # -- metrics -----------------------------------------------------------

    @property
    def accesses_served(self) -> int:
        """Demand activations served so far (all banks)."""
        return self.memory.total_activations

    def position_ns(self) -> float:
        """Arrival time of the most recently served access (0 if none)."""
        last = 0.0
        if self.interval < 0:
            return last
        if self._banked:
            for c, t in zip(self._cursors, self._bank_times):
                if c > 0:
                    last = max(last, float(t[c - 1]))
        elif self._m_cursor > 0:
            last = float(self._m_times_list[self._m_cursor - 1])
        # Served accesses of *earlier* intervals imply at least the
        # epoch base even if the current interval has not started.
        if self.accesses_served:
            last = max(last, self.interval * self.epoch_ns)
        return max(last, self._position_floor)

    def totals(self, elapsed_ns: float | None = None) -> RunTotals:
        """Raw totals; ``elapsed_ns`` defaults to the full run length."""
        memory = self.memory
        if elapsed_ns is None:
            elapsed_ns = self.n_intervals * self.epoch_ns
        return RunTotals(
            scheme=self.sim.scheme_kind,
            workload=self.label,
            scale=self.sim.scale,
            n_banks_simulated=self.n_banks,
            n_intervals=self.n_intervals,
            accesses=self.accesses_served,
            refresh_commands=memory.total_refresh_commands,
            rows_refreshed=memory.total_rows_refreshed,
            stall_ns=memory.total_stall_ns,
            elapsed_ns=elapsed_ns,
            mitigation_busy_ns=memory.total_mitigation_busy_ns,
            full_scale_accesses_per_interval=self.full_intensity,
        )

    # -- checkpointable state ----------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable capture of the whole loop state.

        Pending streams are stored as their *unserved suffix* verbatim
        (injections included), cursors reset to zero; the arrival RNG
        state covers every not-yet-generated interval.  Quarter-ns-grid
        floats round-trip exactly through JSON.
        """
        doc: dict = {
            "engine": self.engine,
            "interval": self.interval,
            "position_ns": self.position_ns(),
            "rng": {"pcg64": self.arrival_rng.bit_generator.state},
            "memory": self.memory.to_state(),
        }
        if self.interval >= 0:
            if self._banked:
                doc["streams"] = [
                    {
                        "times": t[c:].tolist(),
                        "rows": r[c:].tolist(),
                    }
                    for t, r, c in zip(
                        self._bank_times, self._bank_rows, self._cursors
                    )
                ]
            else:
                c = self._m_cursor
                doc["streams"] = {
                    "times": self._m_times[c:].tolist(),
                    "banks": self._m_banks[c:].tolist(),
                    "rows": self._m_rows[c:].tolist(),
                }
        return doc

    @classmethod
    def from_state(
        cls,
        sim: "TraceDrivenSimulator",
        label: str,
        full_intensity: float,
        rows_fn: Callable[[int, int], np.ndarray],
        state: dict,
        trace_key_doc: dict | None = None,
    ) -> "SessionCore":
        """Rebuild a core captured by :meth:`to_state` (same spec)."""
        core = cls(sim, label, full_intensity, rows_fn, trace_key_doc)
        if state["engine"] != core.engine:
            raise ValueError(
                f"snapshot was taken on the {state['engine']!r} engine, "
                f"spec selects {core.engine!r}"
            )
        core.arrival_rng.bit_generator.state = state["rng"]["pcg64"]
        core.memory.restore_state(state["memory"])
        core.interval = int(state["interval"])
        core._position_floor = float(state.get("position_ns", 0.0))
        if core.interval >= 0:
            streams = state["streams"]
            if core._banked:
                if len(streams) != core.n_banks:
                    raise ValueError(
                        f"snapshot carries {len(streams)} bank streams, "
                        f"spec simulates {core.n_banks}"
                    )
                core._bank_times = [
                    np.asarray(s["times"], dtype=np.float64) for s in streams
                ]
                core._bank_rows = [
                    np.asarray(s["rows"], dtype=np.int64) for s in streams
                ]
                core._cursors = [0] * core.n_banks
            else:
                core._m_times = np.asarray(streams["times"], dtype=np.float64)
                core._m_banks = np.asarray(streams["banks"], dtype=np.int64)
                core._m_rows = np.asarray(streams["rows"], dtype=np.int64)
                core._m_times_list = core._m_times.tolist()
                core._m_banks_list = core._m_banks.tolist()
                core._m_rows_list = core._m_rows.tolist()
                core._m_cursor = 0
        return core
