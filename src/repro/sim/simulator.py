"""The trace-driven simulator gluing workloads, DRAM and schemes.

One :class:`TraceDrivenSimulator` run models ``n_banks`` banks of the
configured system over ``n_intervals`` auto-refresh intervals.
Mitigation schemes are per-bank and independent, so simulating a subset
of banks and averaging is statistically equivalent to simulating all of
them — the remaining banks would simply replay the same workload model
with different seeds.

The simulator is configured by one declarative
:class:`~repro.experiments.ExperimentSpec` — ``TraceDrivenSimulator(spec)``
— which carries the system, workload/attack, typed scheme parameters and
economy knobs.  (The pre-spec ``TraceDrivenSimulator(config, kind,
n_counters=..., ...)`` keyword form was removed after its one-release
deprecation window; construct a spec instead.)

The run loop itself lives in :class:`~repro.sim.session.SessionCore`:
:meth:`TraceDrivenSimulator.run` builds a stream plan, opens a core, and
advances it to completion.  The streaming session API (:mod:`repro.api`)
drives the identical core incrementally, which is why checkpointed and
uninterrupted runs are bit-identical.

Scaling (see DESIGN.md): with ``scale = s`` the simulator divides the
per-interval activation budget *and* every threshold (refresh + split)
by ``s`` while compressing the simulated interval to ``64 ms / s`` so the
physical arrival *rate* is preserved.  Refresh-event counts per interval
and rows per event are invariant under this transformation; the measured
stall ratio overstates ETO by exactly ``s`` and is corrected in
:class:`~repro.sim.metrics.RunTotals`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.base import MitigationScheme
from repro.core import make_scheme
from repro.dram.config import REFRESH_INTERVAL_S, SystemConfig
from repro.energy.cmrpo import compute_cmrpo
from repro.sim.metrics import SimulationResult
# _merge_streams stays importable from here (tests and older callers
# address it via this module); its implementation moved to the session
# core alongside the loop it serves.
from repro.sim.session import SessionCore
from repro.sim.session import merge_streams as _merge_streams  # noqa: F401
from repro.workloads.attacks import AttackKernel, attack_stream, get_kernel
from repro.workloads.suites import WorkloadSpec

__all__ = [
    "TraceDrivenSimulator",
    "scaled_threshold",
    "baseline_execution_time_ns",
]


def scaled_threshold(refresh_threshold: int, scale: float) -> int:
    """The simulation-scale refresh threshold (minimum 32)."""
    return max(32, int(round(refresh_threshold / scale)))


class TraceDrivenSimulator:
    """Run one experiment spec on a subset of banks."""

    def __init__(self, spec) -> None:
        from repro.experiments.spec import ExperimentSpec

        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                "TraceDrivenSimulator takes an "
                "repro.experiments.ExperimentSpec (the legacy "
                "(config, scheme_kind, **kwargs) form was removed); "
                "build one with ExperimentSpec(scheme=SchemeSpec.create"
                "(kind, ...), ...)"
            )
        self.spec = spec
        self.config = spec.resolve_system()
        self.scheme_spec = spec.scheme
        self.scheme_kind = spec.scheme.kind
        self.engine = spec.engine
        params = spec.scheme.params
        # Derived legacy attributes: schemes without the field fall back
        # to the historical cross-scheme defaults so downstream energy
        # accounting (compute_cmrpo) sees identical inputs.
        self.n_counters = getattr(params, "n_counters", 64)
        self.max_levels = getattr(params, "max_levels", 11)
        self.pra_probability = getattr(params, "probability", 0.002)
        self.threshold_strategy = getattr(params, "threshold_strategy", "auto")
        self.refresh_threshold = spec.refresh_threshold
        self.scale = spec.scale
        self.n_banks_simulated = min(spec.n_banks, self.config.n_banks)
        self.n_intervals = spec.n_intervals
        self.seed = spec.seed
        self.sim_threshold = scaled_threshold(spec.refresh_threshold,
                                              spec.scale)
        self.epoch_s = REFRESH_INTERVAL_S / spec.scale

    # -- scheme construction ------------------------------------------------

    def _scheme_factory(self) -> Callable[[int], MitigationScheme]:
        kind = self.scheme_kind
        params = self.scheme_spec.params
        sim_t = self.sim_threshold
        effective_scale = self.refresh_threshold / sim_t

        def factory(n_rows: int) -> MitigationScheme:
            if kind in ("prcat", "drcat"):
                scheme = make_scheme(
                    kind, n_rows, self.refresh_threshold, params=params
                )
                # Swap in the scaled schedule so tree dynamics replay at
                # simulation scale with identical shape.
                scaled = scheme.schedule.scaled(effective_scale)
                scheme.schedule = scaled
                scheme.tree.thresholds = scaled
                scheme.refresh_threshold = scaled.refresh_threshold
                scheme.tree.reset()
                return scheme
            return make_scheme(kind, n_rows, sim_t, params=params)

        return factory

    # -- stream preparation --------------------------------------------------

    def _interval_rows(
        self, workload: WorkloadSpec, bank: int, interval: int
    ) -> np.ndarray:
        """Row ids of one bank-interval, honouring the workload's phases.

        Phase boundaries fall *mid-interval* (at global fraction
        ``(k + 0.45) / phase_count``), never aligned with the 64 ms
        epochs: context switches and application phases are asynchronous
        with auto-refresh.  This is the temporal drift DRCAT's
        reconfiguration exists for — an epoch-aligned drift would let
        PRCAT adapt for free at its reset.
        """
        n_rows = self.config.rows_per_bank
        model = workload.stream_model(n_rows)
        n_accesses = max(1, int(round(workload.intensity / self.scale)))
        rng = workload.rng(salt=interval * 31 + bank * 977 + 5)
        segments = _phase_segments(interval, workload.phase_count)
        parts: list[np.ndarray] = []
        remaining = n_accesses
        for seg_index, (fraction, phase) in enumerate(segments):
            count = (
                remaining
                if seg_index == len(segments) - 1
                else int(round(n_accesses * fraction))
            )
            count = min(count, remaining)
            remaining -= count
            if count <= 0:
                continue
            layout = model.phase_layout(workload.rng(salt=phase * 7177 + bank))
            parts.append(model.sample(rng, count, layout))
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    # -- stream plans --------------------------------------------------------

    def stream_plan(
        self, workload: WorkloadSpec | None = None
    ) -> tuple[str, float, Callable[[int, int], np.ndarray]]:
        """The (label, full_intensity, rows_fn) triple this spec means.

        ``rows_fn(bank, interval)`` deterministically yields the row ids
        of one bank-interval; the triple fully describes the demand
        streams, so a spec alone reconstructs them — the property
        session snapshots rely on.  ``workload`` overrides the spec's
        workload model (used by :meth:`run`'s explicit-workload form).
        """
        if workload is None:
            if self.spec.kind == "attack":
                return self._attack_plan(
                    get_kernel(self.spec.attack_kernel),
                    self.spec.attack_mode,
                    self.spec.resolve_workload_model(),
                )
            workload = self.spec.resolve_workload_model()
        rows_fn = lambda bank, interval: self._interval_rows(  # noqa: E731
            workload, bank, interval
        )
        return workload.name, workload.intensity, rows_fn

    def _attack_plan(
        self, kernel: AttackKernel, mode: str, benign: WorkloadSpec
    ) -> tuple[str, float, Callable[[int, int], np.ndarray]]:
        """Stream plan of one attack-kernel mix (Figure 13)."""
        n_rows = self.config.rows_per_bank

        def rows_fn(bank: int, interval: int) -> np.ndarray:
            n_accesses = max(1, int(round(benign.intensity / self.scale)))
            rng = np.random.Generator(
                np.random.PCG64(kernel.seed * 39_916_801 + bank * 53 + interval)
            )
            return attack_stream(
                kernel, mode, n_rows, n_accesses, bank=bank, benign=benign, rng=rng
            )

        label = f"{kernel.name}:{mode}:{benign.name}"
        return label, benign.intensity, rows_fn

    def trace_key_doc(self, workload: WorkloadSpec | None = None) -> dict:
        """Stream identity of :meth:`stream_plan` for the trace store."""
        from repro.sim.tracestore import stream_key_doc

        return stream_key_doc(self, workload)

    # -- main loop -----------------------------------------------------------

    def open_core(self, workload: WorkloadSpec | None = None) -> SessionCore:
        """A fresh re-entrant core over this spec's streams."""
        return SessionCore(self, *self.stream_plan(workload),
                           trace_key_doc=self.trace_key_doc(workload))

    def run(self, workload: WorkloadSpec | None = None) -> SimulationResult:
        """Simulate the spec's experiment; return metrics at paper scale.

        ``workload`` overrides the spec's workload model; with no
        argument the spec decides, which for ``kind="attack"`` specs
        runs the attack mix.
        """
        core = self.open_core(workload)
        core.advance()
        return self._finalize(core.totals())

    def run_attack(
        self,
        kernel: AttackKernel,
        mode: str,
        benign: WorkloadSpec,
    ) -> SimulationResult:
        """Simulate an explicit attack-kernel mix (Figure 13).

        The kernel may be off-registry (unnameable in a spec), so this
        path opens its core without a trace key — always generating.
        """
        core = SessionCore(self, *self._attack_plan(kernel, mode, benign))
        core.advance()
        return self._finalize(core.totals())

    def _finalize(self, totals: RunTotals) -> SimulationResult:
        measured_fetch_nj_per_access = 0.0
        if self.scheme_kind == "ccache":
            # Following Figure 2 the CMRPO treats the cache optimistically
            # (no-miss); the measured counter-fetch energy is surfaced in
            # the result parameters (and in bench_counter_cache) instead.
            memory = getattr(self, "_last_memory", None)
            if memory is not None and totals.accesses:
                fetch_nj = sum(
                    s.miss_energy_nj()
                    for s in memory.schemes
                    if s is not None and hasattr(s, "miss_energy_nj")
                )
                measured_fetch_nj_per_access = fetch_nj / totals.accesses
        breakdown = compute_cmrpo(
            self.scheme_kind,
            accesses_per_interval=totals.full_scale_accesses_per_interval,
            victim_rows_per_interval=totals.rows_refreshed_per_bank_interval,
            n_counters=self.n_counters,
            refresh_threshold=self.refresh_threshold,
            max_levels=self.max_levels,
            pra_probability=(
                self.pra_probability if self.scheme_kind == "pra" else None
            ),
        )
        parameters = {
            "n_counters": self.n_counters,
            "max_levels": self.max_levels,
            "refresh_threshold": self.refresh_threshold,
            "scale": self.scale,
            "sim_threshold": self.sim_threshold,
            "config": self.config,
        }
        if self.scheme_kind == "pra":
            parameters["probability"] = self.pra_probability
        if self.scheme_kind == "ccache":
            parameters["fetch_nj_per_access"] = measured_fetch_nj_per_access
        return SimulationResult(
            totals=totals, cmrpo_breakdown=breakdown, parameters=parameters
        )


def _phase_segments(interval: int, phase_count: int) -> list[tuple[float, int]]:
    """Split one interval into (fraction, phase-id) segments.

    ``phase_count`` is the number of hot-set relocations per 64 ms
    interval (context switches / application phases are much shorter
    than the refresh epoch).  Boundaries fall at local fractions
    ``(k + 0.45) / phase_count`` — deliberately *not* aligned with the
    epoch edges where PRCAT resets.  Each segment gets a globally unique
    phase id so its hot-set layout is fresh.
    """
    if phase_count <= 1:
        return [(1.0, 0)]
    edges = [0.0] + [
        (k + 0.45) / phase_count for k in range(phase_count)
    ] + [1.0]
    segments: list[tuple[float, int]] = []
    for k, (a, b) in enumerate(zip(edges, edges[1:])):
        if b <= a:
            continue
        # Continuous numbering across epochs: the trailing segment of
        # interval i and the leading segment of interval i+1 share one
        # phase id, so no hot-set move ever coincides with an epoch edge.
        phase_id = interval * phase_count + k
        segments.append((b - a, phase_id))
    return segments


def baseline_execution_time_ns(
    config: SystemConfig, n_accesses: int, duration_ns: float
) -> float:
    """Unprotected execution time for an interval (ETO denominator).

    Under the busy-horizon bank model the demand stream itself completes
    at ``duration_ns`` plus at most the one row cycle still in flight at
    the interval's end, so the denominator is the simulated duration —
    which is how :class:`RunTotals` computes ETO.  Exposed for tests
    that validate this assumption.
    """
    if n_accesses <= 0:
        return duration_ns
    return duration_ns + config.timings.t_rc
