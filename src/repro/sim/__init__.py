"""Simulation harness: re-entrant core, trace-driven simulator, metrics,
sweep runner."""

from repro.sim.engine import (
    ENGINES,
    TIME_QUANTUM_NS,
    advance_batched_streams,
    quantize_times_ns,
    run_batched,
)
from repro.sim.metrics import (
    RunTotals,
    SimulationResult,
    format_table,
    mean_over,
)
from repro.sim.replay import ReplayResult, replay_trace, synthesize_trace
from repro.sim.runner import (
    simulate_attack,
    simulate_workload,
    suite_means,
    sweep,
)
from repro.sim.session import SessionCore, merge_streams
from repro.sim.simulator import TraceDrivenSimulator, scaled_threshold

__all__ = [
    "ENGINES",
    "TIME_QUANTUM_NS",
    "quantize_times_ns",
    "run_batched",
    "advance_batched_streams",
    "RunTotals",
    "SimulationResult",
    "format_table",
    "mean_over",
    "simulate_attack",
    "simulate_workload",
    "suite_means",
    "sweep",
    "SessionCore",
    "merge_streams",
    "TraceDrivenSimulator",
    "scaled_threshold",
    "ReplayResult",
    "replay_trace",
    "synthesize_trace",
]
