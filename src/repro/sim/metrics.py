"""Result records and metric derivation for trace-driven runs.

A simulation run produces raw per-bank activity totals; this module
turns them into the paper's two headline metrics:

* **CMRPO** — computed by :mod:`repro.energy.cmrpo` from full-scale
  per-interval access and victim-refresh counts;
* **ETO** — the fraction of execution time demand requests spent stalled
  behind mitigation refreshes, corrected for the simulation's time-axis
  compression (see DESIGN.md, "Scale factor").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.dram.config import DRAMTimings, SystemConfig
from repro.energy.cmrpo import CMRPOBreakdown


def _encode_param(value):
    """JSON-safe form of one run parameter (system configs are tagged)."""
    if isinstance(value, SystemConfig):
        return {"__type__": "SystemConfig", **asdict(value)}
    return value


def _decode_param(value):
    """Inverse of :func:`_encode_param`."""
    if isinstance(value, dict) and value.get("__type__") == "SystemConfig":
        doc = {k: v for k, v in value.items() if k != "__type__"}
        if isinstance(doc.get("timings"), dict):
            doc["timings"] = DRAMTimings(**doc["timings"])
        return SystemConfig(**doc)
    return value


@dataclass(frozen=True)
class RunTotals:
    """Raw, simulation-scale totals collected by one run."""

    scheme: str
    workload: str
    scale: float
    n_banks_simulated: int
    n_intervals: int
    accesses: int
    refresh_commands: int
    rows_refreshed: int
    stall_ns: float
    elapsed_ns: float
    mitigation_busy_ns: float
    #: activations per simulated bank per interval, at full (paper) scale
    full_scale_accesses_per_interval: float

    @property
    def rows_refreshed_per_bank_interval(self) -> float:
        """Victim rows per bank per interval (scale-invariant)."""
        denom = self.n_banks_simulated * self.n_intervals
        return self.rows_refreshed / denom if denom else 0.0

    @property
    def eto(self) -> float:
        """Execution-time overhead (fraction).

        The simulated interval is compressed by ``scale`` while the
        per-event stall magnitudes are physical, so the raw stall ratio
        overstates ETO by exactly ``scale``; divide it back out.
        """
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.stall_ns / self.elapsed_ns) / self.scale

    def to_dict(self) -> dict:
        """JSON-ready raw-field form (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "RunTotals":
        """Rebuild totals serialized by :meth:`to_dict`."""
        return cls(**doc)


@dataclass(frozen=True)
class SimulationResult:
    """One (workload, scheme, config) experiment outcome."""

    totals: RunTotals
    cmrpo_breakdown: CMRPOBreakdown
    parameters: dict[str, object] = field(default_factory=dict)

    @property
    def cmrpo(self) -> float:
        """Crosstalk mitigation refresh power overhead (fraction)."""
        return self.cmrpo_breakdown.cmrpo

    @property
    def eto(self) -> float:
        """Execution time overhead (fraction)."""
        return self.totals.eto

    @property
    def scheme(self) -> str:
        """Scheme kind this result was measured for."""
        return self.totals.scheme

    @property
    def workload(self) -> str:
        """Workload label this result was measured on."""
        return self.totals.workload

    def to_dict(self) -> dict:
        """JSON-ready nested form: raw totals, the CMRPO breakdown, and
        the run parameters — everything :meth:`from_dict` needs to
        rebuild the result (derived metrics recompute from the raw
        fields, so nothing lossy is stored)."""
        return {
            "totals": self.totals.to_dict(),
            "cmrpo_breakdown": self.cmrpo_breakdown.to_dict(),
            "parameters": {
                k: _encode_param(v) for k, v in self.parameters.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SimulationResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        return cls(
            totals=RunTotals.from_dict(doc["totals"]),
            cmrpo_breakdown=CMRPOBreakdown.from_dict(doc["cmrpo_breakdown"]),
            parameters={
                k: _decode_param(v)
                for k, v in doc.get("parameters", {}).items()
            },
        )

    def summary(self) -> dict[str, float | str]:
        """Flat record suitable for table printing."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "cmrpo_pct": 100.0 * self.cmrpo,
            "eto_pct": 100.0 * self.eto,
            "dynamic_mw": self.cmrpo_breakdown.dynamic_mw,
            "static_mw": self.cmrpo_breakdown.static_mw,
            "refresh_mw": self.cmrpo_breakdown.refresh_mw,
            "rows_per_interval": self.totals.rows_refreshed_per_bank_interval,
        }


def mean_over(results: list[SimulationResult], attr: str) -> float:
    """Arithmetic mean of ``attr`` (``"cmrpo"`` or ``"eto"``) over runs."""
    if not results:
        raise ValueError("no results to average")
    return sum(getattr(r, attr) for r in results) / len(results)


def format_table(rows: list[dict[str, object]], columns: list[str]) -> str:
    """Plain-text table used by benches to print paper-style rows."""
    widths = {c: len(c) for c in columns}
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "  ".join("-" * widths[c] for c in columns)]
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)
