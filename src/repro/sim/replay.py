"""End-to-end trace replay: USIMM-style traces through the full stack.

The figure benchmarks drive the banks with pre-timed synthetic row
streams for speed; this module provides the *full* pipeline for users
with real traces (or for generating trace files from the workload
models):

    TraceRecord list
      -> ROBFrontEnd          (cycle gaps -> issue timestamps)
      -> AddressMapper        (physical address -> channel/rank/bank/row)
      -> MemoryController     (closed-page FR-FCFS, coalescing)
      -> per-bank MitigationScheme

:func:`replay_trace` returns per-bank refresh and stall totals plus the
scheme stats; :func:`synthesize_trace` converts a workload model into a
multi-bank MSC-style trace so the two input paths are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import make_scheme
from repro.core.base import MitigationScheme
from repro.cpu.rob import ROBFrontEnd
from repro.cpu.trace import TraceRecord
from repro.dram.address import AddressMapper
from repro.dram.config import SystemConfig
from repro.dram.controller import MemoryController, MemRequest
from repro.workloads.suites import WorkloadSpec


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a full-pipeline trace replay."""

    requests: int
    activations: int
    refresh_commands: int
    rows_refreshed: int
    stall_ns: float
    execution_time_ns: float
    scheme_stats: dict[str, int]

    @property
    def eto(self) -> float:
        """Mitigation-induced stall as a fraction of execution time."""
        if self.execution_time_ns <= 0:
            return 0.0
        return self.stall_ns / self.execution_time_ns


def replay_trace(
    records: list[TraceRecord],
    config: SystemConfig,
    scheme: str = "drcat",
    *,
    counters: int = 64,
    max_levels: int = 11,
    refresh_threshold: int = 32768,
    pra_probability: float = 0.002,
) -> ReplayResult:
    """Run a trace through front end, mapping, controller and scheme."""
    mapper = AddressMapper(config)
    front_end = ROBFrontEnd(config)
    schemes: list[MitigationScheme | None] = [
        make_scheme(
            scheme,
            config.rows_per_bank,
            refresh_threshold,
            n_counters=counters,
            max_levels=max_levels,
            probability=pra_probability,
        )
        for _ in range(config.n_banks)
    ]
    controller = MemoryController(config, schemes)

    timed = front_end.schedule(records)
    for i, access in enumerate(timed):
        decoded = mapper.decode(access.address)
        controller.enqueue(
            MemRequest(
                arrival_ns=access.time_ns,
                bank=decoded.flat_bank(config),
                row=decoded.row,
                is_write=access.is_write,
                request_id=i,
            )
        )
    completed = controller.drain()

    stall_ns = sum(b.stall_ns for b in controller.banks)
    rows = sum(b.rows_refreshed for b in controller.banks)
    merged: dict[str, int] = {}
    refresh_commands = 0
    activations = 0
    for s in schemes:
        if s is None:
            continue
        refresh_commands += s.stats.refresh_commands
        activations += s.stats.activations
        for key, value in s.stats.snapshot().items():
            merged[key] = merged.get(key, 0) + value
    exec_time = max((c.done_ns for c in completed), default=0.0)
    return ReplayResult(
        requests=len(records),
        activations=activations,
        refresh_commands=refresh_commands,
        rows_refreshed=rows,
        stall_ns=stall_ns,
        execution_time_ns=exec_time,
        scheme_stats=merged,
    )


def synthesize_trace(
    workload: WorkloadSpec,
    config: SystemConfig,
    n_records: int,
    *,
    mean_gap_cycles: int = 40,
    banks: int | None = None,
    seed: int = 0,
) -> list[TraceRecord]:
    """Generate an MSC-style trace file content from a workload model.

    Rows follow the workload's stream model (independent streams per
    bank); accesses round-robin over ``banks`` banks with geometric
    cycle gaps around ``mean_gap_cycles``.
    """
    if n_records <= 0:
        return []
    n_banks = banks if banks is not None else min(4, config.n_banks)
    mapper = AddressMapper(config)
    model = workload.stream_model(config.rows_per_bank)
    rng = np.random.Generator(np.random.PCG64(workload.seed * 31 + seed))
    per_bank = n_records // n_banks + 1
    bank_rows = []
    for bank in range(n_banks):
        layout = model.phase_layout(workload.rng(salt=bank))
        bank_rows.append(model.sample(rng, per_bank, layout))
    gaps = rng.geometric(1.0 / max(1, mean_gap_cycles), size=n_records)
    records = []
    ranks = config.ranks_per_channel
    banks_per_rank = config.banks_per_rank
    for i in range(n_records):
        flat = i % n_banks
        channel = flat // (ranks * banks_per_rank)
        rank = (flat // banks_per_rank) % ranks
        bank = flat % banks_per_rank
        row = int(bank_rows[flat][i // n_banks])
        address = mapper.encode(channel, rank, bank, row, column=0)
        op = "R" if rng.random() < workload.read_fraction else "W"
        records.append(TraceRecord(int(gaps[i]), op, address))
    return records
