"""Content-addressed activation-trace store: generate once, mmap everywhere.

Stream *generation* — drawing each bank-interval's row ids and Poisson
arrival times — is a pure function of a small set of spec fields (the
workload model, attack mix, seed, scale, bank count and bank geometry)
and is completely independent of the mitigation scheme, the refresh
threshold, and the engine.  A scheme-axis figure grid therefore re-runs
the *identical* generation pass for every one of its N cells.  This
module de-duplicates that work:

* Every unique stream is identified by a **stream key**: the SHA-256 of
  the canonical JSON of its generation-relevant fields
  (:func:`stream_key_doc`).  Scheme, threshold and engine are excluded
  by construction, so all cells of a scheme/threshold axis share one
  key — and so do the batched and scalar engines.
* Each generated interval persists as a memory-mapped ``.npy`` pair
  (all banks' quantized arrival times concatenated, likewise the row
  ids) plus a small JSON sidecar carrying the per-bank offsets, the
  full key document (hash-collision guard), and the arrival RNG's
  **post-generation state**.  Consumers receive zero-copy views of the
  memmaps; across processes the OS page cache backs them all with one
  physical copy.
* Entries live under a ``CACHE_VERSION + code-fingerprint`` partition —
  the exact salt the sweep-cell :class:`~repro.experiments.cache.ResultCache`
  uses — so *any* edit under ``src/repro`` automatically invalidates
  every stored stream.  A stale stream can never leak into new numerics.

**Exactness.**  A stored interval is the byte-exact array the generator
produced (float64 quarter-ns grid times, int64 rows), so serving it back
cannot change any result.  The one subtlety is the arrival RNG: the
historical loop consumes it sequentially (per bank, in bank order, per
interval), so skipping generation must still leave the generator where
generation would have left it — which is why each entry records the
post-generation ``bit_generator`` state and a store hit *restores* it.
The RNG state before interval ``k`` is itself a pure function of the
stream key (intervals are always consumed in order), so the recorded
chain is consistent no matter which process wrote which interval.

**Robustness.**  A truncated, corrupt, or colliding entry is detected
(meta/array shape, dtype and key-document checks; ``np.load`` failures)
and treated as a miss — the stream regenerates and the entry is
rewritten.  Writes are atomic (`tempfile` + ``os.replace``), with the
meta sidecar written last so its presence implies complete arrays.  An
unwritable store degrades to a no-op, never an error.

``REPRO_TRACE_STORE=0`` disables the store entirely;
``REPRO_TRACE_STORE_DIR`` overrides its location (default: ``traces/``
inside the sweep-cell result-cache directory, so CI cache keys covering
the result cache cover the streams too).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.cache import CACHE_VERSION, code_fingerprint
from repro.report.config import env_bool
from repro.testing.faults import corrupting, fault_point

#: On-disk entry layout version (bump on incompatible changes; part of
#: every stream key, so old entries simply stop matching).
STORE_VERSION = 1

#: Per-process cap on memoized entries (views of the memmaps — the
#: resident cost is page cache, not heap); grids touch few distinct
#: streams, so a small bound suffices.
RAM_CACHE_ENTRIES = 64


def default_root() -> Path:
    """Where trace entries live when ``REPRO_TRACE_STORE_DIR`` is unset.

    Prefers a ``traces/`` subdirectory of the sweep-cell result-cache
    location (env override, then the in-repo default), so one CI cache
    path covers both stores; falls back to a per-user temp directory
    for installed-package use.
    """
    override = os.environ.get("REPRO_TRACE_STORE_DIR")
    if override:
        return Path(override)
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if cache_dir:
        return Path(cache_dir) / "traces"
    from repro.report.verify import default_benchmarks_dir

    bench_dir = default_benchmarks_dir()
    if bench_dir is not None:
        return bench_dir / "results" / "sweep_cache" / "traces"
    # Per-user temp fallback: a world-shared path would let another
    # local user pre-plant entries or squat the directory.
    getuid = getattr(os, "getuid", None)
    owner = str(getuid()) if getuid else os.environ.get("USERNAME", "user")
    return Path(tempfile.gettempdir()) / f"repro-trace-store-{owner}"


def store_enabled() -> bool:
    """The validated ``REPRO_TRACE_STORE`` toggle (default on)."""
    return env_bool(os.environ, "REPRO_TRACE_STORE", default=True)


#: Per-process singletons keyed by resolved root, so every SessionCore
#: pointing at one root shares one in-process entry cache.
_STORES: dict[str, "TraceStore"] = {}


def open_store() -> "TraceStore | None":
    """The environment-selected store, or None when disabled."""
    if not store_enabled():
        return None
    root = default_root()
    key = str(root)
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = TraceStore(root)
    return store


def stream_key_doc(sim, workload=None) -> dict:
    """The generation-relevant identity of one simulator's streams.

    ``workload`` overrides the spec's workload model (mirroring
    :meth:`TraceDrivenSimulator.stream_plan
    <repro.sim.simulator.TraceDrivenSimulator.stream_plan>`).  Scheme,
    refresh threshold and engine are deliberately absent — they cannot
    influence generation — and so is ``n_intervals``: interval ``k``'s
    content (and RNG chain) does not depend on how many intervals
    follow it, so runs of different lengths share entries.
    """
    from dataclasses import asdict

    spec = sim.spec
    doc: dict = {
        "store_version": STORE_VERSION,
        "kind": "workload",
        "rows_per_bank": sim.config.rows_per_bank,
        "scale": spec.scale,
        "n_banks": sim.n_banks_simulated,
        "seed": sim.seed,
    }
    if workload is None and spec.kind == "attack":
        doc["kind"] = "attack"
        doc["attack"] = {
            "kernel": spec.attack_kernel,
            "mode": spec.attack_mode,
        }
        workload = spec.resolve_workload_model()
    elif workload is None:
        workload = spec.resolve_workload_model()
    doc["workload"] = asdict(workload)
    return doc


def stream_key(doc: dict) -> str:
    """Stable 16-hex-digit digest of a :func:`stream_key_doc`."""
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class TraceStore:
    """Filesystem-backed, memory-mapped (stream key, interval) → streams.

    One entry holds every bank's quantized ``(times, rows)`` arrays of
    one refresh interval, concatenated, plus the per-bank offsets and
    the arrival RNG's post-generation state.  :meth:`get` returns
    zero-copy read-only views; :meth:`put` is atomic and concurrent-
    writer safe (identical bytes, last rename wins).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root) / f"{CACHE_VERSION}-{code_fingerprint()}"
        self.hits = 0
        self.misses = 0
        #: (key, interval) → (per_bank, rng_after, key_doc); the key
        #: document rides along so even RAM hits collision-check.
        self._ram: dict[tuple[str, int], tuple[list, dict, dict]] = {}

    # -- paths -----------------------------------------------------------

    def _times_path(self, key: str, interval: int) -> Path:
        return self.root / f"{key}-i{interval}.times.npy"

    def _rows_path(self, key: str, interval: int) -> Path:
        return self.root / f"{key}-i{interval}.rows.npy"

    def _meta_path(self, key: str, interval: int) -> Path:
        return self.root / f"{key}-i{interval}.meta.json"

    # -- read ------------------------------------------------------------

    def get(self, key: str, key_doc: dict, interval: int, n_banks: int):
        """Stored ``(per_bank, rng_state_after)`` for one interval, or None.

        ``per_bank`` is a list of ``n_banks`` read-only ``(times, rows)``
        memmap views.  Any inconsistency — missing files, truncated
        arrays, wrong dtype/shape, an offsets/array mismatch, or a key
        document that does not match ``key_doc`` (hash collision or
        hand-edited entry) — drops the entry and reports a miss.
        """
        fault_point("tracestore.read")
        cached = self._ram.get((key, interval))
        if cached is not None:
            per_bank, rng_state, cached_doc = cached
            if cached_doc == key_doc:
                self.hits += 1
                return per_bank, rng_state
            # In-process hash collision: fall through to the disk path,
            # which re-validates and drops the entry.
            self._ram.pop((key, interval), None)
        meta_path = self._meta_path(key, interval)
        try:
            # The injected ``corrupt`` fault garbles the loaded sidecar
            # exactly like a torn concurrent read would; the checks
            # below must degrade it to a regenerating miss.
            meta = json.loads(
                corrupting("tracestore.read",
                           meta_path.read_text(encoding="utf-8"))
            )
            if meta["key"] != key_doc:
                raise ValueError("trace entry key mismatch")
            offsets = meta["offsets"]
            rng_state = meta["rng_after"]
            if (
                len(offsets) != n_banks + 1
                or offsets[0] != 0
                or any(not isinstance(o, int) for o in offsets)
                or any(a > b for a, b in zip(offsets, offsets[1:]))
            ):
                # Non-monotonic offsets would silently mis-split the
                # per-bank streams (numpy slicing clamps instead of
                # raising) — corrupt, not merely odd.
                raise ValueError("trace entry bank layout mismatch")
            if (
                not isinstance(rng_state, dict)
                or rng_state.get("bit_generator") != "PCG64"
                or not isinstance(rng_state.get("state"), dict)
            ):
                raise ValueError("trace entry RNG state mismatch")
            times = np.load(self._times_path(key, interval), mmap_mode="r")
            rows = np.load(self._rows_path(key, interval), mmap_mode="r")
            total = int(offsets[-1])
            if (
                times.dtype != np.float64
                or rows.dtype != np.int64
                or times.shape != (total,)
                or rows.shape != (total,)
            ):
                raise ValueError("trace entry array mismatch")
            per_bank = [
                (times[offsets[b]:offsets[b + 1]],
                 rows[offsets[b]:offsets[b + 1]])
                for b in range(n_banks)
            ]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt, truncated, or colliding entry: drop and recompute.
            self.drop(key, interval)
            self.misses += 1
            return None
        self.hits += 1
        self._remember(key, interval, (per_bank, rng_state, key_doc))
        return per_bank, rng_state

    # -- write -----------------------------------------------------------

    def put(
        self,
        key: str,
        key_doc: dict,
        interval: int,
        per_bank: list,
        rng_state_after: dict,
    ) -> None:
        """Persist one freshly generated interval (atomic, best-effort).

        Array files are written before the meta sidecar, so a readable
        meta implies complete arrays.  An unwritable store (read-only
        CI cache, full disk) is silently a no-op — the store is an
        optimization, never a requirement.
        """
        fault_point("tracestore.write")
        offsets = [0]
        for times, _ in per_bank:
            offsets.append(offsets[-1] + len(times))
        all_times = (
            np.concatenate([t for t, _ in per_bank])
            if per_bank else np.empty(0, dtype=np.float64)
        )
        all_rows = (
            np.concatenate(
                [r.astype(np.int64, copy=False) for _, r in per_bank]
            )
            if per_bank else np.empty(0, dtype=np.int64)
        )
        meta = {
            "key": key_doc,
            "offsets": offsets,
            "rng_after": rng_state_after,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._write_npy(self._times_path(key, interval),
                            all_times.astype(np.float64, copy=False))
            self._write_npy(self._rows_path(key, interval), all_rows)
            self._write_text(self._meta_path(key, interval),
                             corrupting("tracestore.write",
                                        json.dumps(meta)))
        except OSError:
            return
        self._remember(key, interval,
                       (per_bank, rng_state_after, key_doc))

    def _write_npy(self, path: Path, array: np.ndarray) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem,
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, array)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write_text(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem,
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _remember(self, key: str, interval: int, entry) -> None:
        if len(self._ram) >= RAM_CACHE_ENTRIES:
            # Grids revisit a handful of streams many times; dropping
            # the oldest insertion is plenty (no LRU bookkeeping).
            self._ram.pop(next(iter(self._ram)))
        self._ram[(key, interval)] = entry

    # -- maintenance -----------------------------------------------------

    def drop(self, key: str, interval: int) -> None:
        """Remove one entry's files (best-effort) and forget it."""
        self._ram.pop((key, interval), None)
        for path in (
            self._meta_path(key, interval),
            self._times_path(key, interval),
            self._rows_path(key, interval),
        ):
            try:
                path.unlink()
            except OSError:
                pass

    def stats(self) -> dict:
        """Entry count and byte footprint of the active partition."""
        entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.name.endswith(".meta.json"):
                    entries += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete the active partition; returns entries removed."""
        removed = self.stats()["entries"]
        self._ram.clear()
        shutil.rmtree(self.root, ignore_errors=True)
        return removed
