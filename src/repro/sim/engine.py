"""The batched (vectorized) simulation engine.

:func:`run_batched` drives a :class:`~repro.dram.memory_system.MemorySystem`
through a merged ``(time, bank, row)`` activation stream exactly as the
scalar loop ``for t, b, r: memory.access(t, b, r)`` would — same refresh
commands at the same stream positions, same bank stall accounting, same
scheme statistics — but in numpy chunks instead of per-event Python.

Exactness rests on three facts (argued in DESIGN.md, "Batched engine"):

1. **Scheme events are rare and localized.**  Between threshold
   crossings a counting scheme is a pure per-counter accumulator, so
   event-free stretches vectorize (``MitigationScheme.access_batch``),
   and each event replays through the scalar oracle.
2. **Banks only couple through epoch boundaries.**  Within one epoch
   segment each bank's (scheme, timing) evolution depends only on its
   own sub-stream, so banks process independently; the only global
   state, ``last_completion_ns``, is a running max and commutes.
3. **Quantized time makes float arithmetic exact.**  All arrival times
   are floored to the quarter-nanosecond grid (:data:`TIME_QUANTUM_NS`),
   on which every timing expression is exactly representable in
   float64; vectorized re-association therefore changes nothing.
"""

from __future__ import annotations

import numpy as np

from repro.dram.memory_system import MemorySystem

#: Simulation time quantum (ns).  1/4 ns is a negative power of two, so
#: every multiple is exactly representable in float64 — as are all the
#: DDR3 timing constants (multiples of 1.25 ns = 5 quanta).
TIME_QUANTUM_NS = 0.25

#: Engines selectable on the simulator / runner / CLI.  ``scalar`` is
#: the per-event reference loop, ``batched`` the vectorized numpy path,
#: and ``jit`` the compiled tier (:mod:`repro.core.jitkern`): the same
#: segment structure with each scheme's ``access_batch`` replaced by its
#: ``access_batch_jit`` kernel driver.  All three are contractually
#: bit-identical.
ENGINES = ("scalar", "batched", "jit")


def quantize_times_ns(times: np.ndarray) -> np.ndarray:
    """Floor timestamps to the quarter-nanosecond simulation grid.

    ``t * 4`` and ``x * 0.25`` are exact float64 operations (powers of
    two only shift the exponent), so the result is the largest grid
    point ``<= t`` with no rounding anywhere.
    """
    return np.floor(times * 4.0) * TIME_QUANTUM_NS


def run_batched(
    memory: MemorySystem,
    times: np.ndarray,
    banks: np.ndarray,
    rows: np.ndarray,
) -> None:
    """Drive ``memory`` through a merged stream, bit-exactly, in chunks.

    ``times`` must be sorted (quarter-ns grid), ``banks``/``rows`` int64.
    Equivalent to ``for t, b, r in zip(...): memory.access(t, b, r)``.
    """
    n = len(times)
    start = 0
    while start < n:
        # The scalar loop advances epochs *before* serving the first
        # access at/after each boundary; segment the stream accordingly.
        boundary = memory._next_epoch_ns
        end = start + int(np.searchsorted(times[start:], boundary, side="left"))
        if end == start:
            memory._advance_epochs(float(times[start]))
            continue
        # Group the chunk by bank with one stable argsort: equal keys
        # keep their (time-sorted) order, so each bank's gathered
        # sub-stream is exactly the per-bank mask of before — without a
        # full-chunk boolean scan per present bank.
        segment_banks = banks[start:end]
        order = np.argsort(segment_banks, kind="stable")
        grouped = segment_banks[order]
        present = np.unique(grouped)
        starts = np.searchsorted(grouped, present, side="left")
        ends = np.append(starts[1:], len(grouped))
        seg_times = times[start:end]
        seg_rows = rows[start:end]
        for bank, lo, hi in zip(
            present.tolist(), starts.tolist(), ends.tolist()
        ):
            picks = order[lo:hi]
            _run_bank_segment(
                memory, bank, seg_times[picks], seg_rows[picks]
            )
        start = end


def run_batched_streams(
    memory: MemorySystem,
    streams: list[tuple[np.ndarray, np.ndarray]],
) -> None:
    """Drive ``memory`` through per-bank (times, rows) streams.

    Equivalent to merging the streams in global time order and calling
    :func:`run_batched` — the merged order only ever mattered for epoch
    advancement, and epochs advance here between segments exactly as
    the first crossing access would trigger them — but skips the merge
    sort and the per-bank re-extraction entirely.  ``streams[bank]``
    holds that bank's sorted (quarter-ns grid) arrival times and rows.
    """
    advance_batched_streams(memory, streams, [0] * len(streams))


def advance_batched_streams(
    memory: MemorySystem,
    streams: list[tuple[np.ndarray, np.ndarray]],
    cursors: list[int],
    *,
    until_ns: float | None = None,
    max_accesses: int | None = None,
    jit: bool = False,
) -> int:
    """Re-entrant core of :func:`run_batched_streams`.

    Serves stream accesses starting from the per-bank ``cursors``
    (mutated in place) until the streams are exhausted, until the next
    pending access would arrive at or after ``until_ns``, or until
    ``max_accesses`` accesses have been served — whichever comes first.
    Returns the number of accesses served.

    Pausing and resuming at *any* cut leaves the final state
    bit-identical to an uninterrupted run: within one epoch segment the
    banks are independent (the only shared state, the running
    completion max and the aggregate totals, commutes), and an epoch
    boundary is only crossed here when the next access to be served
    lies beyond it — exactly when the scalar loop would cross it.  The
    session layer (:mod:`repro.api`) is built on this property.

    ``jit=True`` selects the compiled tier: bank segments dispatch to
    each scheme's ``access_batch_jit`` instead of ``access_batch``.
    Everything else — segmentation, epoch crossing, limits — is shared,
    which is precisely why the tiers stay bit-identical.
    """
    served = 0
    while True:
        boundary = memory._next_epoch_ns
        next_time: float | None = None
        for bank, (times, rows) in enumerate(streams):
            i = cursors[bank]
            if i >= len(times):
                continue
            j = i + int(np.searchsorted(times[i:], boundary, side="left"))
            if until_ns is not None and until_ns < boundary:
                j = min(
                    j,
                    i + int(np.searchsorted(times[i:], until_ns, side="left")),
                )
            if max_accesses is not None:
                j = min(j, i + (max_accesses - served))
            if j > i:
                _run_bank_segment(
                    memory, bank, times[i:j], rows[i:j], jit=jit
                )
                cursors[bank] = j
                served += j - i
            if j < len(times) and (next_time is None or times[j] < next_time):
                next_time = float(times[j])
        if next_time is None:
            return served
        if max_accesses is not None and served >= max_accesses:
            return served
        if until_ns is not None and next_time >= until_ns:
            return served
        # The next pending access lies beyond the epoch boundary; cross
        # it exactly as serving that access would.
        memory._advance_epochs(next_time)


def _run_bank_segment(
    memory: MemorySystem,
    bank: int,
    times: np.ndarray,
    rows: np.ndarray,
    *,
    jit: bool = False,
) -> None:
    """Process one bank's accesses of one epoch segment."""
    bank_state = memory.banks[bank]
    scheme = memory.schemes[bank]
    if scheme is None:
        events: list = []
    elif jit:
        events = scheme.access_batch_jit(rows)
    else:
        events = scheme.access_batch(rows)
    prev = 0
    for position, commands in events:
        bank_state.serve_accesses_batch(times[prev:position])
        done = bank_state.serve_access(float(times[position]))
        for cmd in commands:
            memory.apply_refresh(bank_state, done, cmd, bank=bank)
        prev = position + 1
    bank_state.serve_accesses_batch(times[prev:])
    memory.last_completion_ns = max(
        memory.last_completion_ns, bank_state.free_at_ns
    )
