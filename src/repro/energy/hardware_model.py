"""Hardware energy/area model (Table II of the paper).

The paper synthesised Verilog control logic (Synopsys DC / PrimeTime,
45 nm FreePDK) plus CACTI SRAM models, and reports per-configuration
dynamic energy (nJ per row access), static energy (nJ per 64 ms refresh
interval) and area (mm²) for DRCAT, PRCAT and SCA with 32-512 counters
per bank — plus the TRNG used by PRA.  We embed those numbers as
calibration anchors and expose a smooth model:

* between the tabulated M values, energies/areas interpolate log-linearly
  in M (the table is close to a power law in M);
* different refresh thresholds scale SRAM quantities with the counter
  width ``log2(T)`` (a counter is a ``log2(T)``-bit word, DRCAT adds the
  2-bit weight register);
* different maximum depths L scale the CAT *dynamic* energy with the
  expected number of serial SRAM accesses per lookup,
  ``2 .. L - log2(M/4)`` (Section VII-A).

The anchors are measured at T = 32K and L = 11; scaling is therefore the
identity at those points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Table II anchor: counters per bank (columns of the table).
TABLE2_M = (32, 64, 128, 256, 512)

#: Table II anchor rows at T=32K, L=11: {scheme: (dynamic nJ/access,
#: static nJ/interval, area mm²) per M}.
TABLE2: dict[str, dict[str, tuple[float, ...]]] = {
    "drcat": {
        "dynamic": (3.05e-4, 4.30e-4, 5.83e-4, 8.72e-4, 1.17e-3),
        "static": (5.77e3, 1.39e4, 2.77e4, 5.44e4, 1.06e5),
        "area": (3.16e-2, 6.12e-2, 1.16e-1, 2.23e-1, 3.93e-1),
    },
    "prcat": {
        "dynamic": (2.91e-4, 4.09e-4, 5.50e-4, 8.25e-4, 1.10e-3),
        "static": (5.55e3, 1.32e4, 2.63e4, 5.13e4, 1.02e5),
        "area": (3.04e-2, 5.86e-2, 1.11e-1, 2.11e-1, 3.75e-1),
    },
    "sca": {
        "dynamic": (1.41e-4, 1.92e-4, 2.22e-4, 3.12e-4, 4.25e-4),
        "static": (3.16e3, 8.81e3, 1.44e4, 2.39e4, 4.52e4),
        "area": (1.86e-2, 4.04e-2, 6.04e-2, 1.00e-1, 1.72e-1),
    },
}

#: Reference threshold / depth at which Table II was characterised.
TABLE2_T = 32768
TABLE2_L = 11

#: PRNG specification for PRA (Table II, from the 45 nm TRNG of [25]).
PRNG_AREA_MM2 = 4.004e-3
PRNG_THROUGHPUT_GBPS = 2.4
PRNG_POWER_MW = 7.0
PRNG_ENERGY_PER_BIT_NJ = 2.90e-3
#: Energy to draw the 9 bits PRA consumes per row access.
PRNG_ENERGY_PER_ACCESS_NJ = 2.625e-2

#: Scheme logic latencies reported in Section VII-A (ns).
PRCAT_LATENCY_NS = 3.6
DRCAT_LATENCY_NS = 4.0
DRCAT_RECONFIG_LATENCY_NS = 7.5

#: The counter-cache comparison point of [26]: a 32KB on-chip cache
#: equivalent to 2048 counters per bank.
COUNTER_CACHE_EQUIVALENT_COUNTERS = 2048


def _loglog_interp(m: int, anchors_m: tuple[int, ...], values: tuple[float, ...]) -> float:
    """Power-law interpolation/extrapolation through tabulated anchors."""
    if m <= 0:
        raise ValueError("M must be positive")
    xs = [math.log2(a) for a in anchors_m]
    ys = [math.log2(v) for v in values]
    x = math.log2(m)
    if x <= xs[0]:
        i = 0
    elif x >= xs[-1]:
        i = len(xs) - 2
    else:
        i = max(j for j in range(len(xs) - 1) if xs[j] <= x)
    slope = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])
    return 2.0 ** (ys[i] + slope * (x - xs[i]))


def _cat_mean_sram_accesses(m: int, max_levels: int) -> float:
    """Expected serial SRAM reads per CAT lookup.

    Section VII-A: with the λ = log2(M) pre-split the traversal needs
    between 2 and ``L - log2(M/4)`` accesses; we model the mean as the
    midpoint, floored at 2.
    """
    worst = max(2.0, max_levels - math.log2(max(1, m // 4)))
    return (2.0 + worst) / 2.0


@dataclass(frozen=True)
class SchemeHardware:
    """Energy/area/latency of one scheme configuration (per bank)."""

    scheme: str
    n_counters: int
    refresh_threshold: int
    max_levels: int
    dynamic_nj_per_access: float
    static_nj_per_interval: float
    area_mm2: float
    latency_ns: float

    @property
    def counter_bits(self) -> int:
        """Width of one counter in bits (log2 T, +2 weight bits for DRCAT)."""
        bits = max(1, int(math.ceil(math.log2(self.refresh_threshold))))
        return bits + 2 if self.scheme == "drcat" else bits


def scheme_hardware(
    scheme: str,
    n_counters: int = 64,
    refresh_threshold: int = TABLE2_T,
    max_levels: int = TABLE2_L,
) -> SchemeHardware:
    """Build the hardware model for a configuration.

    PRA has no counters; its "hardware" is the shared PRNG, exposed via
    :func:`pra_hardware` instead.
    """
    scheme = scheme.lower()
    if scheme not in TABLE2:
        raise KeyError(f"no Table II data for scheme {scheme!r}")
    rows = TABLE2[scheme]
    dynamic = _loglog_interp(n_counters, TABLE2_M, rows["dynamic"])
    static = _loglog_interp(n_counters, TABLE2_M, rows["static"])
    area = _loglog_interp(n_counters, TABLE2_M, rows["area"])

    # Threshold scaling: SRAM words are log2(T) bits wide.
    width_ratio = math.log2(max(2, refresh_threshold)) / math.log2(TABLE2_T)
    static *= width_ratio
    area *= width_ratio
    dynamic *= width_ratio

    # Depth scaling (CAT only): serial SRAM reads per lookup.
    if scheme in ("prcat", "drcat") and max_levels != TABLE2_L:
        ref = _cat_mean_sram_accesses(n_counters, TABLE2_L)
        cur = _cat_mean_sram_accesses(n_counters, max_levels)
        dynamic *= cur / ref

    latency = {
        "sca": 2.0,  # two SRAM accesses (read + write), < CAT traversal
        "prcat": PRCAT_LATENCY_NS,
        "drcat": DRCAT_LATENCY_NS,
    }[scheme]
    return SchemeHardware(
        scheme=scheme,
        n_counters=n_counters,
        refresh_threshold=refresh_threshold,
        max_levels=max_levels,
        dynamic_nj_per_access=dynamic,
        static_nj_per_interval=static,
        area_mm2=area,
        latency_ns=latency,
    )


@dataclass(frozen=True)
class PRNGHardware:
    """The shared TRNG that drives PRA (one instance for all banks)."""

    area_mm2: float = PRNG_AREA_MM2
    power_mw: float = PRNG_POWER_MW
    throughput_gbps: float = PRNG_THROUGHPUT_GBPS
    energy_per_bit_nj: float = PRNG_ENERGY_PER_BIT_NJ
    bits_per_access: int = 9

    @property
    def energy_per_access_nj(self) -> float:
        """Energy of the bits_per_access draw PRA makes per activation."""
        return self.energy_per_bit_nj * self.bits_per_access


def pra_hardware(bits_per_access: int = 9) -> PRNGHardware:
    """PRNG hardware spec (Table II right-hand block)."""
    return PRNGHardware(bits_per_access=bits_per_access)


def iso_area_counters(scheme_a: str, m_a: int, scheme_b: str) -> int:
    """Counters of ``scheme_b`` occupying ≈ the area of ``scheme_a``/m_a.

    Reproduces the paper's iso-area pairings (e.g. PRCAT64 ≈ SCA128):
    returns the power-of-two M for ``scheme_b`` whose area is closest to
    ``scheme_a``'s at ``m_a``.
    """
    target = scheme_hardware(scheme_a, m_a).area_mm2
    best_m, best_err = 0, float("inf")
    for exp in range(3, 13):
        m = 1 << exp
        err = abs(scheme_hardware(scheme_b, m).area_mm2 - target)
        if err < best_err:
            best_m, best_err = m, err
    return best_m
