"""Energy models: Table II hardware model and the CMRPO metric."""

from repro.energy.cmrpo import (
    STATIC_AMORTIZATION_BANKS,
    CMRPOBreakdown,
    compute_cmrpo,
)
from repro.energy.hardware_model import (
    COUNTER_CACHE_EQUIVALENT_COUNTERS,
    DRCAT_LATENCY_NS,
    DRCAT_RECONFIG_LATENCY_NS,
    PRCAT_LATENCY_NS,
    PRNG_ENERGY_PER_ACCESS_NJ,
    TABLE2,
    TABLE2_L,
    TABLE2_M,
    TABLE2_T,
    PRNGHardware,
    SchemeHardware,
    iso_area_counters,
    pra_hardware,
    scheme_hardware,
)

__all__ = [
    "CMRPOBreakdown",
    "compute_cmrpo",
    "STATIC_AMORTIZATION_BANKS",
    "SchemeHardware",
    "PRNGHardware",
    "scheme_hardware",
    "pra_hardware",
    "iso_area_counters",
    "TABLE2",
    "TABLE2_M",
    "TABLE2_T",
    "TABLE2_L",
    "PRCAT_LATENCY_NS",
    "DRCAT_LATENCY_NS",
    "DRCAT_RECONFIG_LATENCY_NS",
    "PRNG_ENERGY_PER_ACCESS_NJ",
    "COUNTER_CACHE_EQUIVALENT_COUNTERS",
]
