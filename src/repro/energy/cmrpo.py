"""CMRPO — Crosstalk Mitigation Refresh Power Overhead (Section VI).

CMRPO is the average power a mitigation scheme spends deciding which rows
to refresh *and* refreshing them, expressed relative to the regular
auto-refresh power of a bank (2.5 mW for 64K rows over 64 ms).  Three
components add up (Section VII-B):

1. **dynamic** — per-access energy of the counters/PRNG times the access
   rate;
2. **static** — leakage of the counter SRAM + logic over a refresh
   interval;
3. **refresh** — the energy of the victim-row refreshes the scheme
   commands (1 nJ per row).

Calibration note (see DESIGN.md): the paper's headline percentages are
arithmetically consistent with its Table II only when the scheme's
static/dynamic hardware energy is amortised over the banks of the device
(a single PRNG serves all banks for PRA; CMRPO's reference power is
per-bank).  ``STATIC_AMORTIZATION_BANKS`` encodes that interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import REFRESH_INTERVAL_S, REGULAR_REFRESH_POWER_MW, ROW_REFRESH_ENERGY_NJ
from repro.energy.hardware_model import (
    PRNGHardware,
    SchemeHardware,
    pra_hardware,
    scheme_hardware,
)

#: Banks the Table II hardware energy is amortised over (the paper's
#: 16-bank dual-core device).  See the calibration note above.
STATIC_AMORTIZATION_BANKS = 16

#: Storage-equivalent SCA counter count for the 32KB counter cache [26].
COUNTER_CACHE_EQUIVALENT_M = 2048


@dataclass(frozen=True)
class CMRPOBreakdown:
    """CMRPO and its three components, all in mW (per bank)."""

    dynamic_mw: float
    static_mw: float
    refresh_mw: float
    reference_mw: float = REGULAR_REFRESH_POWER_MW

    @property
    def total_mw(self) -> float:
        """Sum of the three components (mW)."""
        return self.dynamic_mw + self.static_mw + self.refresh_mw

    @property
    def cmrpo(self) -> float:
        """The headline ratio (fraction, e.g. 0.04 for 4 %)."""
        return self.total_mw / self.reference_mw

    def as_dict(self) -> dict[str, float]:
        """Flat dict form (reports, tests)."""
        return {
            "dynamic_mw": self.dynamic_mw,
            "static_mw": self.static_mw,
            "refresh_mw": self.refresh_mw,
            "total_mw": self.total_mw,
            "cmrpo": self.cmrpo,
        }

    def to_dict(self) -> dict[str, float]:
        """Lossless raw-field form (round-trips via :meth:`from_dict`;
        unlike :meth:`as_dict` it carries no derived values)."""
        return {
            "dynamic_mw": self.dynamic_mw,
            "static_mw": self.static_mw,
            "refresh_mw": self.refresh_mw,
            "reference_mw": self.reference_mw,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CMRPOBreakdown":
        """Rebuild a breakdown serialized by :meth:`to_dict`."""
        return cls(
            dynamic_mw=float(doc["dynamic_mw"]),
            static_mw=float(doc["static_mw"]),
            refresh_mw=float(doc["refresh_mw"]),
            reference_mw=float(doc.get("reference_mw",
                                       REGULAR_REFRESH_POWER_MW)),
        )


def mean_breakdown(breakdowns) -> CMRPOBreakdown:
    """Component-wise arithmetic mean of several breakdowns.

    The power-comparison figures report a scheme's 18-workload average
    per component; averaging component-wise keeps the identity
    ``mean.total_mw == mean of totals`` exact (the components are
    linear).  All inputs must share one reference power.

    Parameters
    ----------
    breakdowns:
        Iterable of :class:`CMRPOBreakdown` (at least one).

    Returns
    -------
    CMRPOBreakdown
        The per-component mean, under the common reference power.
    """
    items = list(breakdowns)
    if not items:
        raise ValueError("mean_breakdown needs at least one breakdown")
    reference = items[0].reference_mw
    if any(b.reference_mw != reference for b in items):
        raise ValueError("breakdowns use different reference powers")
    n = len(items)
    return CMRPOBreakdown(
        dynamic_mw=sum(b.dynamic_mw for b in items) / n,
        static_mw=sum(b.static_mw for b in items) / n,
        refresh_mw=sum(b.refresh_mw for b in items) / n,
        reference_mw=reference,
    )


def compute_cmrpo(
    scheme: str,
    accesses_per_interval: float,
    victim_rows_per_interval: float,
    n_counters: int = 64,
    refresh_threshold: int = 32768,
    max_levels: int = 11,
    pra_probability: float | None = None,
    amortization_banks: int = STATIC_AMORTIZATION_BANKS,
    extra_dynamic_nj_per_access: float = 0.0,
) -> CMRPOBreakdown:
    """CMRPO of one bank from per-interval activity totals.

    Parameters
    ----------
    scheme:
        ``"sca"``, ``"pra"``, ``"prcat"``, ``"drcat"`` or ``"ccache"``
        (the counter-cache comparator, modelled as SCA hardware at its
        equivalent 2048-counter storage plus per-access miss energy).
    accesses_per_interval:
        Mean row activations the bank receives per 64 ms interval (at
        full scale — callers rescale simulated counts first).
    victim_rows_per_interval:
        Mean rows the scheme refreshes per interval (scale-invariant, so
        simulated values pass straight through).
    pra_probability:
        Required for PRA (used only for reporting; the refresh count is
        already in ``victim_rows_per_interval``).
    extra_dynamic_nj_per_access:
        Additional measured per-access energy (the counter cache's DRAM
        fetch traffic, reported by the simulator).
    """
    scheme = scheme.lower()
    interval_s = REFRESH_INTERVAL_S
    access_rate = accesses_per_interval / interval_s  # per second

    if scheme == "pra":
        if pra_probability is None:
            raise ValueError("pra_probability is required for PRA")
        prng: PRNGHardware = pra_hardware()
        dynamic_mw = prng.energy_per_access_nj * access_rate * 1e-9 * 1e3
        static_mw = 0.0  # the TRNG's static draw is inside its nJ/bit figure
    else:
        if scheme == "ccache":
            # Equivalent SCA storage for a 32KB / 2048-entry cache.
            scheme, n_counters = "sca", COUNTER_CACHE_EQUIVALENT_M
        hw: SchemeHardware = scheme_hardware(
            scheme, n_counters, refresh_threshold, max_levels
        )
        dynamic_mw = (
            hw.dynamic_nj_per_access * access_rate * 1e-9 * 1e3
        )
        static_mw = (
            hw.static_nj_per_interval
            / amortization_banks
            / interval_s
            * 1e-9
            * 1e3
        )
    dynamic_mw += extra_dynamic_nj_per_access * access_rate * 1e-9 * 1e3
    refresh_mw = (
        victim_rows_per_interval * ROW_REFRESH_ENERGY_NJ / interval_s * 1e-9 * 1e3
    )
    return CMRPOBreakdown(
        dynamic_mw=dynamic_mw, static_mw=static_mw, refresh_mw=refresh_mw
    )
