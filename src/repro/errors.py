"""Error taxonomy for fault-tolerant sweep execution.

Every failure surfaced by the sweep layer is classified on one axis:
*can retrying possibly help?*

* :class:`RetryableError` — transient operational failures (a dying
  worker, a hung chunk, a torn store write, an injected fault).  The
  scheduler re-runs the cell with exponential backoff, up to its retry
  budget.
* :class:`FatalError` — deterministic failures (a malformed spec, a
  broken scheme implementation).  Re-running the identical computation
  would fail identically, so the scheduler records the failure and
  moves on (or aborts, without ``keep_going``).

Exceptions outside the taxonomy are classified by
:func:`is_retryable`: operational exception types (``OSError``,
``TimeoutError``, ``MemoryError``, broken-executor errors) are treated
as transient, everything else — the ``ValueError``/``TypeError`` family
a code bug raises — as fatal.

:class:`CellFailure` is the structured record one failed attempt leaves
behind: what cell, which attempt, what raised, the full traceback, and
whether the scheduler considered it retryable.  Failures cross process
boundaries as plain dicts (tracebacks pickle badly), so the record
round-trips through :meth:`CellFailure.to_dict`/``from_dict``.
"""

from __future__ import annotations

import traceback as _traceback
from concurrent.futures import BrokenExecutor
from dataclasses import asdict, dataclass, field


class ReproError(Exception):
    """Base class for errors raised by the repro stack itself."""


class RetryableError(ReproError):
    """A transient failure: re-running the cell may succeed."""


class FatalError(ReproError):
    """A deterministic failure: retrying cannot help."""


class InjectedFault(RetryableError):
    """A failure injected by the deterministic fault harness
    (:mod:`repro.testing.faults`).  Always transient by construction —
    each armed fault fires at most once per process."""


class CellTimeout(RetryableError):
    """A sweep chunk exceeded its per-cell time budget."""


#: Exception types outside the taxonomy that still indicate transient,
#: operational trouble rather than a code bug.
_RETRYABLE_TYPES = (
    OSError,
    TimeoutError,
    MemoryError,
    BrokenExecutor,  # covers BrokenProcessPool
    ConnectionError,
)


def is_retryable(exc: BaseException) -> bool:
    """Whether the scheduler should spend retry budget on ``exc``."""
    if isinstance(exc, FatalError):
        return False
    if isinstance(exc, RetryableError):
        return True
    return isinstance(exc, _RETRYABLE_TYPES)


@dataclass(frozen=True)
class CellFailure:
    """One failed attempt at one sweep cell, fully described.

    ``attempt`` is 1-based (attempt 1 is the first try).  ``traceback``
    is the formatted worker-side stack, captured where the exception
    happened — a remote failure is diagnosable without re-running it.
    """

    spec_hash: str
    label: str
    attempt: int
    error_type: str
    message: str
    traceback: str = ""
    retryable: bool = True

    @classmethod
    def from_exception(
        cls, spec, attempt: int, exc: BaseException
    ) -> "CellFailure":
        """Capture ``exc`` (with its live traceback) for one cell."""
        return cls(
            spec_hash=spec.content_hash(),
            label=f"{spec.workload_label}/{spec.scheme.display_label}",
            attempt=attempt,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            retryable=is_retryable(exc),
        )

    def to_dict(self) -> dict:
        """Flat JSON-ready record of this failure."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "CellFailure":
        """Rebuild a failure record serialized by :meth:`to_dict`."""
        return cls(**doc)


class CellExecutionError(FatalError):
    """A sweep cell failed permanently (its retry budget is exhausted).

    Raised by ``run_plan`` without ``keep_going``; carries the failed
    cells' :class:`CellFailure` records and, when available, the full
    :class:`~repro.experiments.run.SweepReport` of the aborted sweep
    (``exc.report``) so completed work remains inspectable.
    """

    def __init__(self, failures: list[CellFailure], report=None) -> None:
        self.failures = list(failures)
        self.report = report
        first = self.failures[0] if self.failures else None
        detail = (
            f"{first.label}: {first.error_type}: {first.message}"
            if first else "unknown cell"
        )
        extra = len(self.failures) - 1
        suffix = f" (+{extra} more failed cell(s))" if extra > 0 else ""
        super().__init__(
            f"sweep cell failed permanently — {detail}{suffix}"
        )


@dataclass
class CellStatus:
    """Final per-cell accounting one sweep run produces.

    ``status`` is ``ok`` (simulated successfully), ``cached`` (served
    from the result cache), ``failed`` (retry budget exhausted) or
    ``skipped`` (the sweep aborted before this cell ran).
    """

    index: int
    spec_hash: str
    label: str
    status: str
    attempts: int = 0
    elapsed_s: float = 0.0
    failures: list[CellFailure] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready record, failures serialized recursively."""
        doc = asdict(self)
        doc["failures"] = [f.to_dict() for f in self.failures]
        return doc


__all__ = [
    "ReproError",
    "RetryableError",
    "FatalError",
    "InjectedFault",
    "CellTimeout",
    "is_retryable",
    "CellFailure",
    "CellStatus",
    "CellExecutionError",
]
