"""Command-line interface: run paper experiments from a shell.

Subcommands::

    python -m repro run --workload black --scheme drcat [--threshold 32768]
    python -m repro run --spec experiment.json [--stream]
    python -m repro run --stream --snapshot-at NS --snapshot-to snap.json
    python -m repro resume snap.json [--stream] [--json]
    python -m repro compare --workload face [--threshold 16384]
    python -m repro attack --kernel kernel03 --mode heavy --scheme sca
    python -m repro sweep --workers 8 [--workloads mum libq]
    python -m repro plan --spec plan.json [--run] [--workers 8]
    python -m repro plan --example
    python -m repro list {workloads,schemes,attacks}
    python -m repro verify [--fidelity ci|smoke|full] [--session checkpoint]
    python -m repro figures [--html] [--golden-overlay] [--from DIR] [--out DIR]
    python -m repro cache stats|clear [--results] [--traces]
    python -m repro workloads
    python -m repro hardware [--counters 64]

``run --stream`` drives the experiment through the streaming session
API (:mod:`repro.api`) and prints one metrics line per simulated 64 ms
epoch; ``--snapshot-at NS --snapshot-to FILE`` checkpoints the run
mid-stream into a JSON snapshot that ``repro resume FILE`` finishes
bit-identically (on this or any other machine).  ``verify --session
session|checkpoint`` re-runs the whole golden-figure gate through the
session facade (optionally checkpoint/resume-cycling every cell) to
prove the streaming path equals the batch path.

Every flag-driven subcommand builds a declarative
:class:`~repro.experiments.ExperimentSpec` internally; ``run --spec``
and ``plan --spec`` consume the same JSON forms directly (``plan
--example`` prints a starter document).  All simulation knobs (scale,
banks, intervals, engine) are exposed as flags; the defaults match the
benchmark harness.  ``--engine scalar`` selects the per-event reference
loop; the default batched engine is bit-identical and ~an order of
magnitude faster.  ``run``, ``compare``, ``sweep`` and ``plan`` accept
``--json`` for machine-readable results.  ``verify`` regenerates every
figure/table artifact and gates it against the golden store (see
:mod:`repro.report.verify`).
"""

from __future__ import annotations

import argparse
import json

from repro import __version__
from repro.core.registry import get_scheme_info, params_to_dict, scheme_names
from repro.energy.hardware_model import TABLE2_M, pra_hardware, scheme_hardware
from repro.experiments import (
    ExperimentSpec,
    Plan,
    SchemeSpec,
    load_plan,
    load_spec,
    run_plan,
    run_spec,
)
from repro.report.config import FIDELITIES, SESSION_MODES
from repro.report.verify import run_verify
from repro.sim.engine import ENGINES
from repro.sim.metrics import format_table
from repro.workloads.attacks import ATTACK_KERNELS, ATTACK_MODES
from repro.workloads.suites import (
    WORKLOAD_ALIASES,
    WORKLOAD_ORDER,
    get_workload,
)

#: Scheme choices the flag-driven subcommands accept — driven by the
#: registry, so a newly registered scheme is accepted automatically.
SCHEME_CHOICES = sorted(scheme_names())


def _add_sim_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threshold", type=int, default=32768,
                        help="refresh threshold T (default 32768)")
    parser.add_argument("--counters", type=int, default=64,
                        help="counters per bank M (default 64)")
    parser.add_argument("--levels", type=int, default=11,
                        help="max CAT depth L (default 11)")
    parser.add_argument("--pra-p", type=float, default=0.002,
                        help="PRA refresh probability (default 0.002)")
    parser.add_argument("--scale", type=float, default=24.0,
                        help="simulation scale divisor (default 24)")
    parser.add_argument("--banks", type=int, default=1,
                        help="banks simulated (default 1)")
    parser.add_argument("--intervals", type=int, default=2,
                        help="refresh intervals simulated (default 2)")
    parser.add_argument("--engine", choices=list(ENGINES), default="batched",
                        help="simulation engine (default batched; all "
                             "tiers are event-exact and bit-identical — "
                             "jit compiles when numba is installed)")
    parser.add_argument("--json", action="store_true",
                        help="print full machine-readable results "
                             "(SimulationResult serialization) instead of "
                             "the text table")


def _scheme_spec(scheme: str, args: argparse.Namespace,
                 label: str | None = None) -> SchemeSpec:
    """The typed SchemeSpec the flags describe for ``scheme``."""
    return SchemeSpec.from_legacy(
        scheme,
        counters=args.counters,
        max_levels=args.levels,
        pra_probability=args.pra_p,
        label=label,
    )


def _spec_from_args(args: argparse.Namespace, scheme: str,
                    workload: str, **extra) -> ExperimentSpec:
    return ExperimentSpec(
        scheme=_scheme_spec(scheme, args),
        workload=workload,
        refresh_threshold=args.threshold,
        scale=args.scale,
        n_banks=args.banks,
        n_intervals=args.intervals,
        engine=args.engine,
        **extra,
    )


def _result_row(label: str, result) -> dict:
    return {
        "scheme": label,
        "CMRPO %": 100 * result.cmrpo,
        "ETO %": 100 * result.eto,
        "rows/interval": result.totals.rows_refreshed_per_bank_interval,
    }


def _print_result(args: argparse.Namespace, label: str, result,
                  spec=None) -> int:
    if args.json:
        doc = result.to_dict()
        if spec is not None:
            doc["spec"] = spec.to_dict()
        print(json.dumps(doc, indent=2))
        return 0
    print(format_table([_result_row(label, result)],
                       ["scheme", "CMRPO %", "ETO %", "rows/interval"]))
    return 0


def _add_robust_flags(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by ``sweep`` and ``plan --run``."""
    parser.add_argument("--max-retries", type=int, default=2,
                        help="extra attempts per retryably-failing cell "
                             "(default 2; 0 disables retries)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget per cell in seconds; a "
                             "hung chunk fails retryably and its workers "
                             "are terminated (default: no timeout)")
    parser.add_argument("--keep-going", action="store_true",
                        help="finish every cell even if some fail "
                             "permanently; failed cells are reported in "
                             "a summary table and the exit code is "
                             "nonzero iff any cell permanently failed")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="write the SweepReport JSON (per-cell "
                             "status, attempts, timings, failures) to "
                             "FILE")


def _run_plan_cli(plan, args):
    """Execute a plan under the CLI's robustness flags.

    Returns ``(results, report, exit_code)``: ``results`` aligns with
    ``plan.specs`` (None for failed cells); ``report`` is None only on
    the plain fast path (no ``--keep-going``/``--report``, no failure).
    """
    from repro.errors import CellExecutionError
    from repro.experiments import SweepReport

    want_report = args.keep_going or bool(args.report)
    try:
        out = run_plan(
            plan,
            workers=args.workers,
            cache=args.cache_dir or None,
            keep_going=want_report,
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
        )
    except CellExecutionError as exc:
        results = (exc.report.results if exc.report is not None
                   else [None] * len(plan.specs))
        return results, exc.report, 1
    if isinstance(out, SweepReport):
        return out.results, out, (0 if out.ok else 1)
    return out, None, 0


def _finish_report(args, report) -> None:
    """Failed-cell summary table + optional ``--report`` JSON file."""
    if report is None:
        return
    rows = report.failure_rows()
    if rows and not args.json:
        print("\nfailed cells:")
        print(format_table(
            rows, ["cell", "label", "attempts", "error", "message"]
        ))
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=1) + "\n",
            encoding="utf-8",
        )
        if not args.json:
            print(f"sweep report -> {args.report}")


def _stream_taps(session) -> None:
    """Wire the ``--stream`` per-epoch progress printer onto a session."""
    @session.on_epoch
    def _print_epoch(event) -> None:
        d = event.delta
        print(f"epoch {event.epoch:>3}  t={event.time_ns / 1e6:9.3f} ms  "
              f"accesses={d.accesses:>8}  refreshes={d.refresh_commands:>6}  "
              f"rows={d.rows_refreshed:>8}  eto={100 * d.eto:8.4f}%")


def _run_streaming(args: argparse.Namespace, spec, label: str) -> int:
    """``repro run --stream`` / ``--snapshot-at``: session-driven run."""
    from repro.api import open_session

    session = open_session(spec)
    if args.stream:
        _stream_taps(session)
    if args.snapshot_at is not None:
        if not args.snapshot_to:
            print("error: --snapshot-at needs --snapshot-to FILE")
            return 2
        session.advance(args.snapshot_at)
        path = session.save(args.snapshot_to)
        print(f"snapshot at {session.position_ns:.1f} ns "
              f"({session.accesses_served} accesses served) -> {path}")
        print("finish it with: repro resume " + str(path))
        return 0
    if args.snapshot_to:
        if not spec.checkpoint_every:
            print("error: --snapshot-to needs --snapshot-at NS (or a spec "
                  "with checkpoint_every set)")
            return 2
        # Spec-declared checkpoint cadence: auto-snapshot every k epochs.
        every, sink = spec.checkpoint_every, args.snapshot_to

        @session.on_epoch
        def _autosnap(event) -> None:
            if event.epoch % every == 0 and event.epoch < spec.n_intervals:
                session.save(f"{sink}.epoch{event.epoch}")

    return _print_result(args, label, session.result(), spec)


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: one experiment — from flags or a spec file."""
    if args.spec:
        spec = load_spec(args.spec)
        label = f"{spec.scheme.display_label}"
    else:
        spec = _spec_from_args(args, args.scheme, args.workload)
        label = args.scheme
    if args.stream or args.snapshot_at is not None or args.snapshot_to:
        return _run_streaming(args, spec, label)
    result = run_spec(spec)
    return _print_result(args, label, result, spec)


def cmd_resume(args: argparse.Namespace) -> int:
    """``repro resume``: finish a checkpointed session snapshot."""
    from repro.api import Session, SessionError

    try:
        session = Session.load(args.snapshot)
    except (SessionError, FileNotFoundError) as exc:
        print(f"error: {exc}")
        return 2
    if args.stream:
        _stream_taps(session)
    print(f"resumed at {session.position_ns:.1f} ns "
          f"({session.accesses_served} accesses already served)")
    label = session.spec.scheme.display_label
    return _print_result(args, label, session.result(), session.spec)


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: all four schemes on one workload."""
    rows = []
    results = {}
    for scheme in ("pra", "sca", "prcat", "drcat"):
        result = run_spec(_spec_from_args(args, scheme, args.workload))
        results[scheme] = result
        rows.append(_result_row(scheme, result))
    if args.json:
        print(json.dumps({s: r.to_dict() for s, r in results.items()},
                         indent=2))
        return 0
    print(f"workload={args.workload}  T={args.threshold}  M={args.counters}")
    print(format_table(rows, ["scheme", "CMRPO %", "ETO %", "rows/interval"]))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    """``repro attack``: one kernel-attack experiment."""
    spec = _spec_from_args(
        args, args.scheme, args.benign,
        kind="attack", attack_kernel=args.kernel, attack_mode=args.mode,
    )
    result = run_spec(spec)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(format_table([_result_row(f"{args.scheme} vs {args.kernel}", result)],
                       ["scheme", "CMRPO %", "ETO %", "rows/interval"]))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: (workload x scheme) grid, optionally parallel."""
    workloads = args.workloads or list(WORKLOAD_ORDER)
    if not args.schemes:
        # nargs="*" permits an empty list; an empty grid is an empty
        # table, matching the historical behaviour.
        print(format_table([], ["scheme", "CMRPO %", "ETO %",
                                "rows/interval"]))
        return 0
    base = _spec_from_args(args, args.schemes[0], workloads[0])
    plan = Plan.grid(
        base,
        workload=workloads,
        scheme=[_scheme_spec(s, args) for s in args.schemes],
    )
    cells, report, code = _run_plan_cli(plan, args)
    results = dict(zip(plan.keys(), cells))
    if args.json:
        _finish_report(args, report)
        print(json.dumps(
            {f"{workload}/{scheme}":
                 (result.to_dict() if result is not None else None)
             for (workload, scheme), result in results.items()},
            indent=2,
        ))
        return code
    rows = [
        _result_row(f"{workload}/{scheme}", result)
        for (workload, scheme), result in results.items()
        if result is not None
    ]
    print(format_table(rows, ["scheme", "CMRPO %", "ETO %", "rows/interval"]))
    _finish_report(args, report)
    return code


EXAMPLE_PLAN = {
    "kind": "repro-experiment-plan",
    "plan_version": 1,
    "base": {
        "scheme": {"kind": "drcat",
                   "params": {"n_counters": 64, "max_levels": 11},
                   "label": None},
        "workload": "black",
        "refresh_threshold": 32768,
        "scale": 96.0,
        "n_banks": 1,
        "n_intervals": 1,
        "engine": "batched",
    },
    "axes": [
        ["workload", ["black", "libq"]],
        ["scheme", [
            {"kind": "sca", "params": {"n_counters": 128},
             "label": "SCA_128"},
            {"kind": "drcat", "params": {"n_counters": 64},
             "label": "DRCAT_64"},
        ]],
    ],
}


def cmd_plan(args: argparse.Namespace) -> int:
    """``repro plan``: expand (and optionally run) a plan document."""
    if args.example:
        print(json.dumps(EXAMPLE_PLAN, indent=2))
        return 0
    if not args.spec:
        print("error: pass --spec plan.json (or --example for a template)")
        return 2
    plan = load_plan(args.spec)
    if args.run:
        results, report, code = _run_plan_cli(plan, args)
        if args.json:
            _finish_report(args, report)
            print(json.dumps(
                [{"spec": spec.to_dict(),
                  "result": (result.to_dict() if result is not None
                             else None)}
                 for spec, result in zip(plan.specs, results)],
                indent=2,
            ))
            return code
        rows = [
            _result_row(f"{w}/{s}", result)
            for (w, s), result in zip(plan.keys(), results)
            if result is not None
        ]
        print(format_table(rows, ["scheme", "CMRPO %", "ETO %",
                                  "rows/interval"]))
        _finish_report(args, report)
        return code
    if args.json:
        print(json.dumps([spec.to_dict() for spec in plan.specs], indent=2))
        return 0
    rows = []
    for i, spec in enumerate(plan.specs):
        rows.append({
            "cell": i,
            "kind": spec.kind,
            "workload": spec.workload_label,
            "scheme": spec.scheme.display_label,
            "T": spec.refresh_threshold,
            "scale": spec.scale,
            "engine": spec.engine,
            "hash": spec.content_hash(),
        })
    print(f"plan: {len(plan)} cell(s), hash {plan.content_hash()}")
    print(format_table(rows, ["cell", "kind", "workload", "scheme", "T",
                              "scale", "engine", "hash"]))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list``: registry-driven inventories."""
    if args.what == "workloads":
        rows = [
            {"name": name, "suite": get_workload(name).suite,
             "aliases": ",".join(
                 a for a, c in sorted(WORKLOAD_ALIASES.items()) if c == name
             )}
            for name in WORKLOAD_ORDER
        ]
        print(format_table(rows, ["name", "suite", "aliases"]))
        return 0
    if args.what == "engines":
        from repro.core.jitkern import jit_tier_label

        tier_status = {
            "scalar": "always available (reference)",
            "batched": "always available",
            "jit": jit_tier_label(),
        }
        descriptions = {
            "scalar": "per-event reference loop (the oracle)",
            "batched": "vectorized numpy fast path, bit-identical",
            "jit": "compiled SoA kernels (numba), bit-identical; "
                   "runs un-jitted when numba is absent",
        }
        rows = [
            {"engine": name, "status": tier_status[name],
             "description": descriptions[name]}
            for name in ENGINES
        ]
        print(format_table(rows, ["engine", "status", "description"]))
        return 0
    if args.what == "schemes":
        rows = []
        for name in scheme_names():
            info = get_scheme_info(name)
            defaults = params_to_dict(info.default_params())
            rows.append({
                "scheme": name,
                "params": ", ".join(
                    f"{k}={v}" for k, v in defaults.items()) or "(none)",
                "description": info.description,
            })
        print(format_table(rows, ["scheme", "params", "description"]))
        return 0
    rows = [
        {"kernel": k.name, "targets/bank": k.targets_per_bank,
         "center": k.center_fraction, "spread": k.spread_fraction}
        for k in ATTACK_KERNELS
    ]
    print(format_table(rows, ["kernel", "targets/bank", "center", "spread"]))
    print(f"modes: {', '.join(ATTACK_MODES)}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify``: golden-figure regression gate."""
    return run_verify(
        fidelity=args.fidelity,
        engine=args.engine,
        update=args.update,
        figures=args.figures,
        golden_dir=args.golden_dir,
        benchmarks_dir=args.benchmarks_dir,
        list_only=args.list,
        session=args.session,
    )


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: render artifact JSON to SVG figures + HTML."""
    from pathlib import Path

    from repro.figures import render_directory
    from repro.report.verify import default_benchmarks_dir

    bench_dir = default_benchmarks_dir()
    if args.source:
        results_dir = Path(args.source)
    elif bench_dir is not None:
        results_dir = bench_dir / "results"
    else:
        print("error: no benchmarks/ directory found; pass --from DIR")
        return 2
    if not results_dir.is_dir():
        print(f"error: no such artifact directory: {results_dir}")
        return 2
    out_dir = Path(args.out) if args.out else results_dir / "figures"

    golden_dir = None
    if args.golden_overlay:
        if args.golden_dir:
            golden_dir = Path(args.golden_dir)
        elif bench_dir is not None:
            golden_dir = bench_dir / "golden" / args.fidelity
        else:
            print("error: --golden-overlay needs --golden-dir DIR "
                  "(no benchmarks/ directory found)")
            return 2
        if not golden_dir.is_dir():
            print(f"error: no such golden directory: {golden_dir}")
            return 2

    perf_path = None
    if args.perf:
        perf_path = Path(args.perf)
    elif bench_dir is not None:
        candidate = bench_dir.parent / "BENCH_perf.json"
        if candidate.is_file():
            perf_path = candidate

    report = render_directory(
        results_dir,
        out_dir,
        golden_dir=golden_dir,
        html=args.html,
        only=args.only or None,
        perf_path=perf_path,
        png=args.png,
    )
    for name, reason in report.skipped:
        print(f"skip {name}: {reason}")
    for name, reason in report.errors:
        print(f"ERROR {name}: {reason}")
    diffs = sum(1 for f in report.rendered if f.golden_status == "diff")
    overlay_note = f", {diffs} differ from golden" if golden_dir else ""
    print(f"rendered {len(report.rendered)} figure(s) to {out_dir} "
          f"in {report.elapsed_s:.2f}s{overlay_note}")
    if report.index_path is not None:
        print(f"index -> {report.index_path}")
    if not report.rendered and not report.skipped and not report.errors:
        print(f"error: no figure artifacts found under {results_dir}")
        return 2
    return 0 if report.ok else 1


def _result_store_root(args: argparse.Namespace):
    """The sweep-cell result-cache root the benches would use."""
    import os
    from pathlib import Path

    from repro.report.verify import default_benchmarks_dir

    if args.cache_dir:
        return Path(args.cache_dir)
    env_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if env_dir:
        return Path(env_dir)
    bench_dir = default_benchmarks_dir()
    if bench_dir is None:
        return None
    return bench_dir / "results" / "sweep_cache"


def _result_store_stats(root) -> dict:
    """Entry/byte/partition counts of the sweep-cell result store."""
    from repro.experiments.cache import CACHE_VERSION, code_fingerprint

    active = f"{CACHE_VERSION}-{code_fingerprint()}"
    stats = {"root": str(root) if root else None, "entries": 0,
             "bytes": 0, "partitions": 0, "stale_partitions": 0}
    if root is None or not root.is_dir():
        return stats
    for partition in root.iterdir():
        # The trace store and the serve job journal nest under this
        # root by default; both report separately.
        if not partition.is_dir() or partition.name in ("traces",
                                                        "journal"):
            continue
        stats["partitions"] += 1
        if partition.name != active:
            stats["stale_partitions"] += 1
        for path in partition.rglob("*"):
            try:
                stats["bytes"] += path.stat().st_size
            except OSError:
                continue
            if partition.name == active and path.suffix == ".json":
                stats["entries"] += 1
    return stats


def _journal_stats(result_root, gc: bool = True) -> dict:
    """Serve job-journal segment stats (plus fully-applied-segment GC).

    The journal lives at ``<cache-root>/journal``.  Segments every job
    of which is terminal are fully applied — their results live in the
    result cache — so stats/clear GC them the same way both commands
    sweep orphaned ``.tmp`` files.
    """
    from pathlib import Path

    from repro.server.journal import Journal

    stats = {"root": None, "segments": 0, "bytes": 0, "records": 0,
             "live_jobs": 0, "finished_jobs": 0, "gc_removed": 0}
    if result_root is None:
        return stats
    journal_dir = Path(result_root) / "journal"
    stats["root"] = str(journal_dir)
    if not journal_dir.is_dir():
        return stats
    journal = Journal(journal_dir)
    if gc:
        stats["gc_removed"] = journal.gc()
    snapshot = journal.stats()
    stats["segments"] = snapshot.segments
    stats["bytes"] = snapshot.bytes
    stats["records"] = snapshot.records
    stats["live_jobs"] = snapshot.live_jobs
    stats["finished_jobs"] = snapshot.finished_jobs
    return stats


def _trace_store_stats(parent, store) -> dict:
    """Active-partition stats plus stale-partition accounting."""
    stats = store.stats()
    stats["partitions"] = 0
    stats["stale_partitions"] = 0
    if parent.is_dir():
        active = store.root.name
        for partition in parent.iterdir():
            if not partition.is_dir():
                continue
            stats["partitions"] += 1
            if partition.name != active:
                stats["stale_partitions"] += 1
                for path in partition.rglob("*"):
                    try:
                        stats["bytes"] += path.stat().st_size
                    except OSError:
                        continue
    return stats


def cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache``: sweep-cell + trace-store maintenance."""
    import shutil
    from pathlib import Path

    from repro.sim.tracestore import TraceStore, default_root

    from repro.experiments.cache import sweep_orphan_tmp

    trace_parent = Path(args.trace_dir) if args.trace_dir else default_root()
    trace_store = TraceStore(trace_parent)
    result_root = _result_store_root(args)

    # Orphaned *.tmp files are leftovers of atomic writes interrupted
    # mid-rename (crash, kill -9); both stats and clear sweep them.
    tmp_removed = sweep_orphan_tmp(result_root) + sweep_orphan_tmp(trace_parent)

    if args.action == "clear":
        both = not args.results and not args.traces
        cleared = []
        if tmp_removed:
            cleared.append(f"tmp: {tmp_removed} orphaned .tmp file(s) swept")
        if args.results or both:
            stats = _result_store_stats(result_root)
            if result_root is not None and result_root.is_dir():
                for partition in list(result_root.iterdir()):
                    if partition.is_dir() and partition.name not in (
                        "traces", "journal"
                    ):
                        shutil.rmtree(partition, ignore_errors=True)
            cleared.append(f"results: {stats['entries']} entr(ies) "
                           f"({stats['partitions']} partition(s)) removed "
                           f"from {stats['root']}")
        if both:
            # A full clear wipes the serve job journal too: with the
            # results gone there is nothing its jobs could recover to
            # without re-simulating anyway.
            journal_stats = _journal_stats(result_root, gc=False)
            if journal_stats["segments"]:
                shutil.rmtree(Path(journal_stats["root"]),
                              ignore_errors=True)
            cleared.append(
                f"journal: {journal_stats['segments']} segment(s) "
                f"({journal_stats['records']} record(s)) removed from "
                f"{journal_stats['root']}"
            )
        if args.traces or both:
            stats = _trace_store_stats(trace_parent, trace_store)
            trace_store._ram.clear()
            shutil.rmtree(trace_parent, ignore_errors=True)
            cleared.append(
                f"traces: {stats['entries']} entr(ies) "
                f"({stats['partitions']} partition(s)) removed from "
                f"{trace_parent}"
            )
        for line in cleared:
            print(line)
        return 0

    result_stats = _result_store_stats(result_root)
    journal_stats = _journal_stats(result_root)
    trace_stats = _trace_store_stats(trace_parent, trace_store)
    if args.json:
        print(json.dumps({"results": result_stats, "traces": trace_stats,
                          "journal": journal_stats,
                          "tmp_removed": tmp_removed},
                         indent=2))
        return 0
    rows = [
        {
            "store": "results",
            "entries": result_stats["entries"],
            "MiB": round(result_stats["bytes"] / 2**20, 2),
            "root": result_stats["root"] or "(no benchmarks dir)",
        },
        {
            "store": "journal",
            "entries": journal_stats["records"],
            "MiB": round(journal_stats["bytes"] / 2**20, 2),
            "root": journal_stats["root"] or "(no benchmarks dir)",
        },
        {
            "store": "traces",
            "entries": trace_stats["entries"],
            "MiB": round(trace_stats["bytes"] / 2**20, 2),
            "root": trace_stats["root"],
        },
    ]
    print(format_table(rows, ["store", "entries", "MiB", "root"]))
    if journal_stats["gc_removed"]:
        print(f"note: removed {journal_stats['gc_removed']} fully-applied "
              "journal segment(s) (all jobs terminal)")
    if journal_stats["live_jobs"]:
        print(f"note: journal holds {journal_stats['live_jobs']} "
              "unfinished job(s); the next repro serve on this "
              "--cache-dir will resume them")
    for kind, stats in (("result", result_stats), ("trace", trace_stats)):
        if stats["stale_partitions"]:
            print(f"note: {stats['stale_partitions']} stale {kind} "
                  f"partition(s) from older code (repro cache clear "
                  f"--{'results' if kind == 'result' else 'traces'})")
    if tmp_removed:
        print(f"note: swept {tmp_removed} orphaned .tmp file(s) left by "
              "interrupted atomic writes")
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    """``repro workloads``: list the 18 workload models."""
    rows = []
    for name in WORKLOAD_ORDER:
        spec = get_workload(name)
        rows.append(
            {
                "workload": name,
                "suite": spec.suite,
                "intensity": int(spec.intensity),
                "zipf": spec.zipf_alpha,
                "hot_rows": spec.hot_rows,
                "hot_frac": spec.hot_fraction,
                "phases": spec.phase_count,
            }
        )
    print(format_table(rows, ["workload", "suite", "intensity", "zipf",
                              "hot_rows", "hot_frac", "phases"]))
    return 0


def cmd_hardware(args: argparse.Namespace) -> int:
    """``repro hardware``: print the Table II hardware model."""
    rows = []
    m_values = (args.counters,) if args.counters else TABLE2_M
    for m in m_values:
        for scheme in ("sca", "prcat", "drcat"):
            hw = scheme_hardware(scheme, m, args.threshold)
            rows.append(
                {
                    "scheme": f"{scheme}_{m}",
                    "dyn nJ/access": f"{hw.dynamic_nj_per_access:.2e}",
                    "static nJ/interval": f"{hw.static_nj_per_interval:.2e}",
                    "area mm2": f"{hw.area_mm2:.2e}",
                    "latency ns": hw.latency_ns,
                }
            )
    prng = pra_hardware()
    rows.append(
        {
            "scheme": "pra (PRNG)",
            "dyn nJ/access": f"{prng.energy_per_access_nj:.2e}",
            "static nJ/interval": "-",
            "area mm2": f"{prng.area_mm2:.2e}",
            "latency ns": "-",
        }
    )
    print(format_table(rows, ["scheme", "dyn nJ/access", "static nJ/interval",
                              "area mm2", "latency ns"]))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the experiment layer over HTTP + SSE.

    SIGTERM/SIGINT trigger a graceful drain: new submissions get 503
    while status reads stay live, running jobs checkpoint, and the
    journal flushes — the process exits 0 within ``--drain-deadline``
    either way (a missed deadline hard-exits; the fsync'd journal
    already holds everything a restart needs).
    """
    import asyncio
    import os

    from repro.server import ReproServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        driver_threads=args.driver_threads,
        max_jobs=args.max_jobs,
        job_ttl_s=args.job_ttl,
        checkpoint_epochs=args.checkpoint_epochs,
        drain_deadline_s=args.drain_deadline,
        stall_timeout_s=args.stall_timeout,
        max_queued=args.max_queued,
    )
    server = ReproServer(config)
    clean = True
    try:
        clean = asyncio.run(
            server.serve(announce=True, handle_signals=True)
        )
    except KeyboardInterrupt:
        # Signal handlers need a running loop; a KeyboardInterrupt can
        # still slip in before/after serve() — drain state is on disk.
        print("\nshutting down")
    finally:
        server.close()
    if not clean:
        # Hung driver threads are non-daemon; joining them at
        # interpreter exit would blow the drain deadline.  Everything
        # durable is already flushed — leave without looking back.
        os._exit(0)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAT rowhammer-mitigation reproduction (ISCA 2018)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload with one scheme")
    p_run.add_argument("--workload", default="black", choices=list(WORKLOAD_ORDER))
    p_run.add_argument("--scheme", default="drcat", choices=SCHEME_CHOICES)
    p_run.add_argument("--spec", default=None, metavar="FILE",
                       help="run an ExperimentSpec JSON document instead of "
                            "building one from the flags")
    p_run.add_argument("--stream", action="store_true",
                       help="drive the run through the streaming session "
                            "API and print one metrics line per epoch")
    p_run.add_argument("--snapshot-at", type=float, default=None,
                       metavar="NS",
                       help="advance to the given simulated time (ns), "
                            "write a session snapshot, and stop")
    p_run.add_argument("--snapshot-to", default=None, metavar="FILE",
                       help="snapshot destination for --snapshot-at (or "
                            "the sink prefix for a spec's "
                            "checkpoint_every policy)")
    _add_sim_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_res = sub.add_parser(
        "resume",
        help="finish a checkpointed run from a session snapshot file",
    )
    p_res.add_argument("snapshot", metavar="FILE",
                       help="snapshot written by `repro run --snapshot-at` "
                            "or Session.save()")
    p_res.add_argument("--stream", action="store_true",
                       help="print per-epoch metrics while finishing")
    p_res.add_argument("--json", action="store_true",
                       help="machine-readable result")
    p_res.set_defaults(func=cmd_resume)

    p_cmp = sub.add_parser("compare", help="all schemes on one workload")
    p_cmp.add_argument("--workload", default="black", choices=list(WORKLOAD_ORDER))
    _add_sim_flags(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_atk = sub.add_parser("attack", help="run a kernel attack experiment")
    p_atk.add_argument("--kernel", default="kernel01",
                       choices=[k.name for k in ATTACK_KERNELS])
    p_atk.add_argument("--mode", default="heavy", choices=list(ATTACK_MODES))
    p_atk.add_argument("--scheme", default="drcat", choices=SCHEME_CHOICES)
    p_atk.add_argument("--benign", default="libq", choices=list(WORKLOAD_ORDER))
    _add_sim_flags(p_atk)
    p_atk.set_defaults(func=cmd_attack)

    p_sweep = sub.add_parser("sweep", help="workload x scheme sweep")
    p_sweep.add_argument("--workloads", nargs="*", default=None,
                         choices=list(WORKLOAD_ORDER),
                         help="workloads to sweep (default: all 18)")
    p_sweep.add_argument("--schemes", nargs="*",
                         default=["pra", "sca", "prcat", "drcat"],
                         choices=SCHEME_CHOICES)
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="process-pool width (default 1 = serial)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="sweep-cell result cache directory "
                              "(default: off for the CLI)")
    _add_sim_flags(p_sweep)
    _add_robust_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_plan = sub.add_parser(
        "plan",
        help="expand a declarative experiment plan (grid) and "
             "optionally run it",
    )
    p_plan.add_argument("--spec", default=None, metavar="FILE",
                        help="plan JSON document (grid or spec list)")
    p_plan.add_argument("--run", action="store_true",
                        help="execute the plan instead of only listing it")
    p_plan.add_argument("--workers", type=int, default=1,
                        help="process-pool width for --run")
    p_plan.add_argument("--cache-dir", default=None,
                        help="sweep-cell result cache directory for --run")
    p_plan.add_argument("--example", action="store_true",
                        help="print an example plan document and exit")
    p_plan.add_argument("--json", action="store_true",
                        help="machine-readable output")
    _add_robust_flags(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_list = sub.add_parser(
        "list",
        help="list registered workloads / schemes / attacks / engines",
    )
    p_list.add_argument("what",
                        choices=["workloads", "schemes", "attacks",
                                 "engines"])
    p_list.set_defaults(func=cmd_list)

    p_ver = sub.add_parser(
        "verify",
        help="regenerate every figure artifact and gate it on the "
             "golden store (exit 1 on any difference)",
    )
    p_ver.add_argument("--fidelity", choices=list(FIDELITIES), default="ci",
                       help="named (scale, intervals, banks) point; the "
                            "golden store is per-fidelity (default ci)")
    p_ver.add_argument("--engine", choices=list(ENGINES), default=None,
                       help="override the engine (default batched; the "
                            "golden store gates every engine tier because "
                            "they are bit-identical)")
    p_ver.add_argument("--session", choices=list(SESSION_MODES),
                       default=None,
                       help="spec execution path: 'session' runs every "
                            "cell through the streaming facade, "
                            "'checkpoint' additionally snapshots each "
                            "cell mid-run, JSON-round-trips and resumes "
                            "it (default direct; all paths must match "
                            "the same goldens)")
    p_ver.add_argument("--update", action="store_true",
                       help="rewrite the golden store from this run "
                            "instead of comparing")
    p_ver.add_argument("--figures", nargs="*", default=None,
                       help="subset of bench modules (default: all)")
    p_ver.add_argument("--golden-dir", default=None,
                       help="golden store root (default benchmarks/golden)")
    p_ver.add_argument("--benchmarks-dir", default=None,
                       help="bench-suite directory (default: auto-locate)")
    p_ver.add_argument("--list", action="store_true",
                       help="list registered bench modules and exit")
    p_ver.set_defaults(func=cmd_verify)

    p_fig = sub.add_parser(
        "figures",
        help="render figure artifacts (results/*.json) to SVG + an "
             "HTML index with golden overlays",
    )
    p_fig.add_argument("--from", dest="source", default=None, metavar="DIR",
                       help="artifact directory (default benchmarks/results; "
                            "a golden store works too)")
    p_fig.add_argument("--out", default=None, metavar="DIR",
                       help="output directory (default <from>/figures)")
    p_fig.add_argument("--html", action="store_true",
                       help="also write index.html (summary table, inline "
                            "SVGs, verdicts, tolerance annotations)")
    p_fig.add_argument("--golden-overlay", action="store_true",
                       help="overlay golden values on each figure and "
                            "attach the verify comparator's verdict")
    p_fig.add_argument("--fidelity", choices=list(FIDELITIES), default="ci",
                       help="golden store fidelity for --golden-overlay "
                            "(default ci)")
    p_fig.add_argument("--golden-dir", default=None, metavar="DIR",
                       help="explicit golden store root (default "
                            "benchmarks/golden/<fidelity>)")
    p_fig.add_argument("--only", nargs="*", default=None, metavar="NAME",
                       help="restrict to the named artifacts")
    p_fig.add_argument("--perf", default=None, metavar="FILE",
                       help="perf report to chart (default: repo-root "
                            "BENCH_perf.json when present)")
    p_fig.add_argument("--png", action="store_true",
                       help="also rasterise PNGs when an SVG converter "
                            "is installed (best-effort; SVG is canonical)")
    p_fig.set_defaults(func=cmd_figures)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the sweep-cell result cache and the "
             "activation-trace store",
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--results", action="store_true",
                         help="clear: only the sweep-cell result store")
    p_cache.add_argument("--traces", action="store_true",
                         help="clear: only the activation-trace store")
    p_cache.add_argument("--cache-dir", default=None,
                         help="result-store root (default: "
                              "REPRO_BENCH_CACHE_DIR or "
                              "benchmarks/results/sweep_cache)")
    p_cache.add_argument("--trace-dir", default=None,
                         help="trace-store root (default: "
                              "REPRO_TRACE_STORE_DIR or "
                              "<result store>/traces)")
    p_cache.add_argument("--json", action="store_true",
                         help="machine-readable stats")
    p_cache.set_defaults(func=cmd_cache)

    p_wl = sub.add_parser("workloads", help="list the 18 workload models")
    p_wl.set_defaults(func=cmd_workloads)

    p_srv = sub.add_parser(
        "serve",
        help="serve the experiment layer over HTTP (runs, plans, SSE)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="listen port (0 picks a free one)")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="SweepPool width plan cells shard onto")
    p_srv.add_argument("--cache-dir", default=None,
                       help="result-cache root shared with repro sweep "
                            "(default: a private temp dir)")
    p_srv.add_argument("--driver-threads", type=int, default=4,
                       help="concurrent job-driving threads")
    p_srv.add_argument("--max-jobs", type=int, default=256,
                       help="finished-job table bound before GC")
    p_srv.add_argument("--job-ttl", type=float, default=3600.0,
                       help="seconds a finished job stays queryable")
    p_srv.add_argument("--checkpoint-epochs", type=int, default=2,
                       help="run jobs snapshot a resume point every N "
                            "epochs (0 disables periodic checkpoints)")
    p_srv.add_argument("--drain-deadline", type=float, default=20.0,
                       help="seconds a SIGTERM/SIGINT drain may take to "
                            "checkpoint running work before hard exit")
    p_srv.add_argument("--stall-timeout", type=float, default=120.0,
                       help="seconds without a driver heartbeat before "
                            "a running job is requeued")
    p_srv.add_argument("--max-queued", type=int, default=64,
                       help="queued-job bound before submissions get 429")
    p_srv.set_defaults(func=cmd_serve)

    p_hw = sub.add_parser("hardware", help="print Table II hardware model")
    p_hw.add_argument("--counters", type=int, default=0,
                      help="single M value (default: the Table II sweep)")
    p_hw.add_argument("--threshold", type=int, default=32768)
    p_hw.set_defaults(func=cmd_hardware)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    return args.func(args)
