"""The Counter-based Adaptive Tree (CAT) data structure.

This module implements Algorithm 1 of the paper together with the
SRAM-oriented layout of Figure 5: an array ``I`` of intermediate nodes
(two child pointers plus two leaf flags each), an array ``C`` of counters,
and — for DRCAT — an array ``W`` of 2-bit weight registers.

A CAT guards the ``N`` rows of one DRAM bank.  Leaves are *active
counters*, each owning a contiguous, power-of-two-aligned range of rows.
When a counter at tree level ``l`` reaches the split threshold ``T_l`` it
splits: a free counter is activated as a clone and the range halves.  When
a counter reaches the refresh threshold ``T`` (always the effective
threshold at the maximum level, or everywhere once the counter pool is
exhausted) the tree emits a refresh command for its range plus the two
adjacent rows, and the counter resets.

DRCAT reconfiguration (Section V-B) is implemented by
:meth:`CounterTree.reconfigure`: when a counter's weight saturates, two
zero-weight sibling leaves are merged (releasing one counter and one
intermediate node) and the released counter splits the hot leaf.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import RefreshCommand
from repro.core.thresholds import SplitThresholds

#: Weight register saturation limit (2-bit registers in the paper).
WEIGHT_MAX = 3
#: Weight assigned to freshly split counters during reconfiguration, so
#: they "remain split for a reasonable period of time".
WEIGHT_AFTER_SPLIT = 1
#: Harvest tokens granted per refresh event (and their cap).  Bounds how
#: many merge+split reconfigurations can happen between refreshes, so
#: background split requests cannot thrash the tree.  Sized to let one
#: new hot cluster descend from the pre-split level to maximum depth
#: (plus background noise) between two refresh events.
HARVEST_BUDGET_PER_REFRESH = 32

_NO_NODE = -1


class CounterTree:
    """An adaptive binary tree of row-activation counters for one bank.

    Parameters
    ----------
    n_rows:
        Number of rows ``N`` in the bank; must be a power of two.
    thresholds:
        The :class:`~repro.core.thresholds.SplitThresholds` schedule,
        which also fixes ``M`` (counters) and ``L`` (max levels).
    track_weights:
        Enable the 2-bit weight registers used by DRCAT.  PRCAT leaves
        this off, saving the (modelled) weight-update work.

    Notes
    -----
    The tree is stored exactly as in Figure 5: ``self._child`` /
    ``self._is_leaf`` mirror the I-array (index = intermediate node id,
    two slots per node) and ``self._count`` mirrors the C-array.  Row
    ranges per counter (``Li``/``Ui`` of Algorithm 1) are maintained
    redundantly for O(1) refresh-range emission and for invariant checks;
    hardware would derive them from the traversal path.
    """

    def __init__(
        self,
        n_rows: int,
        thresholds: SplitThresholds,
        track_weights: bool = False,
    ) -> None:
        if n_rows < 2 or n_rows & (n_rows - 1):
            raise ValueError(f"n_rows must be a power of two >= 2, got {n_rows}")
        m = thresholds.n_counters
        if 1 << (thresholds.max_levels - 1) > n_rows:
            raise ValueError(
                f"max_levels={thresholds.max_levels} implies groups smaller than "
                f"one row for n_rows={n_rows}"
            )
        self.n_rows = n_rows
        self.thresholds = thresholds
        self.n_counters = m
        self.max_levels = thresholds.max_levels
        self.track_weights = track_weights
        self._n_addr_bits = n_rows.bit_length() - 1

        # C-array and per-counter metadata.
        self._count = [0] * m
        self._level = [0] * m
        self._low = [0] * m
        self._high = [0] * m
        self._weight = [0] * m
        self._counter_active = [False] * m

        # I-array: children as (left, right) ids; leaf flags per slot.
        self._child_l = [_NO_NODE] * (m - 1)
        self._child_r = [_NO_NODE] * (m - 1)
        self._leaf_l = [False] * (m - 1)
        self._leaf_r = [False] * (m - 1)
        self._inode_active = [False] * (m - 1)

        self._free_counters: list[int] = []
        self._free_inodes: list[int] = []

        # Statistics of interest to the hardware model / ablations.
        self.total_splits = 0
        self.total_merges = 0
        self.total_refresh_commands = 0
        self.total_rows_refreshed = 0
        self.total_sram_reads = 0

        self.reset()

    # ------------------------------------------------------------------
    # construction / reset
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Rebuild the initial tree (used at PRCAT epochs).

        The initial shape is a complete balanced tree with
        ``thresholds.presplit_levels`` levels, i.e. ``2**(λ-1)`` active
        counters, matching Section IV-C's pre-split optimisation.  With
        λ = 1 this degenerates to the single root counter of Algorithm 1.
        """
        m = self.n_counters
        for i in range(m):
            self._count[i] = 0
            self._level[i] = 0
            self._low[i] = 0
            self._high[i] = 0
            self._weight[i] = 0
            self._counter_active[i] = False
        for j in range(m - 1):
            self._child_l[j] = _NO_NODE
            self._child_r[j] = _NO_NODE
            self._leaf_l[j] = False
            self._leaf_r[j] = False
            self._inode_active[j] = False

        lam = self.thresholds.presplit_levels
        n_leaves = 1 << (lam - 1)
        group = self.n_rows // n_leaves
        for i in range(n_leaves):
            self._counter_active[i] = True
            self._level[i] = lam - 1
            self._low[i] = i * group
            self._high[i] = (i + 1) * group - 1
        self._n_active = n_leaves
        self._free_counters = list(range(m - 1, n_leaves - 1, -1))

        n_inodes = n_leaves - 1
        # Heap-style complete tree: inode j has children 2j+1 / 2j+2 while
        # those are inodes, leaves at the bottom level map in order.
        for j in range(n_inodes):
            self._inode_active[j] = True
            left, right = 2 * j + 1, 2 * j + 2
            if left < n_inodes:
                self._child_l[j] = left
                self._leaf_l[j] = False
            else:
                self._child_l[j] = _heap_leaf_index(left, n_inodes)
                self._leaf_l[j] = True
            if right < n_inodes:
                self._child_r[j] = right
                self._leaf_r[j] = False
            else:
                self._child_r[j] = _heap_leaf_index(right, n_inodes)
                self._leaf_r[j] = True
        self._free_inodes = list(range(self.n_counters - 2, n_inodes - 1, -1))
        self._root_is_leaf = n_inodes == 0
        self._root = 0  # counter 0 if root_is_leaf else inode 0
        # Per-counter harvest-blocked flags: a failed harvest only parks
        # the *requesting* counter until the next refresh event, so a
        # permanently-over-threshold background counter cannot starve a
        # newly hot one of its harvest attempt.
        self._harvest_blocked = [False] * m
        self._harvest_budget = HARVEST_BUDGET_PER_REFRESH
        # Batched fast path: the row_block -> counter index map is built
        # lazily, updated in place on splits/merges, and dropped here on
        # reset.  ``_map_version`` lets batch callers detect that ids
        # they gathered earlier are stale.
        self._index_map: np.ndarray | None = None
        self._map_version = getattr(self, "_map_version", 0) + 1
        # Split-threshold table indexed by level, recomputed here because
        # the simulator swaps in a scaled schedule before calling reset().
        self._split_threshold_by_level = np.array(
            [self.thresholds.threshold_for_level(lv) for lv in range(self.max_levels)],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------

    def lookup(self, row: int) -> int:
        """Return the index of the active counter covering ``row``."""
        if self._root_is_leaf:
            self.total_sram_reads += 1
            return self._root
        node = self._root
        shift = self._n_addr_bits - 1
        reads = 1
        while True:
            bit = (row >> shift) & 1
            shift -= 1
            if bit:
                nxt, is_leaf = self._child_r[node], self._leaf_r[node]
            else:
                nxt, is_leaf = self._child_l[node], self._leaf_l[node]
            reads += 1
            if is_leaf:
                self.total_sram_reads += reads
                return nxt
            node = nxt

    def access(self, row: int) -> RefreshCommand | None:
        """Record one activation of ``row`` (lines 4-12 of Algorithm 1).

        Returns a :class:`RefreshCommand` when the covering counter hits
        the refresh threshold ``T``, else ``None``.  Splitting (the RCM
        of Algorithm 1) happens transparently when a split threshold is
        hit and a counter is available.  With weight tracking enabled
        (DRCAT), an exhausted counter pool is replenished on demand by
        merging the coldest sibling-leaf pair — so the tree keeps
        adapting between refresh events instead of waiting for periodic
        reset (PRCAT) or weight saturation.
        """
        idx = self.lookup(row)
        count = self._count[idx] + 1
        if count >= self.thresholds.refresh_threshold:
            # Refresh the counter's rows plus both adjacent rows.
            self._count[idx] = 0
            cmd = RefreshCommand(self._low[idx] - 1, self._high[idx] + 1)
            self.total_refresh_commands += 1
            self.total_rows_refreshed += cmd.row_count(self.n_rows)
            if self.track_weights:
                for i in range(self.n_counters):
                    self._harvest_blocked[i] = False
                self._harvest_budget = HARVEST_BUDGET_PER_REFRESH
                self._bump_weight(idx)
            return cmd
        self._count[idx] = count
        level = self._level[idx]
        if (
            level < self.max_levels - 1
            and count >= self.thresholds.threshold_for_level(level)
        ):
            if self._free_counters:
                # Split threshold reached: activate a clone (RCM).
                self._split(idx, row)
            elif (
                self.track_weights
                and not self._harvest_blocked[idx]
                and self._harvest_budget > 0
            ):
                # DRCAT: free a counter by merging the coldest pair.  The
                # victim must carry less than half the requester's count:
                # under uniform access every sibling pair holds about half
                # the requester's count, so harvesting self-extinguishes
                # (CAT then behaves like SCA, as the paper requires),
                # while under skew/drift cold victims pass easily.  A
                # counter whose weight reached 2 was just refreshed
                # repeatedly — certified hot — so it gets the fully
                # permissive gate (any victim count below T is safe from
                # an immediate refresh) instead of its post-refresh
                # restart count, which would deadlock against stale
                # victim counts until the next blanket refresh.
                if self._weight[idx] >= 2:
                    gate = self.thresholds.refresh_threshold - 1
                else:
                    gate = max(1, count // 2)
                if self.reconfigure(idx, count_gate=gate):
                    self._harvest_budget -= 1
                else:
                    # No suitably cold pair for this counter right now;
                    # it stops trying until the next refresh event
                    # changes counts/weights.
                    self._harvest_blocked[idx] = True
        return None

    def _split(self, idx: int, row: int) -> None:
        """Split leaf ``idx``; ``row`` locates its parent slot."""
        if not self._free_counters:
            # Guard: callers check the free list before splitting; an
            # empty pool here simply means nothing to do.
            return
        new = self._free_counters.pop()
        self._n_active += 1
        low, high = self._low[idx], self._high[idx]
        mid = (low + high) // 2
        self._count[new] = self._count[idx]
        self._level[idx] += 1
        self._level[new] = self._level[idx]
        self._low[idx], self._high[idx] = low, mid
        self._low[new], self._high[new] = mid + 1, high
        self._counter_active[new] = True
        if self.track_weights:
            self._weight[new] = self._weight[idx]

        inode = self._free_inodes.pop()
        self._inode_active[inode] = True
        self._child_l[inode] = idx
        self._child_r[inode] = new
        self._leaf_l[inode] = True
        self._leaf_r[inode] = True
        self._replace_slot(row, old_leaf=idx, new_node=inode)
        self.total_splits += 1
        if self._index_map is not None:
            # Incremental map maintenance: the new counter takes over the
            # upper half of the split range (block-aligned, since splits
            # stop one level above single-block groups).
            shift = self._block_shift
            self._index_map[((mid + 1) >> shift) : (high >> shift) + 1] = new
            self._map_version += 1
            self._refresh_structural_caches()

    def _replace_slot(self, row: int, old_leaf: int, new_node: int) -> None:
        """Repoint the parent slot that held leaf ``old_leaf`` to an inode."""
        if self._root_is_leaf:
            self._root = new_node
            self._root_is_leaf = False
            return
        node = self._root
        shift = self._n_addr_bits - 1
        while True:
            bit = (row >> shift) & 1
            shift -= 1
            if bit:
                nxt, is_leaf = self._child_r[node], self._leaf_r[node]
                if is_leaf and nxt == old_leaf:
                    self._child_r[node] = new_node
                    self._leaf_r[node] = False
                    return
            else:
                nxt, is_leaf = self._child_l[node], self._leaf_l[node]
                if is_leaf and nxt == old_leaf:
                    self._child_l[node] = new_node
                    self._leaf_l[node] = False
                    return
            if is_leaf:
                raise RuntimeError("leaf mismatch during split repointing")
            node = nxt

    # ------------------------------------------------------------------
    # batched fast path (see DESIGN.md, "Batched engine")
    # ------------------------------------------------------------------
    #
    # Every active counter owns a contiguous, power-of-two-aligned row
    # range no smaller than ``n_rows >> (max_levels - 1)`` rows (one
    # *block*).  The flat ``row_block -> counter`` index map therefore
    # turns ``lookup`` into an O(1) array gather, and a whole chunk of
    # activations into one ``np.bincount``.  Splits and merges update
    # the map in place (their ranges are block-aligned) and bump
    # ``_map_version`` so holders of gathered ids re-gather; ``reset``
    # drops it for lazy rebuild from the partition.

    def _build_index_map(self) -> None:
        block_bits = self.max_levels - 1
        shift = self._n_addr_bits - block_bits
        index_map = np.empty(1 << block_bits, dtype=np.int64)
        for low, high, i in self.partition():
            index_map[low >> shift : (high >> shift) + 1] = i
        self._block_shift = shift
        self._index_map = index_map
        self._map_version += 1
        self._refresh_structural_caches()

    def _refresh_structural_caches(self) -> None:
        """Per-counter arrays that only change with the tree structure."""
        level = np.asarray(self._level, dtype=np.int64)
        # Path length per counter: the scalar lookup performs 1 + level
        # SRAM reads (1 when the root itself is the leaf).
        if self._root_is_leaf:
            self._reads_per_counter = np.ones(self.n_counters, dtype=np.int64)
        else:
            self._reads_per_counter = 1 + level
        self._split_threshold_per_counter = self._split_threshold_by_level[level]
        self._below_max_level = level < self.max_levels - 1
        self._child_l_np = np.asarray(self._child_l)
        self._child_r_np = np.asarray(self._child_r)
        self._pair_inodes = (
            np.asarray(self._inode_active)
            & np.asarray(self._leaf_l)
            & np.asarray(self._leaf_r)
        ).nonzero()[0]

    def _headroom(self) -> np.ndarray:
        """Hits each counter absorbs before its next event (never 0).

        An *event* is anything the bulk path cannot apply: a refresh
        (count reaches ``T``), a split (split threshold crossed with a
        free counter available), or a DRCAT harvest attempt (split
        threshold crossed, pool exhausted, requester unblocked and
        budget remaining).  A counter sitting above its split threshold
        with no way to act has refresh-only headroom — exactly like the
        scalar loop, which re-checks and does nothing each access.

        Entries for inactive counters are meaningless (they never appear
        in a gathered id array, and their chunk hit count is always 0).
        """
        count = np.asarray(self._count, dtype=np.int64)
        headroom = self.thresholds.refresh_threshold - count
        if self._free_counters:
            eligible = self._below_max_level
        elif self.track_weights and self._harvest_budget > 0:
            eligible = self._below_max_level & ~np.asarray(
                self._harvest_blocked, dtype=bool
            )
        else:
            # Pool exhausted and no harvesting: refresh-only headroom.
            # (Inactive counters report T, which is harmless — they
            # never appear in a gathered id array.)
            return headroom
        split_headroom = np.maximum(1, self._split_threshold_per_counter - count)
        return np.where(
            eligible, np.minimum(headroom, split_headroom), headroom
        )

    def map_rows_to_counters(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized lookup: the active counter index covering each row.

        Pure query — unlike :meth:`lookup` it does not touch the SRAM
        read statistics.  The result stays valid until the next
        structural mutation (split / merge / reset).
        """
        if self._index_map is None:
            self._build_index_map()
        return self._index_map[rows >> self._block_shift]

    def apply_bulk_counts(self, counts: np.ndarray) -> None:
        """Apply an event-free batch of per-counter hit counts.

        Exact bulk equivalent of the corresponding scalar accesses:
        counter values advance by their hit counts and the SRAM read
        statistic grows by one traversal per access.  The caller (see
        :func:`repro.core.batch.counter_scheme_access_batch`) guarantees
        no counter crosses a threshold within the batch.
        """
        count_list = self._count
        for c in counts.nonzero()[0].tolist():
            count_list[c] += int(counts[c])
        self.total_sram_reads += int(counts @ self._reads_per_counter)

    # ------------------------------------------------------------------
    # DRCAT weight tracking and reconfiguration
    # ------------------------------------------------------------------

    def _bump_weight(self, hot_idx: int) -> None:
        """Refresh-event weight update: hot counter up, all others down.

        A refresh from a counter *below* the maximum level is strong
        evidence the tree is mis-sharpened (a well-adapted tree refreshes
        hot rows from maximum-depth leaves), so it advances the weight by
        two steps; a max-depth refresh advances by one.  Other counters
        decay by one (floor 0).
        """
        hot_step = 2 if self._level[hot_idx] < self.max_levels - 1 else 1
        for i in range(self.n_counters):
            if not self._counter_active[i]:
                continue
            if i == hot_idx:
                self._weight[i] = min(WEIGHT_MAX, self._weight[i] + hot_step)
            elif self._weight[i] > 0:
                self._weight[i] -= 1

    def weight_saturated(self, idx: int) -> bool:
        """True when counter ``idx``'s weight register is at its cap."""
        return self._weight[idx] >= WEIGHT_MAX

    def hottest_saturated_counter(self) -> int | None:
        """Index of a weight-saturated counter, or ``None``."""
        for i in range(self.n_counters):
            if self._counter_active[i] and self._weight[i] >= WEIGHT_MAX:
                return i
        return None

    def reconfigure(self, hot_idx: int, count_gate: int | None = None) -> bool:
        """DRCAT step: merge a cold sibling pair, re-split ``hot_idx``.

        ``count_gate`` caps the inherited count a merge victim may carry
        (defaults to ``T/2``); harvest callers pass the requester's own
        count so only strictly-colder pairs are sacrificed.

        Returns ``True`` when a reconfiguration happened (a suitable
        sibling-leaf pair existed and the hot leaf was splittable).
        """
        if not self._counter_active[hot_idx]:
            return False
        if self._level[hot_idx] >= self.max_levels - 1:
            return False
        if self._high[hot_idx] == self._low[hot_idx]:
            return False
        found = self._find_cold_pair(exclude=hot_idx, count_gate=count_gate)
        if found is None:
            return False
        inode, parent, parent_slot_right = found

        left = self._child_l[inode]
        right = self._child_r[inode]
        if self._index_map is not None:
            # Incremental map maintenance: the promoted left counter
            # absorbs the right sibling's (block-aligned) range.
            shift = self._block_shift
            self._index_map[
                (self._low[right] >> shift) : (self._high[right] >> shift) + 1
            ] = left
            self._map_version += 1
        # Promote the left counter to cover the merged range; release the
        # right counter and the inode.  max() keeps detection sound: the
        # merged region can only be refreshed earlier, never later.
        self._count[left] = max(self._count[left], self._count[right])
        self._level[left] -= 1
        self._high[left] = self._high[right]
        self._counter_active[right] = False
        self._count[right] = 0
        self._weight[right] = 0
        self._free_counters.append(right)
        self._inode_active[inode] = False
        self._free_inodes.append(inode)
        if parent == _NO_NODE:
            self._root = left
            self._root_is_leaf = True
        elif parent_slot_right:
            self._child_r[parent] = left
            self._leaf_r[parent] = True
        else:
            self._child_l[parent] = left
            self._leaf_l[parent] = True
        self._n_active -= 1
        self.total_merges += 1

        # Split the hot counter with the freed resources.  (_split also
        # refreshes the structural caches for the level change above.)
        self._split(hot_idx, self._low[hot_idx])
        sibling = self._find_sibling_of(hot_idx)
        self._weight[hot_idx] = WEIGHT_AFTER_SPLIT
        if sibling is not None:
            self._weight[sibling] = WEIGHT_AFTER_SPLIT
        return True

    def _find_cold_pair(
        self, exclude: int, count_gate: int | None = None
    ) -> tuple[int, int, bool] | None:
        """Locate the *coldest* inode whose children are two weight-zero
        leaves.

        Zero weight alone is not enough: a pair can have weight 0 yet
        carry counts close to the refresh threshold, and merging it (with
        the sound ``max`` count inheritance) would soon refresh a
        double-sized region.  Among the zero-weight sibling pairs the one
        with the smallest merged count is selected, subject to
        ``count_gate`` (default ``T/2``).

        Returns ``(inode, parent_inode, parent_slot_is_right)`` with
        ``parent_inode == -1`` when the inode is the root.  ``exclude``
        (the hot counter) may not be one of the merged leaves.  Ties on
        the merged count break toward the lowest inode index, a total
        order independent of traversal history.
        """
        if self._root_is_leaf:
            return None
        # Merging lifts the surviving counter one level up; never lift
        # above the pre-split skeleton (the balanced hardware baseline),
        # or a later refresh would cover a larger group than even SCA's.
        min_child_level = self.thresholds.presplit_levels
        # The inherited count must stay below the refresh threshold so a
        # merge can never trigger an immediate refresh; the min-count
        # preference below picks genuinely cold pairs first.  (A stricter
        # T/2 ceiling starves harvesting mid-epoch: regions that went
        # cold keep their stale counts until the next blanket refresh.)
        ceiling = self.thresholds.refresh_threshold - 1
        count_gate = ceiling if count_gate is None else min(ceiling, count_gate)
        if self._index_map is not None:
            # Batch mode keeps these in the structural caches.
            inodes = self._pair_inodes
            child_l, child_r = self._child_l_np, self._child_r_np
        else:
            inodes = (
                np.asarray(self._inode_active)
                & np.asarray(self._leaf_l)
                & np.asarray(self._leaf_r)
            ).nonzero()[0]
            child_l = np.asarray(self._child_l)
            child_r = np.asarray(self._child_r)
        if not len(inodes):
            return None
        left = child_l[inodes]
        right = child_r[inodes]
        count = np.asarray(self._count)
        weight = np.asarray(self._weight)
        merged_count = np.maximum(count[left], count[right])
        eligible = (
            (left != exclude)
            & (right != exclude)
            & (weight[left] == 0)
            & (weight[right] == 0)
            & (np.asarray(self._level)[left] >= min_child_level)
            & (merged_count <= count_gate)
        )
        chosen = eligible.nonzero()[0]
        if not len(chosen):
            return None
        # argmin returns the first minimum; inodes is ascending, so ties
        # resolve to the lowest inode index.
        inode = int(inodes[chosen[np.argmin(merged_count[chosen])]])
        parent, slot_right = self._parent_of_inode(inode)
        return (inode, parent, slot_right)

    def _parent_of_inode(self, inode: int) -> tuple[int, bool]:
        """Locate the parent slot pointing at ``inode`` (root: ``-1``)."""
        if self._root == inode:
            return _NO_NODE, False
        # Follow the address bits of any row the inode covers.
        row = self._low[self._child_l[inode]]
        node = self._root
        shift = self._n_addr_bits - 1
        while True:
            bit = (row >> shift) & 1
            shift -= 1
            nxt = self._child_r[node] if bit else self._child_l[node]
            if nxt == inode:
                return node, bool(bit)
            node = nxt

    def _find_sibling_of(self, idx: int) -> int | None:
        """Return the leaf sibling of leaf ``idx`` if it has one."""
        if self._root_is_leaf:
            return None
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._leaf_l[node] and self._child_l[node] == idx:
                return self._child_r[node] if self._leaf_r[node] else None
            if self._leaf_r[node] and self._child_r[node] == idx:
                return self._child_l[node] if self._leaf_l[node] else None
            if not self._leaf_l[node]:
                stack.append(self._child_l[node])
            if not self._leaf_r[node]:
                stack.append(self._child_r[node])
        return None

    # ------------------------------------------------------------------
    # checkpointable state (SchemeState protocol; see repro.api)
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable capture of every behaviour-bearing register.

        The free lists are stored *in order*: splits pop from their
        tails, so list order determines which physical counter/inode a
        future split activates — part of bit-identical resumption even
        though it is invisible to the partition.  Derived structures
        (the row-block index map and its per-counter caches) are
        deliberately absent: they rebuild lazily and deterministically
        from the captured registers.
        """
        return {
            "count": list(self._count),
            "level": list(self._level),
            "low": list(self._low),
            "high": list(self._high),
            "weight": list(self._weight),
            "counter_active": [int(b) for b in self._counter_active],
            "child_l": list(self._child_l),
            "child_r": list(self._child_r),
            "leaf_l": [int(b) for b in self._leaf_l],
            "leaf_r": [int(b) for b in self._leaf_r],
            "inode_active": [int(b) for b in self._inode_active],
            "free_counters": list(self._free_counters),
            "free_inodes": list(self._free_inodes),
            "n_active": self._n_active,
            "root": self._root,
            "root_is_leaf": int(self._root_is_leaf),
            "harvest_blocked": [int(b) for b in self._harvest_blocked],
            "harvest_budget": self._harvest_budget,
            "totals": {
                "splits": self.total_splits,
                "merges": self.total_merges,
                "refresh_commands": self.total_refresh_commands,
                "rows_refreshed": self.total_rows_refreshed,
                "sram_reads": self.total_sram_reads,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite a freshly built tree (same config) from a state doc.

        The tree must have been constructed with the same ``n_rows`` and
        thresholds schedule the state was captured under; after the call
        its future behaviour is bit-identical to the captured instance.
        """
        m = self.n_counters
        for name in ("count", "level", "low", "high", "weight"):
            values = state[name]
            if len(values) != m:
                raise ValueError(
                    f"tree state field {name!r} has {len(values)} "
                    f"entries, tree has {m} counters"
                )
        self._count = [int(v) for v in state["count"]]
        self._level = [int(v) for v in state["level"]]
        self._low = [int(v) for v in state["low"]]
        self._high = [int(v) for v in state["high"]]
        self._weight = [int(v) for v in state["weight"]]
        self._counter_active = [bool(v) for v in state["counter_active"]]
        self._child_l = [int(v) for v in state["child_l"]]
        self._child_r = [int(v) for v in state["child_r"]]
        self._leaf_l = [bool(v) for v in state["leaf_l"]]
        self._leaf_r = [bool(v) for v in state["leaf_r"]]
        self._inode_active = [bool(v) for v in state["inode_active"]]
        self._free_counters = [int(v) for v in state["free_counters"]]
        self._free_inodes = [int(v) for v in state["free_inodes"]]
        self._n_active = int(state["n_active"])
        self._root = int(state["root"])
        self._root_is_leaf = bool(state["root_is_leaf"])
        self._harvest_blocked = [bool(v) for v in state["harvest_blocked"]]
        self._harvest_budget = int(state["harvest_budget"])
        totals = state["totals"]
        self.total_splits = int(totals["splits"])
        self.total_merges = int(totals["merges"])
        self.total_refresh_commands = int(totals["refresh_commands"])
        self.total_rows_refreshed = int(totals["rows_refreshed"])
        self.total_sram_reads = int(totals["sram_reads"])
        # Derived batch-path structures rebuild lazily from the restored
        # registers; bump the version so stale gathered ids re-gather.
        self._index_map = None
        self._map_version += 1
        self.check_invariants()

    def to_arrays(self) -> dict:
        """Hot per-counter registers as int64 arrays (SoA layout).

        The jit tier's kernel boundary: counter values plus the
        structural registers a kernel needs to interpret them.  Cold
        state (child links, free-list order, totals) stays object-side —
        it only changes through scalar ``access`` replays, which the jit
        driver routes through the ordinary oracle path.
        """
        return {
            "count": np.asarray(self._count, dtype=np.int64),
            "level": np.asarray(self._level, dtype=np.int64),
            "low": np.asarray(self._low, dtype=np.int64),
            "high": np.asarray(self._high, dtype=np.int64),
            "weight": np.asarray(self._weight, dtype=np.int64),
            "counter_active": np.asarray(
                self._counter_active, dtype=np.int64
            ),
        }

    def from_arrays(self, arrays: dict) -> None:
        """Import (kernel-mutated) registers back into canonical lists.

        Lossless inverse of :meth:`to_arrays`; derived batch-path
        structures are invalidated so they rebuild from the imported
        registers.
        """
        m = self.n_counters
        for name in ("count", "level", "low", "high", "weight"):
            if len(arrays[name]) != m:
                raise ValueError(
                    f"array field {name!r} has {len(arrays[name])} "
                    f"entries, tree has {m} counters"
                )
        self._count = [int(v) for v in arrays["count"]]
        self._level = [int(v) for v in arrays["level"]]
        self._low = [int(v) for v in arrays["low"]]
        self._high = [int(v) for v in arrays["high"]]
        self._weight = [int(v) for v in arrays["weight"]]
        self._counter_active = [bool(v) for v in arrays["counter_active"]]
        self._index_map = None
        self._map_version += 1
        self._refresh_structural_caches()

    # ------------------------------------------------------------------
    # introspection (tests, invariants, reports)
    # ------------------------------------------------------------------

    @property
    def active_counters(self) -> int:
        """Number of currently active (leaf) counters."""
        return self._n_active

    @property
    def free_counters(self) -> int:
        """Number of counters still available for splits."""
        return len(self._free_counters)

    def counter_state(self, idx: int) -> dict[str, int]:
        """Expose one counter's registers (for tests and examples)."""
        return {
            "count": self._count[idx],
            "level": self._level[idx],
            "low": self._low[idx],
            "high": self._high[idx],
            "weight": self._weight[idx],
            "active": int(self._counter_active[idx]),
        }

    def partition(self) -> list[tuple[int, int, int]]:
        """Sorted ``(low, high, counter_index)`` of all active counters."""
        parts = [
            (self._low[i], self._high[i], i)
            for i in range(self.n_counters)
            if self._counter_active[i]
        ]
        parts.sort()
        return parts

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation.

        Checks DESIGN.md invariants 1 and 3: the active counters tile
        ``[0, N)`` exactly, counter/inode accounting is conserved, and the
        pointer structure reaches each active counter exactly once.
        """
        parts = self.partition()
        if not parts:
            raise AssertionError("no active counters")
        if parts[0][0] != 0:
            raise AssertionError(f"partition does not start at 0: {parts[0]}")
        for (lo1, hi1, _), (lo2, _hi2, _) in zip(parts, parts[1:]):
            if lo2 != hi1 + 1:
                raise AssertionError(f"gap/overlap between {hi1} and {lo2}")
        if parts[-1][1] != self.n_rows - 1:
            raise AssertionError(f"partition does not end at N-1: {parts[-1]}")
        if self._n_active + len(self._free_counters) != self.n_counters:
            raise AssertionError("counter conservation violated")
        reached = set()
        if self._root_is_leaf:
            reached.add(self._root)
        else:
            stack = [self._root]
            seen_inodes = set()
            while stack:
                node = stack.pop()
                if node in seen_inodes:
                    raise AssertionError(f"inode {node} reached twice")
                seen_inodes.add(node)
                for child, is_leaf in (
                    (self._child_l[node], self._leaf_l[node]),
                    (self._child_r[node], self._leaf_r[node]),
                ):
                    if is_leaf:
                        if child in reached:
                            raise AssertionError(f"leaf {child} reached twice")
                        reached.add(child)
                    else:
                        stack.append(child)
            if len(seen_inodes) != self._n_active - 1:
                raise AssertionError(
                    f"{len(seen_inodes)} inodes for {self._n_active} leaves"
                )
        active = {i for i in range(self.n_counters) if self._counter_active[i]}
        if reached != active:
            raise AssertionError(f"reachable {reached} != active {active}")
        for lo, hi, i in parts:
            width = hi - lo + 1
            expected = self.n_rows >> self._level[i]
            if width != expected:
                raise AssertionError(
                    f"counter {i} at level {self._level[i]} covers {width} rows, "
                    f"expected {expected}"
                )

    def depth_histogram(self) -> dict[int, int]:
        """Map level -> number of active counters at that level."""
        hist: dict[int, int] = {}
        for i in range(self.n_counters):
            if self._counter_active[i]:
                hist[self._level[i]] = hist.get(self._level[i], 0) + 1
        return hist

    def is_balanced(self) -> bool:
        """True when all active counters sit at one level (SCA-like)."""
        return len(self.depth_histogram()) == 1


def _heap_leaf_index(heap_pos: int, n_inodes: int) -> int:
    """Map a heap position in a complete tree to its in-order leaf rank.

    For a complete tree with ``n_inodes = 2**k - 1`` internal nodes the
    leaves occupy heap positions ``n_inodes .. 2*n_inodes``; position
    order equals left-to-right order, which is the counter index layout
    :meth:`CounterTree.reset` uses.
    """
    return heap_pos - n_inodes
