"""Split-threshold schedules for the Counter-based Adaptive Tree.

Section IV-D of the paper shows that the CAT's effectiveness is sensitive
to the *split thresholds* ``T_l`` — the counter value at which a level-
``l`` leaf splits into two level-``l+1`` leaves.  Three facts anchor the
schedule:

* ``T_{L-1} = T`` (the refresh threshold itself terminates the schedule);
* ``T_{L-2} = T/2`` so the tree always finishes growing before any counter
  can reach ``T``;
* at the *critical bias* (the access skew at which an unbalanced tree
  starts beating the balanced one, ``x > 3w`` in the paper's 4-counter
  example) the tie condition gives ``T_{l+1} = 2 T_l`` between adjacent
  levels near the start of growth.

The paper's generalized model lives in a technical report that is not
public; for the one configuration whose values the paper prints
(``T = 32768, M = 64, L = 10``: 5155, 10309, 12886, 16384, 32768) we use
the published constants verbatim.  For every other configuration we
provide two strategies:

``"model"`` (default)
    A cost-balance schedule derived from the same reasoning as the paper's
    4-counter example, implemented in
    :func:`repro.analysis.cost_model.derive_split_thresholds`.  It
    interpolates between the doubling regime at the first split level and
    the fixed ``T/2 → T`` tail, which reproduces the published M=64/L=10
    values to within a few percent.

``"geometric"``
    The naive repeated-doubling schedule ``T_l = T / 2^(L-1-l)``, useful
    as an ablation baseline (bench ``bench_ablation_thresholds``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Published split thresholds, keyed by (refresh_threshold, M, L).
#: Values are for levels m-1 .. L-1 where m = log2(M).
PAPER_THRESHOLDS: dict[tuple[int, int, int], tuple[int, ...]] = {
    (32768, 64, 10): (5155, 10309, 12886, 16384, 32768),
}


def _model_schedule(refresh_threshold: int, first_level: int, last_level: int) -> list[int]:
    """Cost-balance schedule between ``first_level`` and ``last_level``.

    The tail is pinned at ``T/2`` and ``T``.  The head starts the doubling
    regime; interior levels grow by a smoothly decreasing ratio so the
    schedule matches the published (T=32K, M=64, L=10) values closely.

    The schedule for ``k = last_level - first_level + 1`` levels is built
    backwards from the tail:

    * ``T[last] = T``
    * ``T[last-1] = T/2``
    * remaining head levels are spaced so that the *first* ratio is 2
      (the critical-bias tie condition) and intermediate ratios shrink
      geometrically toward ~1.25, mirroring the published sequence
      (ratios 2.0, 1.25, 1.27, 2.0 for the anchor configuration).
    """
    t = refresh_threshold
    k = last_level - first_level + 1
    if k <= 0:
        return []
    if k == 1:
        return [t]
    if k == 2:
        return [t // 2, t]
    # Head: levels first..last-2 (k-1 values ending at T/2).
    # We want value[0]*2 == value[1] (tie condition) and the remaining
    # ratios easing toward 5/4 as in the anchor sequence.
    n_head = k - 1  # number of values up to and including T/2
    values = [0.0] * n_head
    values[-1] = t / 2
    # Work backwards with ratios: last head gap uses ratio r_i that decays
    # from 5/4 upward as we get closer to T/2, and the very first gap is 2.
    ratios = _head_ratios(n_head)
    for i in range(n_head - 2, -1, -1):
        values[i] = values[i + 1] / ratios[i]
    schedule = [int(round(v)) for v in values] + [t]
    # Monotonicity guard (rounding could create ties on tiny T).
    for i in range(1, len(schedule)):
        if schedule[i] <= schedule[i - 1]:
            schedule[i] = schedule[i - 1] + 1
    return schedule


def _head_ratios(n_head: int) -> list[float]:
    """Ratios between consecutive head values (length ``n_head - 1``).

    The first ratio is the tie-condition 2.0; subsequent ratios ease to
    5/4 then drift slightly up, matching the anchor sequence
    2.0, 1.25, 1.2715 (then the pinned final jump T/2 -> T of 2.0).
    """
    n_ratios = n_head - 1
    if n_ratios <= 0:
        return []
    if n_ratios == 1:
        return [2.0]
    ratios = [2.0]
    # Remaining ratios: geometric easing from 1.25 toward ~1.30.
    for j in range(1, n_ratios):
        frac = (j - 1) / max(1, n_ratios - 2) if n_ratios > 2 else 0.0
        ratios.append(1.25 + 0.0215 * frac * (n_ratios - 1))
    return ratios


def _geometric_schedule(refresh_threshold: int, first_level: int, last_level: int) -> list[int]:
    """Repeated-doubling schedule ``T_l = T / 2^(last_level - l)``."""
    out = []
    for level in range(first_level, last_level + 1):
        out.append(max(1, refresh_threshold >> (last_level - level)))
    return out


@dataclass(frozen=True)
class SplitThresholds:
    """The per-level split-threshold schedule of one CAT configuration.

    Attributes
    ----------
    refresh_threshold:
        The crosstalk refresh threshold ``T`` (e.g. 32768).
    n_counters:
        ``M``, the number of hardware counters per bank (power of two).
    max_levels:
        ``L``, the maximum tree depth (levels ``0 .. L-1``).
    presplit_levels:
        ``λ``: the CAT starts from a complete balanced tree with λ levels
        (λ = log2(M) in the paper's model derivation, which leaves M/2
        counters free to grow the tree non-uniformly).
    values:
        Tuple of thresholds for levels ``presplit_levels-1 .. L-1``;
        ``values[-1] == refresh_threshold``.
    strategy:
        Which schedule produced the values (``"paper"``, ``"model"`` or
        ``"geometric"``).
    """

    refresh_threshold: int
    n_counters: int
    max_levels: int
    presplit_levels: int
    values: tuple[int, ...]
    strategy: str

    @classmethod
    def create(
        cls,
        refresh_threshold: int,
        n_counters: int,
        max_levels: int,
        strategy: str = "auto",
        presplit_levels: int | None = None,
    ) -> "SplitThresholds":
        """Build a schedule for a (T, M, L) configuration.

        ``strategy="auto"`` selects the paper-published table when the
        configuration matches, otherwise the cost-balance model.
        """
        if n_counters < 2 or n_counters & (n_counters - 1):
            raise ValueError(f"n_counters must be a power of two >= 2, got {n_counters}")
        m = int(math.log2(n_counters))
        if presplit_levels is None:
            presplit_levels = m
        if not 1 <= presplit_levels <= m:
            raise ValueError(
                f"presplit_levels must be in [1, log2(M)={m}], got {presplit_levels}"
            )
        if max_levels <= m:
            raise ValueError(
                f"max_levels (L={max_levels}) must exceed log2(M)={m} for the "
                "tree to have room to grow; use SCA for a purely static scheme"
            )
        first_level = presplit_levels - 1
        last_level = max_levels - 1
        key = (refresh_threshold, n_counters, max_levels)
        if strategy == "auto":
            strategy = "paper" if key in PAPER_THRESHOLDS else "model"
        if strategy == "paper":
            if key not in PAPER_THRESHOLDS:
                raise KeyError(
                    f"no published thresholds for T={refresh_threshold}, "
                    f"M={n_counters}, L={max_levels}; use strategy='model'"
                )
            published = PAPER_THRESHOLDS[key]
            # Published values cover levels m-1 .. L-1.  If λ < m the head
            # levels below m-1 extend by halving.
            values = list(published)
            for _ in range(m - presplit_levels):
                values.insert(0, max(1, values[0] // 2))
        elif strategy == "model":
            values = _model_schedule(refresh_threshold, first_level, last_level)
        elif strategy == "geometric":
            values = _geometric_schedule(refresh_threshold, first_level, last_level)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        values_t = tuple(values)
        if len(values_t) != last_level - first_level + 1:
            raise AssertionError("schedule length mismatch")
        if values_t[-1] != refresh_threshold:
            raise AssertionError("schedule must terminate at the refresh threshold")
        if any(b <= a for a, b in zip(values_t, values_t[1:])):
            raise AssertionError(f"schedule must be strictly increasing: {values_t}")
        return cls(
            refresh_threshold=refresh_threshold,
            n_counters=n_counters,
            max_levels=max_levels,
            presplit_levels=presplit_levels,
            values=values_t,
            strategy=strategy,
        )

    def threshold_for_level(self, level: int) -> int:
        """Split threshold ``T_l`` for a counter at tree level ``level``.

        Levels below the pre-split depth never hold an active counter once
        the pre-split completes, but during construction-from-root (λ=1)
        they use the first scheduled value extended by halving.
        """
        first_level = self.presplit_levels - 1
        if level >= self.max_levels - 1:
            return self.refresh_threshold
        if level < first_level:
            # Extend below the schedule by halving (only reachable when a
            # caller builds from the root with λ < presplit schedule head).
            return max(1, self.values[0] >> (first_level - level))
        return self.values[level - first_level]

    def scaled(self, factor: float) -> "SplitThresholds":
        """Return a schedule with every threshold divided by ``factor``.

        Used by the simulator's scale-invariance machinery: dividing T and
        all split thresholds by the same factor (while dividing access
        counts identically) preserves the tree dynamics.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        new_values = [max(2, int(round(v / factor))) for v in self.values]
        # Re-impose strict monotonicity after rounding.
        for i in range(1, len(new_values)):
            if new_values[i] <= new_values[i - 1]:
                new_values[i] = new_values[i - 1] + 1
        return SplitThresholds(
            refresh_threshold=new_values[-1],
            n_counters=self.n_counters,
            max_levels=self.max_levels,
            presplit_levels=self.presplit_levels,
            values=tuple(new_values),
            strategy=self.strategy + "+scaled",
        )
