"""Core mitigation schemes: the CAT family and the SCA / PRA baselines.

Schemes are constructed through the registry in
:mod:`repro.core.registry`: each registers a name, a typed params
dataclass and a factory, and :func:`make_scheme` validates per-scheme
parameters against it.  See :class:`repro.experiments.SchemeSpec` for
the declarative form experiment specs carry.
"""

from __future__ import annotations

from repro.core.base import (
    ActivationLedger,
    MitigationScheme,
    RefreshCommand,
    SchemeStats,
)
from repro.core.cat import PRCATScheme
from repro.core.counter_cache import CounterCacheScheme
from repro.core.counter_tree import CounterTree
from repro.core.drcat import DRCATScheme
from repro.core.pra import PRAScheme
from repro.core.registry import (
    CatParams,
    CCacheParams,
    DrcatParams,
    PraParams,
    PrcatParams,
    ScaParams,
    SchemeInfo,
    build_params,
    get_scheme_info,
    make_scheme,
    params_from_dict,
    params_to_dict,
    register_scheme,
    scheme_names,
)
from repro.core.sca import SCAScheme
from repro.core.thresholds import PAPER_THRESHOLDS, SplitThresholds

__all__ = [
    "ActivationLedger",
    "MitigationScheme",
    "RefreshCommand",
    "SchemeStats",
    "CounterTree",
    "SplitThresholds",
    "PAPER_THRESHOLDS",
    "SCAScheme",
    "CounterCacheScheme",
    "PRAScheme",
    "PRCATScheme",
    "DRCATScheme",
    "make_scheme",
    # registry surface
    "SchemeInfo",
    "register_scheme",
    "scheme_names",
    "get_scheme_info",
    "build_params",
    "params_to_dict",
    "params_from_dict",
    "ScaParams",
    "PraParams",
    "CatParams",
    "PrcatParams",
    "DrcatParams",
    "CCacheParams",
]
