"""Core mitigation schemes: the CAT family and the SCA / PRA baselines."""

from __future__ import annotations

from repro.core.base import (
    ActivationLedger,
    MitigationScheme,
    RefreshCommand,
    SchemeStats,
)
from repro.core.cat import PRCATScheme
from repro.core.counter_cache import CounterCacheScheme
from repro.core.counter_tree import CounterTree
from repro.core.drcat import DRCATScheme
from repro.core.pra import PRAScheme
from repro.core.sca import SCAScheme
from repro.core.thresholds import PAPER_THRESHOLDS, SplitThresholds


def make_scheme(
    kind: str,
    n_rows: int,
    refresh_threshold: int,
    *,
    n_counters: int = 64,
    max_levels: int = 11,
    probability: float = 0.002,
    threshold_strategy: str = "auto",
    prng=None,
) -> MitigationScheme:
    """Factory used by the simulator and benchmarks.

    Parameters mirror the paper's configurations: ``kind`` is one of
    ``"sca"``, ``"pra"``, ``"prcat"``, ``"drcat"``.  CAT variants take
    ``n_counters`` (M) and ``max_levels`` (L); PRA takes ``probability``
    and an optional PRNG instance.
    """
    kind = kind.lower()
    if kind == "sca":
        return SCAScheme(n_rows, refresh_threshold, n_counters)
    if kind == "ccache":
        return CounterCacheScheme(n_rows, refresh_threshold)
    if kind == "pra":
        return PRAScheme(n_rows, refresh_threshold, probability, prng=prng)
    if kind == "prcat":
        return PRCATScheme(
            n_rows,
            refresh_threshold,
            n_counters,
            max_levels,
            threshold_strategy=threshold_strategy,
        )
    if kind == "drcat":
        return DRCATScheme(
            n_rows,
            refresh_threshold,
            n_counters,
            max_levels,
            threshold_strategy=threshold_strategy,
        )
    raise ValueError(f"unknown scheme kind {kind!r}")


__all__ = [
    "ActivationLedger",
    "MitigationScheme",
    "RefreshCommand",
    "SchemeStats",
    "CounterTree",
    "SplitThresholds",
    "PAPER_THRESHOLDS",
    "SCAScheme",
    "CounterCacheScheme",
    "PRAScheme",
    "PRCATScheme",
    "DRCATScheme",
    "make_scheme",
]
