"""Static Counter Assignment (SCA) — the deterministic baseline.

SCA_M partitions the ``N`` rows of a bank into ``M`` fixed, equal groups
and dedicates one ``log2(T)``-bit counter to each.  Every activation
increments the covering group's counter; when a counter reaches the
refresh threshold ``T`` it resets and the controller refreshes the
``N/M + 2`` rows of the group plus the two rows adjacent to the group
(Section III-B of the paper).

``M = N`` degenerates to the one-counter-per-row scheme, and small ``M``
shows the coarse-group refresh cost that motivates CAT.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MitigationScheme, RefreshCommand
from repro.core.batch import check_rows


class SCAScheme(MitigationScheme):
    """Uniform static partition of a bank into ``n_counters`` groups."""

    name = "sca"

    def __init__(self, n_rows: int, refresh_threshold: int, n_counters: int) -> None:
        super().__init__(n_rows, refresh_threshold)
        if n_counters <= 0:
            raise ValueError(f"n_counters must be positive, got {n_counters}")
        if n_rows % n_counters:
            raise ValueError(
                f"n_counters={n_counters} must divide n_rows={n_rows} for "
                "uniform groups"
            )
        self.n_counters = n_counters
        self.group_size = n_rows // n_counters
        self._counts = [0] * n_counters

    def access(self, row: int) -> list[RefreshCommand]:
        """Count the activation; emit a group refresh on threshold."""
        self._check_row(row)
        self.stats.activations += 1
        group = row // self.group_size
        count = self._counts[group] + 1
        if count < self.refresh_threshold:
            self._counts[group] = count
            return []
        self._counts[group] = 0
        low = group * self.group_size
        cmd = RefreshCommand(low - 1, low + self.group_size, reason="threshold")
        self.stats.refresh_commands += 1
        self.stats.rows_refreshed += cmd.row_count(self.n_rows)
        return [cmd]

    def access_batch(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Vectorized exact batch: analytic event positions, one pass.

        SCA's counters are *independent* and the row → group map is
        static, so — unlike the tree schemes, whose structure mutates at
        events — every threshold crossing of a whole batch is computable
        up front: counter ``c`` starting at ``s`` with ``t`` hits crosses
        ``k = (s + t) // T`` times, at its ``(T - s)``-th, ``(2T - s)``-th,
        … occurrence, and finishes at ``s + t - kT``.  One bincount
        resolves the common no-event batch; only crossing counters pay
        an occurrence scan (once per counter, not once per event).
        """
        n = len(rows)
        if n == 0:
            return []
        check_rows(rows, self.n_rows)
        threshold = self.refresh_threshold
        groups = rows // self.group_size
        counts = np.bincount(groups, minlength=self.n_counters)
        start = np.asarray(self._counts, dtype=np.int64)
        total = start + counts
        crossings = total // threshold
        events: list[tuple[int, list[RefreshCommand]]] = []
        n_events = int(crossings.sum())
        if n_events:
            for c in np.flatnonzero(crossings).tolist():
                occurrences = np.flatnonzero(groups == c)
                first = threshold - int(start[c])  # 1-based hit index
                picks = np.arange(first - 1, len(occurrences), threshold)
                low = c * self.group_size
                cmd = RefreshCommand(
                    low - 1, low + self.group_size, reason="threshold"
                )
                self.stats.rows_refreshed += (
                    len(picks) * cmd.row_count(self.n_rows)
                )
                for position in occurrences[picks].tolist():
                    events.append((position, [cmd]))
            events.sort(key=lambda event: event[0])
            self.stats.refresh_commands += n_events
        self._counts = (total - crossings * threshold).tolist()
        self.stats.activations += n
        return events

    def access_batch_jit(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Jit tier: one sequential counter sweep, scalar semantics.

        The analytic batched path above resolves events with one
        bincount plus per-crossing-counter occurrence scans; the kernel
        instead walks the accesses once (compiled when numba is
        present), producing the identical events and final counters.
        """
        from repro.core.jitkern import k_sca_batch

        n = len(rows)
        if n == 0:
            return []
        check_rows(rows, self.n_rows)
        groups = np.asarray(rows // self.group_size, dtype=np.int64)
        arrays = self.to_arrays()
        counts = arrays["counts"]
        event_pos = np.empty(n, dtype=np.int64)
        n_events = int(k_sca_batch(
            groups, counts, self.refresh_threshold, event_pos
        ))
        self.from_arrays(arrays)
        self.stats.activations += n
        events: list[tuple[int, list[RefreshCommand]]] = []
        for k in range(n_events):
            position = int(event_pos[k])
            low = int(groups[position]) * self.group_size
            cmd = RefreshCommand(
                low - 1, low + self.group_size, reason="threshold"
            )
            self.stats.refresh_commands += 1
            self.stats.rows_refreshed += cmd.row_count(self.n_rows)
            events.append((position, [cmd]))
        return events

    def to_arrays(self) -> dict:
        """SoA protocol: the per-group counters as one int64 array."""
        return {"counts": np.asarray(self._counts, dtype=np.int64)}

    def from_arrays(self, arrays: dict) -> None:
        """SoA protocol: import kernel-mutated counters."""
        counts = arrays["counts"]
        if len(counts) != self.n_counters:
            raise ValueError(
                f"array carries {len(counts)} counters, scheme has "
                f"{self.n_counters}"
            )
        self._counts = [int(c) for c in counts]

    def counter_value(self, group: int) -> int:
        """Current count of group ``group`` (test/inspection hook)."""
        return self._counts[group]

    def to_state(self) -> dict:
        """SchemeState protocol: counters + stats capture SCA entirely."""
        return {
            "scheme": self.name,
            "counts": list(self._counts),
            "stats": self.stats.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """SchemeState protocol: overwrite counters + stats."""
        counts = [int(c) for c in state["counts"]]
        if len(counts) != self.n_counters:
            raise ValueError(
                f"state carries {len(counts)} counters, scheme has "
                f"{self.n_counters}"
            )
        self._counts = counts
        self.stats.restore(state["stats"])

    @property
    def counters_in_use(self) -> int:
        """All M counters are always active in SCA."""
        return self.n_counters

    def on_interval_boundary(self) -> None:
        """Reset all counters at each auto-refresh epoch.

        At a 64 ms boundary every row has just been auto-refreshed, so all
        accumulated aggressor pressure is gone and the counters restart —
        the same epoch semantics the CAT schemes use.
        """
        self._counts = [0] * self.n_counters
        self.stats.resets += 1

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"SCA_{self.n_counters}(n_rows={self.n_rows}, "
            f"T={self.refresh_threshold}, group={self.group_size})"
        )
