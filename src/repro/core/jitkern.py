"""Optionally-compiled kernels for the ``jit`` engine tier.

The ``jit`` engine (see DESIGN.md, "The compiled tier") replaces the
per-window numpy passes of the batched engine with sequential kernels
over structure-of-arrays state.  When :mod:`numba` is importable every
kernel below is compiled with ``@njit(cache=True)`` — the compile
artifact lands in numba's on-disk cache, so the warm-up cost is paid
once per machine, not once per process.  When numba is absent the
*identical* function objects run as plain Python: the tier stays
selectable everywhere, just without the speedup, and tier-1 never grows
a hard dependency.

Every kernel is written in the restricted style both executions share:
typed numpy arrays in, scalar control flow, no Python objects.  The
kernels mutate caller-provided arrays in place and return event
positions; the Python drivers around them (``access_batch_jit`` on each
scheme) own all object-level bookkeeping — command construction, stats,
and conversion between the canonical list state and the SoA form
(``to_arrays``/``from_arrays``) — so checkpointing and the SchemeState
protocol are untouched by the tier.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_VERSION: "str | None" = _numba.__version__
except ImportError:  # pragma: no cover - the tier-1 default
    _numba = None
    NUMBA_VERSION = None


def numba_available() -> bool:
    """True when the compiled tier actually compiles."""
    return NUMBA_VERSION is not None


def jit_tier_label() -> str:
    """Human-readable tier status for CLI banners and bench metadata."""
    if NUMBA_VERSION is not None:
        return f"compiled (numba {NUMBA_VERSION})"
    return "fallback (pure python)"


def maybe_njit(func):
    """``numba.njit(cache=True)`` when available, identity otherwise.

    The fallback returns ``func`` itself — not a wrapper — so the pure
    Python path executes the very same bytecode the compiled path was
    built from.  Exactness arguments therefore cover both executions at
    once.
    """
    if _numba is None:
        return func
    return _numba.njit(cache=True)(func)


@maybe_njit
def k_tree_scan(ids, start, headroom, hits):
    """Fused count + first-event scan for the tree schemes.

    Walks ``ids[start:]`` accumulating per-counter occurrence counts
    into ``hits`` (int64, zeroed by the caller) and returns the index of
    the first access at which some counter reaches its ``headroom``
    (hits-until-next-event, taken at ``start``), or ``-1`` when the
    remainder is event-free.  On an event, ``hits`` holds the counts of
    the event-free prefix only — the event access itself is *not*
    counted, exactly matching the prefix the batched engine applies via
    ``apply_bulk_counts`` before replaying the event through scalar
    ``access``.
    """
    for i in range(start, ids.shape[0]):
        c = ids[i]
        h = hits[c] + 1
        if h >= headroom[c]:
            return i
        hits[c] = h
    return -1


@maybe_njit
def k_sca_batch(groups, counts, threshold, event_pos):
    """Sequential SCA counter scan: scalar ``access`` semantics exactly.

    Increments ``counts[g]`` per access; a counter reaching
    ``threshold`` resets to zero and records the access index in
    ``event_pos``.  Returns the number of events recorded.  Positions
    come out in stream order because the scan is sequential.
    """
    n_events = 0
    for i in range(groups.shape[0]):
        g = groups[i]
        c = counts[g] + 1
        if c < threshold:
            counts[g] = c
        else:
            counts[g] = 0
            event_pos[n_events] = i
            n_events += 1
    return n_events


@maybe_njit
def k_ccache_batch(
    rows,
    mem,
    tags,
    counts,
    valid,
    threshold,
    n_ways,
    line_width,
    n_sets,
    n_rows,
    event_pos,
    io,
):
    """Full set-associative counter-cache walk in SoA form.

    State layout (all int64, mutated in place):

    - ``mem[n_rows]`` — the DRAM backing counters;
    - ``tags[n_sets, n_ways]`` — cached line tags, way 0 most recently
      used;
    - ``counts[n_sets, n_ways, line_width]`` — per-way counter lines;
    - ``valid[n_sets]`` — number of occupied ways per set;
    - ``io[3]`` — hit / miss / writeback deltas (accumulated).

    Replicates ``CounterCacheScheme.access`` exactly: hit increments
    move the way to MRU; misses fetch the line from ``mem`` (zero-padded
    past the last row), evicting the LRU way with a write-back of its
    in-range counters; a counter reaching ``threshold`` is zeroed in
    both the (now-MRU) cached line and ``mem``, and the access index is
    recorded in ``event_pos``.  Returns the number of events.
    """
    n_events = 0
    for i in range(rows.shape[0]):
        row = rows[i]
        line = row // line_width
        offset = row - line * line_width
        s = line % n_sets
        way = -1
        for w in range(valid[s]):
            if tags[s, w] == line:
                way = w
                break
        if way >= 0:
            io[0] += 1
            count = counts[s, way, offset] + 1
            counts[s, way, offset] = count
            if way > 0:
                # Move to MRU: rotate ways [0, way] down by one.
                for k in range(line_width):
                    scratch = counts[s, way, k]
                    for w in range(way, 0, -1):
                        counts[s, w, k] = counts[s, w - 1, k]
                    counts[s, 0, k] = scratch
                tag = tags[s, way]
                for w in range(way, 0, -1):
                    tags[s, w] = tags[s, w - 1]
                tags[s, 0] = tag
        else:
            io[1] += 1
            if valid[s] >= n_ways:
                # Write the LRU victim's in-range counters back.
                vbase = tags[s, n_ways - 1] * line_width
                for k in range(line_width):
                    if vbase + k < n_rows:
                        mem[vbase + k] = counts[s, n_ways - 1, k]
                io[2] += 1
                valid[s] = n_ways - 1
            # Shift the occupied ways down and fetch into way 0.
            for w in range(valid[s], 0, -1):
                tags[s, w] = tags[s, w - 1]
                for k in range(line_width):
                    counts[s, w, k] = counts[s, w - 1, k]
            base = line * line_width
            tags[s, 0] = line
            for k in range(line_width):
                if base + k < n_rows:
                    counts[s, 0, k] = mem[base + k]
                else:
                    counts[s, 0, k] = 0
            valid[s] += 1
            count = counts[s, 0, offset] + 1
            counts[s, 0, offset] = count
        if count >= threshold:
            # The touched line is at way 0 in both branches.
            counts[s, 0, offset] = 0
            mem[row] = 0
            event_pos[n_events] = i
            n_events += 1
    return n_events


def warm_kernels() -> None:
    """Trigger (cached) compilation of every kernel on tiny inputs.

    Benches call this before timing so first-run numbers measure steady
    state, not the one-off compile; a no-op-priced call on the fallback
    tier and on any process where numba's disk cache is already warm.
    """
    import numpy as np

    ids = np.zeros(1, dtype=np.int64)
    big = np.full(4, 2**30, dtype=np.int64)
    k_tree_scan(ids, 0, big[:1], np.zeros(1, dtype=np.int64))
    k_sca_batch(ids, np.zeros(1, dtype=np.int64), 2**30,
                np.empty(1, dtype=np.int64))
    k_ccache_batch(
        ids,
        np.zeros(4, dtype=np.int64),
        np.full((1, 2), -1, dtype=np.int64),
        np.zeros((1, 2, 2), dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        2**30,
        2,
        2,
        1,
        4,
        np.empty(1, dtype=np.int64),
        np.zeros(3, dtype=np.int64),
    )
