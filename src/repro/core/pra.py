"""Probabilistic Row Activation (PRA) — the probabilistic baseline.

On every row activation the memory controller draws from a pseudo-random
number generator and, with probability ``p``, refreshes the two rows
physically adjacent to the activated row (the aggressor row itself is not
refreshed — it was just activated).  Reliability depends critically on
the quality of the PRNG (Section III-A): the paper's closed-form
unsurvivability (Eq. 1) holds only for a true random number generator,
while an LFSR-driven PRA fails orders of magnitude earlier.

The PRNG is pluggable via :mod:`repro.analysis.prng` so the Monte-Carlo
study of LFSR weakness reuses this scheme unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.prng import PRNG, TrueRandomPRNG
from repro.core.base import MitigationScheme, RefreshCommand
from repro.core.batch import check_rows

#: Number of random bits the PRNG emits per activation; 9 bits resolve
#: probabilities down to ~1/512 which covers the paper's p ∈ [0.001, 0.006]
#: comparisons (p is quantised to k/2^9).
PRA_RANDOM_BITS = 9


class PRAScheme(MitigationScheme):
    """Refresh both neighbours of the activated row with probability p."""

    name = "pra"

    def __init__(
        self,
        n_rows: int,
        refresh_threshold: int,
        probability: float,
        prng: PRNG | None = None,
        random_bits: int = PRA_RANDOM_BITS,
    ) -> None:
        super().__init__(n_rows, refresh_threshold)
        if not 0.0 < probability < 1.0:
            raise ValueError(f"probability must be in (0, 1), got {probability}")
        self.probability = probability
        self.random_bits = random_bits
        self._prng = prng if prng is not None else TrueRandomPRNG()
        # Quantise p to the grid the hardware comparator can express.
        self._cut = max(1, round(probability * (1 << random_bits)))

    @property
    def effective_probability(self) -> float:
        """The probability actually realised after bit quantisation."""
        return self._cut / (1 << self.random_bits)

    def _neighbor_commands(self, row: int) -> list[RefreshCommand]:
        """The in-range ``row±1`` refreshes a successful coin-flip emits."""
        commands = []
        if row - 1 >= 0:
            commands.append(RefreshCommand(row - 1, row - 1, reason="probabilistic"))
        if row + 1 < self.n_rows:
            commands.append(RefreshCommand(row + 1, row + 1, reason="probabilistic"))
        return commands

    def access(self, row: int) -> list[RefreshCommand]:
        """Flip the coin; on success refresh rows ``row±1``."""
        self._check_row(row)
        self.stats.activations += 1
        draw = self._prng.next_bits(self.random_bits)
        if draw >= self._cut:
            return []
        commands = self._neighbor_commands(row)
        self.stats.refresh_commands += len(commands)
        self.stats.rows_refreshed += len(commands)
        return commands

    def access_batch(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Vectorized exact batch: one bulk PRNG draw per chunk.

        ``PRNG.next_bits_batch`` consumes the generator stream exactly
        as per-access draws would, so the firing positions — and hence
        every downstream metric — are bit-identical to the scalar loop.
        """
        n = len(rows)
        if n == 0:
            return []
        check_rows(rows, self.n_rows)
        draws = self._prng.next_bits_batch(self.random_bits, n)
        events: list[tuple[int, list[RefreshCommand]]] = []
        n_commands = 0
        for i in np.flatnonzero(draws < self._cut).tolist():
            commands = self._neighbor_commands(int(rows[i]))
            n_commands += len(commands)
            if commands:
                events.append((i, commands))
        self.stats.activations += n
        self.stats.refresh_commands += n_commands
        self.stats.rows_refreshed += n_commands
        return events

    def access_batch_jit(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Jit tier: the analytic batch above is already one bulk draw.

        PRA has no sequential hot loop to compile — the whole batch
        reduces to a single vectorized PRNG draw plus a sparse firing
        scan — so the jit tier runs the identical batched path.
        """
        return self.access_batch(rows)

    def to_arrays(self) -> dict:
        """SoA protocol: PRA keeps no array state (the PRNG is scalar)."""
        return {}

    def from_arrays(self, arrays: dict) -> None:
        """SoA protocol: nothing to import (see :meth:`to_arrays`)."""
        if arrays:
            raise ValueError(
                f"PRA carries no array state, got keys {sorted(arrays)}"
            )

    def to_state(self) -> dict:
        """SchemeState protocol: the PRNG stream position is the state."""
        return {
            "scheme": self.name,
            "prng": self._prng.to_state(),
            "stats": self.stats.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """SchemeState protocol: resume the captured PRNG stream."""
        from repro.analysis.prng import prng_from_state

        self._prng = prng_from_state(state["prng"])
        self.stats.restore(state["stats"])

    @property
    def counters_in_use(self) -> int:
        """PRA keeps no counters; only the shared PRNG."""
        return 0

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"PRA_{self.probability}(n_rows={self.n_rows}, "
            f"T={self.refresh_threshold}, prng={self._prng.name})"
        )
