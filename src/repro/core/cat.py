"""PRCAT — Periodically Reset Counter-based Adaptive Tree (Section V-A).

PRCAT wraps a :class:`~repro.core.counter_tree.CounterTree` and rebuilds
it from the pre-split shape at every auto-refresh epoch (64 ms).  Within
an epoch the tree grows adaptively: hot regions split down to small
groups, cold regions stay coarse, and refresh commands cover only the
small group (plus two adjacent rows) around a detected aggressor.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MitigationScheme, RefreshCommand
from repro.core.batch import (
    counter_scheme_access_batch,
    counter_scheme_access_batch_jit,
)
from repro.core.counter_tree import CounterTree
from repro.core.thresholds import SplitThresholds


class PRCATScheme(MitigationScheme):
    """CAT with periodic reset at each auto-refresh interval boundary."""

    name = "prcat"

    def __init__(
        self,
        n_rows: int,
        refresh_threshold: int,
        n_counters: int,
        max_levels: int,
        threshold_strategy: str = "auto",
        presplit_levels: int | None = None,
    ) -> None:
        super().__init__(n_rows, refresh_threshold)
        self.schedule = SplitThresholds.create(
            refresh_threshold,
            n_counters,
            max_levels,
            strategy=threshold_strategy,
            presplit_levels=presplit_levels,
        )
        self.tree = CounterTree(n_rows, self.schedule, track_weights=False)
        self.n_counters = n_counters
        self.max_levels = max_levels

    def access(self, row: int) -> list[RefreshCommand]:
        """Feed the activation to the tree; pass through any refresh."""
        self._check_row(row)
        self.stats.activations += 1
        cmd = self.tree.access(row)
        if cmd is None:
            return []
        self.stats.refresh_commands += 1
        self.stats.rows_refreshed += cmd.row_count(self.n_rows)
        return [cmd]

    def access_batch(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Vectorized exact batch via the tree's row-block index map."""
        return counter_scheme_access_batch(self, rows)

    def access_batch_jit(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Jit tier: fused count + first-event kernel over the same map."""
        return counter_scheme_access_batch_jit(self, rows)

    def on_interval_boundary(self) -> None:
        """Rebuild the tree from scratch (the defining PRCAT behaviour)."""
        self.tree.reset()
        self.stats.resets += 1

    def to_state(self) -> dict:
        """SchemeState protocol: the tree plus scheme-level stats."""
        return {
            "scheme": self.name,
            "tree": self.tree.to_state(),
            "stats": self.stats.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """SchemeState protocol: overwrite tree registers + stats."""
        self.tree.restore_state(state["tree"])
        self.stats.restore(state["stats"])

    def to_arrays(self) -> dict:
        """SoA protocol: the tree's hot per-counter registers."""
        return self.tree.to_arrays()

    def from_arrays(self, arrays: dict) -> None:
        """SoA protocol: import kernel-mutated tree registers."""
        self.tree.from_arrays(arrays)

    @property
    def counters_in_use(self) -> int:
        """Currently active leaf counters of the tree."""
        return self.tree.active_counters

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"PRCAT_{self.n_counters}(n_rows={self.n_rows}, "
            f"T={self.refresh_threshold}, L={self.max_levels}, "
            f"thresholds={self.schedule.strategy})"
        )
