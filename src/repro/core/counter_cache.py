"""The counter-cache comparator of Kim et al. [26] (CAL 2015).

The paper's main deterministic point of comparison stores one activation
counter *per row* in a reserved region of DRAM and keeps a set-
associative on-chip **counter cache** in the memory controller.  Every
activation looks its row's counter up in the cache; a miss fetches the
counter from the reserved DRAM region (a real DRAM access) and evicts
the LRU way (writing a dirty counter back).  When a row's counter
reaches the refresh threshold, the two physically adjacent victim rows
are refreshed and the counter resets.

Sections III-B and VII-A of the CAT paper argue this design is
conservative: the cache needs thousands of entries per bank to avoid
thrashing, its storage dwarfs SCA_128/CAT_64, and misses add DRAM
traffic.  Implementing it makes that comparison executable: the scheme
plugs into the same simulator, and its stats expose hit rates and the
extra DRAM accesses the CAT schemes avoid by construction.
"""

from __future__ import annotations

from repro.core.base import MitigationScheme, RefreshCommand

#: Energy of one counter-line fetch or write-back to the reserved DRAM
#: region (nJ).  A counter line is one 64-byte column burst — far
#: cheaper than a row refresh but not free; the value follows the
#: activate + read energy scale of the paper's 55 nm device model.
COUNTER_MEMORY_ACCESS_NJ = 5.0

#: Two-byte counters per 64-byte cache line: misses fetch whole lines,
#: so sequential row traffic enjoys spatial locality exactly as in the
#: DRAM-backed design of [26].
COUNTERS_PER_LINE = 32


class CounterCacheScheme(MitigationScheme):
    """Per-row counters in DRAM + set-associative on-chip counter cache.

    Parameters
    ----------
    n_rows, refresh_threshold:
        As for every scheme.
    n_sets, n_ways:
        Cache geometry in *lines* of ``COUNTERS_PER_LINE`` counters;
        capacity is ``n_sets * n_ways`` lines.  The paper's reference
        point is a 32KB cache ≈ 2048 two-byte counters per bank
        (``n_sets=8, n_ways=8`` lines of 32 counters).
    """

    name = "ccache"

    def __init__(
        self,
        n_rows: int,
        refresh_threshold: int,
        n_sets: int = 8,
        n_ways: int = 8,
    ) -> None:
        super().__init__(n_rows, refresh_threshold)
        if n_sets <= 0 or n_ways <= 0:
            raise ValueError("n_sets and n_ways must be positive")
        self.n_sets = n_sets
        self.n_ways = n_ways
        # Backing store: the authoritative per-row counters in DRAM.
        self._memory_counters = [0] * n_rows
        # Cache: per set, an LRU-ordered list of (line_tag, counts) with
        # counts covering COUNTERS_PER_LINE consecutive rows; index 0 is
        # most recently used.
        self._sets: list[list[tuple[int, list[int]]]] = [
            [] for _ in range(n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def capacity(self) -> int:
        """Total counters the cache can hold."""
        return self.n_sets * self.n_ways * COUNTERS_PER_LINE

    def access(self, row: int) -> list[RefreshCommand]:
        """Count the activation through the cache; refresh on threshold."""
        self._check_row(row)
        self.stats.activations += 1
        count = self._lookup_increment(row)
        if count < self.refresh_threshold:
            return []
        self._store(row, 0)
        commands = []
        if row - 1 >= 0:
            commands.append(RefreshCommand(row - 1, row - 1))
        if row + 1 < self.n_rows:
            commands.append(RefreshCommand(row + 1, row + 1))
        self.stats.refresh_commands += len(commands)
        self.stats.rows_refreshed += len(commands)
        return commands

    # -- cache mechanics -------------------------------------------------

    def _line_of(self, row: int) -> int:
        return row // COUNTERS_PER_LINE

    def _set_of(self, line: int) -> list[tuple[int, list[int]]]:
        return self._sets[line % self.n_sets]

    def _lookup_increment(self, row: int) -> int:
        """Return the row's incremented count, filling on miss."""
        line = self._line_of(row)
        offset = row - line * COUNTERS_PER_LINE
        ways = self._set_of(line)
        for i, (tag, counts) in enumerate(ways):
            if tag == line:
                self.hits += 1
                counts[offset] += 1
                if i:
                    ways.insert(0, ways.pop(i))
                return counts[offset]
        # Miss: fetch the whole counter line from the reserved region.
        self.misses += 1
        base = line * COUNTERS_PER_LINE
        counts = self._memory_counters[base : base + COUNTERS_PER_LINE]
        counts += [0] * (COUNTERS_PER_LINE - len(counts))
        counts[offset] += 1
        if len(ways) >= self.n_ways:
            victim_line, victim_counts = ways.pop()
            vbase = victim_line * COUNTERS_PER_LINE
            self._memory_counters[vbase : vbase + len(victim_counts)] = (
                victim_counts[: self.n_rows - vbase]
            )
            self.writebacks += 1
        ways.insert(0, (line, counts))
        return counts[offset]

    def _store(self, row: int, count: int) -> None:
        """Overwrite the row's count (cache and backing store)."""
        line = self._line_of(row)
        offset = row - line * COUNTERS_PER_LINE
        for tag, counts in self._set_of(line):
            if tag == line:
                counts[offset] = count
                break
        self._memory_counters[row] = count

    # -- checkpointable state (SchemeState protocol; see repro.api) ------

    def to_state(self) -> dict:
        """Backing counters + LRU-ordered cache sets + hit/miss totals.

        The per-set way lists are stored most-recently-used first,
        exactly as :attr:`_sets` keeps them — eviction order is part of
        bit-identical resumption.  The (large, mostly zero) backing
        store is run-length compressed as (index, count) pairs.
        """
        nonzero = [
            [i, c] for i, c in enumerate(self._memory_counters) if c
        ]
        return {
            "scheme": self.name,
            "memory_counters": nonzero,
            "sets": [
                [[tag, list(counts)] for tag, counts in ways]
                for ways in self._sets
            ],
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "stats": self.stats.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """SchemeState protocol: overwrite cache + backing store."""
        counters = [0] * self.n_rows
        for i, c in state["memory_counters"]:
            counters[int(i)] = int(c)
        self._memory_counters = counters
        sets = [
            [(int(tag), [int(c) for c in counts]) for tag, counts in ways]
            for ways in state["sets"]
        ]
        if len(sets) != self.n_sets:
            raise ValueError(
                f"state carries {len(sets)} sets, cache has {self.n_sets}"
            )
        self._sets = sets
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.writebacks = int(state["writebacks"])
        self.stats.restore(state["stats"])

    # -- epoch / introspection -------------------------------------------

    def on_interval_boundary(self) -> None:
        """Blanket refresh clears all pressure: reset every counter."""
        self._memory_counters = [0] * self.n_rows
        for ways in self._sets:
            ways.clear()
        self.stats.resets += 1

    @property
    def counters_in_use(self) -> int:
        """Counters the scheme occupies (the full cache capacity)."""
        return self.capacity

    @property
    def hit_rate(self) -> float:
        """Fraction of activations served without a DRAM counter fetch."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def miss_energy_nj(self) -> float:
        """Extra DRAM energy spent on counter fetches and write-backs."""
        return (self.misses + self.writebacks) * COUNTER_MEMORY_ACCESS_NJ

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"CounterCache(n_rows={self.n_rows}, T={self.refresh_threshold}, "
            f"{self.n_sets}x{self.n_ways} lines = {self.capacity} counters)"
        )
