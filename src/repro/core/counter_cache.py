"""The counter-cache comparator of Kim et al. [26] (CAL 2015).

The paper's main deterministic point of comparison stores one activation
counter *per row* in a reserved region of DRAM and keeps a set-
associative on-chip **counter cache** in the memory controller.  Every
activation looks its row's counter up in the cache; a miss fetches the
counter from the reserved DRAM region (a real DRAM access) and evicts
the LRU way (writing a dirty counter back).  When a row's counter
reaches the refresh threshold, the two physically adjacent victim rows
are refreshed and the counter resets.

Sections III-B and VII-A of the CAT paper argue this design is
conservative: the cache needs thousands of entries per bank to avoid
thrashing, its storage dwarfs SCA_128/CAT_64, and misses add DRAM
traffic.  Implementing it makes that comparison executable: the scheme
plugs into the same simulator, and its stats expose hit rates and the
extra DRAM accesses the CAT schemes avoid by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MitigationScheme, RefreshCommand
from repro.core.batch import check_rows

#: Energy of one counter-line fetch or write-back to the reserved DRAM
#: region (nJ).  A counter line is one 64-byte column burst — far
#: cheaper than a row refresh but not free; the value follows the
#: activate + read energy scale of the paper's 55 nm device model.
COUNTER_MEMORY_ACCESS_NJ = 5.0

#: Two-byte counters per 64-byte cache line: misses fetch whole lines,
#: so sequential row traffic enjoys spatial locality exactly as in the
#: DRAM-backed design of [26].
COUNTERS_PER_LINE = 32


class CounterCacheScheme(MitigationScheme):
    """Per-row counters in DRAM + set-associative on-chip counter cache.

    Parameters
    ----------
    n_rows, refresh_threshold:
        As for every scheme.
    n_sets, n_ways:
        Cache geometry in *lines* of ``COUNTERS_PER_LINE`` counters;
        capacity is ``n_sets * n_ways`` lines.  The paper's reference
        point is a 32KB cache ≈ 2048 two-byte counters per bank
        (``n_sets=8, n_ways=8`` lines of 32 counters).
    """

    name = "ccache"

    def __init__(
        self,
        n_rows: int,
        refresh_threshold: int,
        n_sets: int = 8,
        n_ways: int = 8,
    ) -> None:
        super().__init__(n_rows, refresh_threshold)
        if n_sets <= 0 or n_ways <= 0:
            raise ValueError("n_sets and n_ways must be positive")
        self.n_sets = n_sets
        self.n_ways = n_ways
        # Backing store: the authoritative per-row counters in DRAM.
        self._memory_counters = [0] * n_rows
        # Cache: per set, an LRU-ordered list of (line_tag, counts) with
        # counts covering COUNTERS_PER_LINE consecutive rows; index 0 is
        # most recently used.
        self._sets: list[list[tuple[int, list[int]]]] = [
            [] for _ in range(n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def capacity(self) -> int:
        """Total counters the cache can hold."""
        return self.n_sets * self.n_ways * COUNTERS_PER_LINE

    def access(self, row: int) -> list[RefreshCommand]:
        """Count the activation through the cache; refresh on threshold."""
        self._check_row(row)
        self.stats.activations += 1
        count = self._lookup_increment(row)
        if count < self.refresh_threshold:
            return []
        self._store(row, 0)
        commands = []
        if row - 1 >= 0:
            commands.append(RefreshCommand(row - 1, row - 1))
        if row + 1 < self.n_rows:
            commands.append(RefreshCommand(row + 1, row + 1))
        self.stats.refresh_commands += len(commands)
        self.stats.rows_refreshed += len(commands)
        return commands

    # -- cache mechanics -------------------------------------------------

    def _line_of(self, row: int) -> int:
        return row // COUNTERS_PER_LINE

    def _set_of(self, line: int) -> list[tuple[int, list[int]]]:
        return self._sets[line % self.n_sets]

    def _lookup_increment(self, row: int) -> int:
        """Return the row's incremented count, filling on miss."""
        line = self._line_of(row)
        offset = row - line * COUNTERS_PER_LINE
        ways = self._set_of(line)
        for i, (tag, counts) in enumerate(ways):
            if tag == line:
                self.hits += 1
                counts[offset] += 1
                if i:
                    ways.insert(0, ways.pop(i))
                return counts[offset]
        # Miss: fetch the whole counter line from the reserved region.
        self.misses += 1
        base = line * COUNTERS_PER_LINE
        counts = self._memory_counters[base : base + COUNTERS_PER_LINE]
        counts += [0] * (COUNTERS_PER_LINE - len(counts))
        counts[offset] += 1
        if len(ways) >= self.n_ways:
            victim_line, victim_counts = ways.pop()
            vbase = victim_line * COUNTERS_PER_LINE
            self._memory_counters[vbase : vbase + len(victim_counts)] = (
                victim_counts[: self.n_rows - vbase]
            )
            self.writebacks += 1
        ways.insert(0, (line, counts))
        return counts[offset]

    def _store(self, row: int, count: int) -> None:
        """Overwrite the row's count (cache and backing store)."""
        line = self._line_of(row)
        offset = row - line * COUNTERS_PER_LINE
        for tag, counts in self._set_of(line):
            if tag == line:
                counts[offset] = count
                break
        self._memory_counters[row] = count

    def access_batch_jit(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Jit tier: the whole cache walk in one SoA kernel sweep.

        The scalar path pays Python-object cost per access (tag scan,
        list rotation); :func:`repro.core.jitkern.k_ccache_batch`
        replicates the identical hit/miss/LRU/eviction/threshold
        semantics over the array form of the cache, and the state
        converts losslessly back afterwards — events, counters, LRU
        order, and hit/miss/writeback totals all match the scalar loop
        bit for bit.
        """
        from repro.core.jitkern import k_ccache_batch

        n = len(rows)
        if n == 0:
            return []
        check_rows(rows, self.n_rows)
        arrays = self.to_arrays()
        rows64 = np.asarray(rows, dtype=np.int64)
        event_pos = np.empty(n, dtype=np.int64)
        io = np.zeros(3, dtype=np.int64)
        n_events = int(k_ccache_batch(
            rows64,
            arrays["memory_counters"],
            arrays["tags"],
            arrays["counts"],
            arrays["valid"],
            self.refresh_threshold,
            self.n_ways,
            COUNTERS_PER_LINE,
            self.n_sets,
            self.n_rows,
            event_pos,
            io,
        ))
        self.from_arrays(arrays)
        self.hits += int(io[0])
        self.misses += int(io[1])
        self.writebacks += int(io[2])
        self.stats.activations += n
        events: list[tuple[int, list[RefreshCommand]]] = []
        for k in range(n_events):
            position = int(event_pos[k])
            row = int(rows64[position])
            commands = []
            if row - 1 >= 0:
                commands.append(RefreshCommand(row - 1, row - 1))
            if row + 1 < self.n_rows:
                commands.append(RefreshCommand(row + 1, row + 1))
            self.stats.refresh_commands += len(commands)
            self.stats.rows_refreshed += len(commands)
            events.append((position, commands))
        return events

    # -- SoA protocol (jit-tier kernel boundary) -------------------------

    def to_arrays(self) -> dict:
        """Export the cache in structure-of-arrays form.

        ``tags[set, way]`` (way 0 = MRU, ``-1`` when empty),
        ``counts[set, way, COUNTERS_PER_LINE]``, ``valid[set]`` =
        occupied ways, and the backing ``memory_counters[n_rows]`` —
        the exact layout :func:`repro.core.jitkern.k_ccache_batch`
        consumes.
        """
        tags = np.full((self.n_sets, self.n_ways), -1, dtype=np.int64)
        counts = np.zeros(
            (self.n_sets, self.n_ways, COUNTERS_PER_LINE), dtype=np.int64
        )
        valid = np.zeros(self.n_sets, dtype=np.int64)
        for s, ways in enumerate(self._sets):
            valid[s] = len(ways)
            for w, (tag, line_counts) in enumerate(ways):
                tags[s, w] = tag
                counts[s, w, : len(line_counts)] = line_counts
        return {
            "memory_counters": np.asarray(
                self._memory_counters, dtype=np.int64
            ),
            "tags": tags,
            "counts": counts,
            "valid": valid,
        }

    def from_arrays(self, arrays: dict) -> None:
        """Import kernel-mutated arrays back into canonical list state.

        Rebuilds the per-set LRU way lists in stored (MRU-first) order,
        so a ``to_arrays``/``from_arrays`` round trip — with or without
        kernel mutation in between — leaves :meth:`to_state` output
        identical to the scalar path's.
        """
        mem = arrays["memory_counters"]
        if len(mem) != self.n_rows:
            raise ValueError(
                f"array carries {len(mem)} backing counters, bank has "
                f"{self.n_rows} rows"
            )
        self._memory_counters = [int(c) for c in mem]
        tags, counts, valid = (
            arrays["tags"], arrays["counts"], arrays["valid"]
        )
        self._sets = [
            [
                (int(tags[s, w]), [int(c) for c in counts[s, w]])
                for w in range(int(valid[s]))
            ]
            for s in range(self.n_sets)
        ]

    # -- checkpointable state (SchemeState protocol; see repro.api) ------

    def to_state(self) -> dict:
        """Backing counters + LRU-ordered cache sets + hit/miss totals.

        The per-set way lists are stored most-recently-used first,
        exactly as :attr:`_sets` keeps them — eviction order is part of
        bit-identical resumption.  The (large, mostly zero) backing
        store is run-length compressed as (index, count) pairs.
        """
        nonzero = [
            [i, c] for i, c in enumerate(self._memory_counters) if c
        ]
        return {
            "scheme": self.name,
            "memory_counters": nonzero,
            "sets": [
                [[tag, list(counts)] for tag, counts in ways]
                for ways in self._sets
            ],
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "stats": self.stats.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """SchemeState protocol: overwrite cache + backing store."""
        counters = [0] * self.n_rows
        for i, c in state["memory_counters"]:
            counters[int(i)] = int(c)
        self._memory_counters = counters
        sets = [
            [(int(tag), [int(c) for c in counts]) for tag, counts in ways]
            for ways in state["sets"]
        ]
        if len(sets) != self.n_sets:
            raise ValueError(
                f"state carries {len(sets)} sets, cache has {self.n_sets}"
            )
        self._sets = sets
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.writebacks = int(state["writebacks"])
        self.stats.restore(state["stats"])

    # -- epoch / introspection -------------------------------------------

    def on_interval_boundary(self) -> None:
        """Blanket refresh clears all pressure: reset every counter."""
        self._memory_counters = [0] * self.n_rows
        for ways in self._sets:
            ways.clear()
        self.stats.resets += 1

    @property
    def counters_in_use(self) -> int:
        """Counters the scheme occupies (the full cache capacity)."""
        return self.capacity

    @property
    def hit_rate(self) -> float:
        """Fraction of activations served without a DRAM counter fetch."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def miss_energy_nj(self) -> float:
        """Extra DRAM energy spent on counter fetches and write-backs."""
        return (self.misses + self.writebacks) * COUNTER_MEMORY_ACCESS_NJ

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"CounterCache(n_rows={self.n_rows}, T={self.refresh_threshold}, "
            f"{self.n_sets}x{self.n_ways} lines = {self.capacity} counters)"
        )
