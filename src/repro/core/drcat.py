"""DRCAT — Dynamically Reconfigured CAT (Section V-B).

DRCAT keeps the adaptive tree alive across refresh intervals and instead
*reconfigures* it as the access pattern drifts: a 2-bit weight register
per counter tracks how often each counter reaches the refresh threshold.
When a counter's weight saturates, DRCAT merges a pair of zero-weight
(cold) sibling leaf counters — freeing one counter and one intermediate
node — and uses the freed counter to split the hot leaf, sharpening
resolution exactly where refreshes concentrate.

Compared to PRCAT this avoids both shortcomings of periodic reset: no
loss of recent access history at epoch boundaries, and no rebuild cost
when the pattern has not changed.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MitigationScheme, RefreshCommand
from repro.core.batch import (
    counter_scheme_access_batch,
    counter_scheme_access_batch_jit,
)
from repro.core.counter_tree import CounterTree
from repro.core.thresholds import SplitThresholds


class DRCATScheme(MitigationScheme):
    """CAT with weight-driven merge/split reconfiguration."""

    name = "drcat"

    def __init__(
        self,
        n_rows: int,
        refresh_threshold: int,
        n_counters: int,
        max_levels: int,
        threshold_strategy: str = "auto",
        presplit_levels: int | None = None,
    ) -> None:
        super().__init__(n_rows, refresh_threshold)
        self.schedule = SplitThresholds.create(
            refresh_threshold,
            n_counters,
            max_levels,
            strategy=threshold_strategy,
            presplit_levels=presplit_levels,
        )
        self.tree = CounterTree(n_rows, self.schedule, track_weights=True)
        self.n_counters = n_counters
        self.max_levels = max_levels
        #: number of weight-triggered reconfigurations performed
        self.reconfigurations = 0

    def access(self, row: int) -> list[RefreshCommand]:
        """Feed the activation; on refresh, maybe reconfigure the tree.

        The tree updates weight registers as part of the refresh event;
        if the refreshed counter's weight just saturated, the scheme
        attempts the merge-cold/split-hot step.  Counter state survives
        interval boundaries (unlike PRCAT).
        """
        self._check_row(row)
        self.stats.activations += 1
        cmd = self.tree.access(row)
        if cmd is None:
            return []
        self.stats.refresh_commands += 1
        self.stats.rows_refreshed += cmd.row_count(self.n_rows)
        hot = self.tree.lookup(row)
        if self.tree.weight_saturated(hot):
            # Cascade: once the weight saturates, sharpen resolution
            # around the hammered row all the way down (one merge+split
            # per level), rather than paying one more coarse refresh per
            # level.  Stops when cold sibling pairs run out or the leaf
            # reaches maximum depth.
            for _ in range(self.max_levels):
                if not self.tree.reconfigure(hot):
                    break
                self.reconfigurations += 1
                self.stats.splits += 1
                self.stats.merges += 1
                hot = self.tree.lookup(row)
        return [cmd]

    def access_batch(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Vectorized exact batch via the tree's row-block index map.

        Refreshes, harvests, and the weight-saturation cascade all run
        through the scalar :meth:`access` oracle; only the event-free
        stretches between them are applied in bulk.
        """
        return counter_scheme_access_batch(self, rows)

    def access_batch_jit(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Jit tier: fused count + first-event kernel, same oracle."""
        return counter_scheme_access_batch_jit(self, rows)

    def on_interval_boundary(self) -> None:
        """Auto-refresh epoch: counters restart but the *shape* persists.

        All rows were just refreshed, so accumulated aggressor pressure is
        gone and counts reset; the learned tree structure is the state
        DRCAT deliberately carries across epochs.  Weights decay one step
        so regions that stopped being hot become merge candidates again.
        """
        tree = self.tree
        for i in range(tree.n_counters):
            tree._count[i] = 0
            if tree._weight[i] > 0:
                tree._weight[i] -= 1
        for i in range(tree.n_counters):
            tree._harvest_blocked[i] = False
        self.stats.resets += 1

    def to_state(self) -> dict:
        """SchemeState protocol: tree registers, stats, reconfig count."""
        return {
            "scheme": self.name,
            "tree": self.tree.to_state(),
            "stats": self.stats.snapshot(),
            "reconfigurations": self.reconfigurations,
        }

    def restore_state(self, state: dict) -> None:
        """SchemeState protocol: overwrite tree + stats + reconfig count."""
        self.tree.restore_state(state["tree"])
        self.stats.restore(state["stats"])
        self.reconfigurations = int(state["reconfigurations"])

    def to_arrays(self) -> dict:
        """SoA protocol: the tree's hot per-counter registers."""
        return self.tree.to_arrays()

    def from_arrays(self, arrays: dict) -> None:
        """SoA protocol: import kernel-mutated tree registers."""
        self.tree.from_arrays(arrays)

    @property
    def counters_in_use(self) -> int:
        """Currently active leaf counters of the tree."""
        return self.tree.active_counters

    def describe(self) -> str:
        """One-line configuration summary."""
        return (
            f"DRCAT_{self.n_counters}(n_rows={self.n_rows}, "
            f"T={self.refresh_threshold}, L={self.max_levels}, "
            f"thresholds={self.schedule.strategy})"
        )
