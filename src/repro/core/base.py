"""Common interfaces for wordline-crosstalk mitigation schemes.

Every scheme in the paper — SCA, PRA, PRCAT, DRCAT — observes the same
event stream: a sequence of row activations on one DRAM bank.  In response
it may emit *refresh commands*, each naming a contiguous range of rows that
the memory controller must refresh to neutralise accumulated crosstalk.

The :class:`MitigationScheme` interface below is what the DRAM substrate
(:mod:`repro.dram.memory_system`) and the trace-driven simulator
(:mod:`repro.sim.simulator`) program against.  A scheme instance always
guards a *single bank*; the memory system owns one instance per bank.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class RefreshCommand:
    """A targeted-refresh request emitted by a mitigation scheme.

    Attributes
    ----------
    low:
        First row of the range to refresh (inclusive).  May be ``-1``
        when the refreshed group starts at row 0 and the scheme asks for
        the row *adjacent below* the group as well; the substrate clamps
        to the physical row range.
    high:
        Last row of the range to refresh (inclusive).  May equal ``N``
        for the row adjacent above the top group; clamped likewise.
    reason:
        Short machine-readable tag, e.g. ``"threshold"`` for a counter
        reaching the refresh threshold or ``"probabilistic"`` for a PRA
        coin-flip refresh.
    """

    low: int
    high: int
    reason: str = "threshold"

    def clamped(self, n_rows: int) -> "RefreshCommand":
        """Return a copy with the range clipped to ``[0, n_rows)``."""
        low = max(0, self.low)
        high = min(n_rows - 1, self.high)
        return RefreshCommand(low, high, self.reason)

    @property
    def span(self) -> int:
        """Number of rows named by this command (before clamping)."""
        return self.high - self.low + 1

    def row_count(self, n_rows: int) -> int:
        """Number of physical rows refreshed once clamped to the bank."""
        c = self.clamped(n_rows)
        return max(0, c.high - c.low + 1)


@dataclass(slots=True)
class SchemeStats:
    """Running totals a scheme keeps about its own activity.

    These are *scheme-side* counts; timing-aware totals (stall cycles,
    energy) are accumulated by the simulator from the emitted
    :class:`RefreshCommand` stream.
    """

    activations: int = 0
    refresh_commands: int = 0
    rows_refreshed: int = 0
    splits: int = 0
    merges: int = 0
    resets: int = 0

    def snapshot(self) -> dict[str, int]:
        """Return the stats as a plain dict (for reports/tests)."""
        return {
            "activations": self.activations,
            "refresh_commands": self.refresh_commands,
            "rows_refreshed": self.rows_refreshed,
            "splits": self.splits,
            "merges": self.merges,
            "resets": self.resets,
        }

    def restore(self, state: dict[str, int]) -> None:
        """Overwrite all totals from a :meth:`snapshot` dict."""
        self.activations = int(state["activations"])
        self.refresh_commands = int(state["refresh_commands"])
        self.rows_refreshed = int(state["rows_refreshed"])
        self.splits = int(state["splits"])
        self.merges = int(state["merges"])
        self.resets = int(state["resets"])


class MitigationScheme(abc.ABC):
    """Abstract per-bank wordline-crosstalk mitigation engine.

    Subclasses implement :meth:`access` which is called once per row
    activation and returns the (possibly empty) list of refresh commands
    the activation triggered.

    Parameters
    ----------
    n_rows:
        Number of rows in the guarded bank (``N`` in the paper).
    refresh_threshold:
        The crosstalk refresh threshold ``T``: the number of activations
        an aggressor row may receive before its neighbours must be
        refreshed.
    """

    #: short name used by :func:`repro.core.make_scheme` and in reports
    name: str = "abstract"

    def __init__(self, n_rows: int, refresh_threshold: int) -> None:
        if n_rows <= 0:
            raise ValueError(f"n_rows must be positive, got {n_rows}")
        if refresh_threshold <= 0:
            raise ValueError(
                f"refresh_threshold must be positive, got {refresh_threshold}"
            )
        self.n_rows = n_rows
        self.refresh_threshold = refresh_threshold
        self.stats = SchemeStats()

    @abc.abstractmethod
    def access(self, row: int) -> list[RefreshCommand]:
        """Record one activation of ``row``; return triggered refreshes."""

    def access_batch(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Record a chunk of activations; return positioned refreshes.

        Exact batch equivalent of calling :meth:`access` once per
        element of ``rows`` (an int64 array): the returned
        ``(position, commands)`` pairs name every access that emitted
        commands, in stream order, and the scheme ends in the identical
        state.  The default replays scalar ``access`` — always correct —
        and counting schemes override it with a vectorized fast path
        (see :mod:`repro.core.batch`).
        """
        events: list[tuple[int, list[RefreshCommand]]] = []
        access = self.access
        for i, row in enumerate(rows.tolist()):
            cmds = access(row)
            if cmds:
                events.append((i, cmds))
        return events

    def access_batch_jit(
        self, rows: np.ndarray
    ) -> list[tuple[int, list[RefreshCommand]]]:
        """Jit-tier batch access: the compiled-kernel entry point.

        Same contract as :meth:`access_batch` — bit-identical events and
        final state.  Schemes with a sequential hot loop override this
        with a driver around a :mod:`repro.core.jitkern` kernel
        (compiled when numba is present, the identical function run as
        plain Python otherwise).  The default delegates to the batched
        path, which is already exact — correct for schemes whose batch
        form is analytic rather than loop-bound (e.g. PRA).
        """
        return self.access_batch(rows)

    def on_interval_boundary(self) -> None:
        """Hook invoked by the substrate at each 64 ms auto-refresh epoch.

        The default is a no-op; PRCAT overrides this to rebuild its tree.
        """

    # -- SchemeState protocol --------------------------------------------
    #
    # Every scheme is checkpointable: ``to_state()`` captures the full
    # dynamic state as a JSON-serializable document, and
    # ``restore_state(state)`` overwrites a freshly *constructed* scheme
    # (same configuration) so that its subsequent behaviour — every
    # refresh command, statistic, and structural mutation — is
    # bit-identical to the instance the state was captured from.  The
    # session layer (:mod:`repro.api`) relies on this to checkpoint,
    # fork, and resume runs mid-stream.

    def to_state(self) -> dict:
        """JSON-serializable snapshot of all dynamic scheme state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the SchemeState "
            "protocol (to_state/restore_state)"
        )

    def restore_state(self, state: dict) -> None:
        """Overwrite this (freshly built) scheme from :meth:`to_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the SchemeState "
            "protocol (to_state/restore_state)"
        )

    # -- SoA protocol (the jit tier's kernel boundary) -------------------
    #
    # ``to_arrays()`` exports the scheme's *hot* dynamic state as a dict
    # of int64 numpy arrays in the structure-of-arrays layout the
    # compiled kernels consume; ``from_arrays(arrays)`` imports the
    # (possibly mutated) arrays back into the canonical Python-object
    # state.  A ``from_arrays(to_arrays())`` round trip is lossless, so
    # ``to_state``/``restore_state`` — and with them checkpointing —
    # operate on exactly the same state regardless of tier.  Cold
    # structural state (tree topology, free lists) stays object-side;
    # kernels only see the arrays.

    def to_arrays(self) -> dict:
        """Export hot state as int64 arrays (SoA kernel layout)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the SoA protocol "
            "(to_arrays/from_arrays)"
        )

    def from_arrays(self, arrays: dict) -> None:
        """Import (kernel-mutated) arrays back into canonical state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the SoA protocol "
            "(to_arrays/from_arrays)"
        )

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise ValueError(
                f"row {row} out of range for bank with {self.n_rows} rows"
            )

    # -- introspection helpers -------------------------------------------

    @property
    def counters_in_use(self) -> int:
        """Number of hardware counters the scheme currently occupies."""
        return 0

    def describe(self) -> str:
        """One-line human-readable description of the configuration."""
        return (
            f"{self.name}(n_rows={self.n_rows}, "
            f"T={self.refresh_threshold})"
        )


@dataclass(slots=True)
class ActivationLedger:
    """Oracle used in tests: per-row activation counts since last refresh.

    The rowhammer-safety property (DESIGN.md invariant 2) states that no
    row may accumulate ``T`` activations while a *neighbour* goes
    unrefreshed.  The ledger tracks, for every row, how many times it has
    been activated since the last refresh that covered the row itself or
    either neighbour, mirroring how crosstalk charge accumulates.
    """

    n_rows: int
    counts: dict[int, int] = field(default_factory=dict)

    def activate(self, row: int) -> None:
        """Record an activation of ``row``."""
        self.counts[row] = self.counts.get(row, 0) + 1

    def refresh_range(self, low: int, high: int) -> None:
        """A refresh of rows [low, high] clears aggressor pressure.

        Refreshing a victim row restores its charge, so any aggressor
        pressure accumulated against it resets.  In the paper's scheme the
        refreshed range always includes the group *and* the two adjacent
        rows, so clearing the activation counts of rows whose neighbours
        were refreshed is the faithful bookkeeping: an aggressor row's
        count may be cleared only when both its neighbours were refreshed.
        We conservatively clear a row's count when the row itself and both
        of its in-range neighbours lie inside the refreshed range.
        """
        low = max(0, low)
        high = min(self.n_rows - 1, high)
        for row in list(self.counts):
            lo_ok = row - 1 >= low or row == 0
            hi_ok = row + 1 <= high or row == self.n_rows - 1
            if low <= row <= high and lo_ok and hi_ok:
                del self.counts[row]

    def apply_refreshes(self, commands: "list[RefreshCommand]") -> None:
        """Credit one access's full refresh-command batch at once.

        :meth:`refresh_range` handles a single contiguous range, which
        is how the counter-based schemes emit refreshes.  PRA instead
        emits *two* single-row commands (``row±1``) per successful
        coin-flip; processed one at a time neither clears the aggressor,
        although together they restore both of its victims.  This method
        takes the union of all rows refreshed by one access and clears
        any row whose in-bank neighbours are both inside that union —
        the physically faithful rule for command batches of any shape.
        """
        refreshed: set[int] = set()
        for cmd in commands:
            c = cmd.clamped(self.n_rows)
            if c.high >= c.low:
                refreshed.update(range(c.low, c.high + 1))
        if not refreshed:
            return
        for row in list(self.counts):
            lo_ok = row - 1 in refreshed or row == 0
            hi_ok = row + 1 in refreshed or row == self.n_rows - 1
            if lo_ok and hi_ok:
                del self.counts[row]

    def max_pressure(self) -> int:
        """Highest unrefreshed activation count over all rows."""
        return max(self.counts.values(), default=0)
