"""Scheme registry: typed per-scheme parameters and factories.

Every mitigation scheme registers itself here under its short name
(``"sca"``, ``"pra"``, ``"prcat"``, ``"drcat"``, ``"ccache"``) together
with a frozen *params dataclass* describing the knobs that scheme —
and only that scheme — accepts, plus a factory that builds a configured
instance for one bank.  The registry is what :func:`repro.core.make_scheme`,
:class:`repro.experiments.SchemeSpec` and the ``repro list schemes`` CLI
are driven by: adding a scheme means one :func:`register_scheme` call,
after which spec validation, serialization, sweeps and the
registry-parametrized safety tests all pick it up automatically.

The params dataclasses replace the historical "kwarg soup" where every
call site carried ``n_counters``/``pra_probability``/``max_levels``
whether relevant or not.  :func:`build_params` validates keyword
arguments against the scheme's declared fields and rejects unknown ones
with a message listing what the scheme actually takes; a small legacy
set (:data:`LEGACY_KWARGS`) is silently ignored when irrelevant so the
pre-registry ``make_scheme`` call sites keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable

from repro.core.base import MitigationScheme
from repro.core.cat import PRCATScheme
from repro.core.counter_cache import CounterCacheScheme
from repro.core.drcat import DRCATScheme
from repro.core.pra import PRAScheme
from repro.core.sca import SCAScheme

#: Kwargs the pre-registry ``make_scheme`` accepted for every scheme.
#: They are ignored (not rejected) when a scheme's params dataclass has
#: no matching field, so historical call sites keep working.
LEGACY_KWARGS = frozenset(
    {"n_counters", "max_levels", "probability", "threshold_strategy"}
)


# -- typed per-scheme parameter records ----------------------------------


@dataclass(frozen=True)
class ScaParams:
    """Static Counter Assignment: M counters over fixed equal groups."""

    n_counters: int = 64


@dataclass(frozen=True)
class PraParams:
    """Probabilistic Row Activation: neighbour refresh with probability p."""

    probability: float = 0.002


@dataclass(frozen=True)
class CatParams:
    """Counter-based Adaptive Tree knobs shared by PRCAT and DRCAT."""

    n_counters: int = 64
    max_levels: int = 11
    threshold_strategy: str = "auto"
    presplit_levels: int | None = None


@dataclass(frozen=True)
class PrcatParams(CatParams):
    """PRCAT (periodic-reset CAT) parameters."""


@dataclass(frozen=True)
class DrcatParams(CatParams):
    """DRCAT (dynamic-reconfiguration CAT) parameters."""


@dataclass(frozen=True)
class CCacheParams:
    """Per-row-counter cache comparator of [26] (sets × ways of lines)."""

    n_sets: int = 8
    n_ways: int = 8


# -- registry ------------------------------------------------------------


@dataclass(frozen=True)
class SchemeInfo:
    """One registered scheme: name, typed params, factory, test hints."""

    name: str
    params_cls: type
    factory: Callable[..., MitigationScheme]
    description: str = ""
    #: Overrides the registry-parametrized safety property test applies
    #: when driving this scheme with a small threshold (e.g. PRA needs a
    #: large ``probability`` for its probabilistic guarantee to hold with
    #: certainty over a short seeded stream).
    safety_overrides: dict[str, Any] = field(default_factory=dict)

    def default_params(self):
        """A params instance holding this scheme's documented defaults."""
        return self.params_cls()


_REGISTRY: dict[str, SchemeInfo] = {}


def register_scheme(info: SchemeInfo) -> SchemeInfo:
    """Register (or replace) one scheme; returns ``info`` for chaining."""
    if not is_dataclass(info.params_cls):
        raise TypeError(
            f"scheme {info.name!r}: params_cls must be a dataclass, "
            f"got {info.params_cls!r}"
        )
    _REGISTRY[info.name] = info
    return info


def scheme_names() -> tuple[str, ...]:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def get_scheme_info(kind: str) -> SchemeInfo:
    """Look up a scheme; unknown names raise ``ValueError`` (not KeyError)
    to match the historical ``make_scheme`` contract."""
    try:
        return _REGISTRY[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheme kind {kind!r}; registered schemes: "
            f"{', '.join(_REGISTRY)}"
        ) from None


def build_params(kind: str, *, _strict: bool = False, **kwargs):
    """Build the typed params record for ``kind`` from keyword arguments.

    Unknown keywords raise ``TypeError`` listing the scheme's real
    fields.  By default the :data:`LEGACY_KWARGS` names are silently
    dropped when the scheme does not take them — the pre-registry
    ``make_scheme`` accepted the full kwarg soup for every scheme, and
    its historical call sites rely on that.  ``_strict=True`` (the new
    :meth:`SchemeSpec.create <repro.experiments.SchemeSpec.create>`
    path) rejects those too: a typed spec only carries knobs its scheme
    actually has.
    """
    info = get_scheme_info(kind)
    valid = {f.name for f in fields(info.params_cls)}
    accepted = {}
    for key, value in kwargs.items():
        if key in valid:
            accepted[key] = value
        elif _strict or key not in LEGACY_KWARGS:
            raise TypeError(
                f"scheme {info.name!r} takes no parameter {key!r}; "
                f"valid parameters: {', '.join(sorted(valid)) or '(none)'}"
            )
    return info.params_cls(**accepted)


def params_to_dict(params) -> dict:
    """JSON-safe dict form of one params record."""
    return {f.name: getattr(params, f.name) for f in fields(params)}


def params_from_dict(kind: str, doc: dict):
    """Inverse of :func:`params_to_dict` (validates against the registry).

    Strict: a serialized params document must name only the scheme's
    real fields — a stray legacy knob in a spec file is an error, not
    something to silently drop.
    """
    return build_params(kind, _strict=True, **dict(doc))


# -- the paper's five schemes --------------------------------------------


def _make_sca(n_rows: int, refresh_threshold: int, p: ScaParams) -> SCAScheme:
    return SCAScheme(n_rows, refresh_threshold, p.n_counters)


def _make_pra(
    n_rows: int, refresh_threshold: int, p: PraParams, prng=None
) -> PRAScheme:
    return PRAScheme(n_rows, refresh_threshold, p.probability, prng=prng)


def _make_prcat(
    n_rows: int, refresh_threshold: int, p: PrcatParams
) -> PRCATScheme:
    return PRCATScheme(
        n_rows,
        refresh_threshold,
        p.n_counters,
        p.max_levels,
        threshold_strategy=p.threshold_strategy,
        presplit_levels=p.presplit_levels,
    )


def _make_drcat(
    n_rows: int, refresh_threshold: int, p: DrcatParams
) -> DRCATScheme:
    return DRCATScheme(
        n_rows,
        refresh_threshold,
        p.n_counters,
        p.max_levels,
        threshold_strategy=p.threshold_strategy,
        presplit_levels=p.presplit_levels,
    )


def _make_ccache(
    n_rows: int, refresh_threshold: int, p: CCacheParams
) -> CounterCacheScheme:
    return CounterCacheScheme(
        n_rows, refresh_threshold, n_sets=p.n_sets, n_ways=p.n_ways
    )


register_scheme(SchemeInfo(
    name="sca",
    params_cls=ScaParams,
    factory=_make_sca,
    description="Static Counter Assignment (M fixed equal groups)",
))
register_scheme(SchemeInfo(
    name="pra",
    params_cls=PraParams,
    factory=_make_pra,
    description="Probabilistic Row Activation (coin-flip neighbour refresh)",
    # Deterministic-looking safety over a short seeded stream needs a
    # high coin-flip rate; at the paper's p=0.002 the guarantee is
    # statistical over billions of activations, not a 500-access test.
    safety_overrides={"params": {"probability": 0.5}},
))
register_scheme(SchemeInfo(
    name="prcat",
    params_cls=PrcatParams,
    factory=_make_prcat,
    description="CAT with periodic reset at refresh-interval boundaries",
    safety_overrides={"params": {"n_counters": 8, "max_levels": 6}},
))
register_scheme(SchemeInfo(
    name="drcat",
    params_cls=DrcatParams,
    factory=_make_drcat,
    description="CAT with weight-driven merge/split reconfiguration",
    safety_overrides={"params": {"n_counters": 8, "max_levels": 6}},
))
register_scheme(SchemeInfo(
    name="ccache",
    params_cls=CCacheParams,
    factory=_make_ccache,
    description="Per-row counters behind an SRAM counter cache ([26])",
))


def make_scheme(
    kind: str,
    n_rows: int,
    refresh_threshold: int,
    *,
    params=None,
    prng=None,
    **kwargs,
) -> MitigationScheme:
    """Factory used by the simulator, specs, and benchmarks.

    Either pass a typed ``params`` record (e.g. ``DrcatParams(...)``)
    or keyword arguments validated against the scheme's declared
    fields.  ``kind`` is any registered scheme name.  ``prng`` is a
    construction-time object (not a serializable parameter) accepted by
    PRA only.
    """
    info = get_scheme_info(kind)
    if params is not None:
        if kwargs:
            raise TypeError(
                "make_scheme: pass either params= or keyword parameters, "
                "not both"
            )
        if not isinstance(params, info.params_cls):
            raise TypeError(
                f"scheme {info.name!r} expects {info.params_cls.__name__}, "
                f"got {type(params).__name__}"
            )
    else:
        params = build_params(info.name, **kwargs)
    extra = {}
    if prng is not None:
        if info.name != "pra":
            raise TypeError(f"scheme {info.name!r} takes no prng")
        extra["prng"] = prng
    return info.factory(n_rows, refresh_threshold, params, **extra)
