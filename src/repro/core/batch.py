"""Shared machinery for the exact batched (vectorized) scheme fast path.

The batched simulation engine (:mod:`repro.sim.engine`) replaces the
per-activation Python loop with numpy chunk processing while remaining
*event-exact*: it must emit the identical refresh-command sequence — at
the identical stream positions — as the scalar loop, and leave every
counter, statistic, and tree structure in the identical state.

The core idea is *headroom bisection*.  Counting schemes (SCA and the
CAT family) only change externally observable state when some counter
crosses a threshold: a refresh, a split, or a DRCAT harvest attempt.
Between such events, processing a chunk of activations is a pure
per-counter accumulation, which vectorizes as an ``np.bincount``.  Each
active counter therefore exposes a *headroom*: the number of further
hits it can absorb before its next event.  A chunk whose per-counter hit
counts all stay below the headroom is applied wholesale; otherwise
:func:`find_first_event` locates the exact first crossing position, the
prefix is applied in bulk, and the single event access is replayed
through the scheme's scalar ``access`` — which stays the oracle for all
tree mutations (split, harvest/merge, weight updates, epoch resets).

Headroom may be *conservative* (too small) without breaking exactness:
a flagged position whose scalar replay turns out not to be an event
simply costs one extra scalar call.  It must never be optimistic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import MitigationScheme, RefreshCommand

#: Window size for chunked batch processing.  Bounds the re-scan cost
#: after an event (one occurrence scan of at most this many ids) while
#: keeping the per-window Python overhead negligible.
BATCH_WINDOW = 2048


def find_first_event(
    ids: np.ndarray, headroom: np.ndarray, n_bins: int
) -> tuple[np.ndarray, int | None]:
    """Locate the first threshold-crossing position in one chunk.

    Parameters
    ----------
    ids:
        Per-access counter index (``int64``, values in ``[0, n_bins)``).
    headroom:
        Per-counter hits-until-next-event (``int64``, ``>= 1`` for every
        counter that appears in ``ids``).
    n_bins:
        Number of counters.

    Returns
    -------
    ``(counts, position)`` where ``counts`` is the per-counter hit count
    of the whole chunk and ``position`` is the index of the first access
    that reaches its counter's headroom — or ``None`` when the entire
    chunk is event-free.
    """
    counts = np.bincount(ids, minlength=n_bins)
    if len(counts) > n_bins:
        raise ValueError("counter id out of range")
    crossing = counts >= headroom
    if not crossing.any():
        return counts, None
    # Exact first crossing: only counters whose chunk hit count reaches
    # their headroom can trigger, and counter c triggers at its
    # headroom[c]-th occurrence (1-based).  Usually exactly one counter
    # crosses, so a direct occurrence scan beats an occurrence sort.
    position: int | None = None
    for c in crossing.nonzero()[0].tolist():
        occurrences = (ids == c).nonzero()[0]
        pos = int(occurrences[int(headroom[c]) - 1])
        if position is None or pos < position:
            position = pos
    return counts, position


def check_rows(rows: np.ndarray, n_rows: int) -> None:
    """Vectorized equivalent of the scalar per-access row range check."""
    if len(rows) and (int(rows.min()) < 0 or int(rows.max()) >= n_rows):
        bad = rows[(rows < 0) | (rows >= n_rows)][0]
        raise ValueError(f"row {int(bad)} out of range for bank with {n_rows} rows")


def counter_scheme_access_batch(
    scheme: "MitigationScheme", rows: np.ndarray
) -> list[tuple[int, list["RefreshCommand"]]]:
    """Exact batched access for tree-based schemes (PRCAT / DRCAT).

    Processes windows of accesses against the tree's row-block index
    map, maintaining the window's per-counter hit counts incrementally:
    event-free remainders apply wholesale via
    :meth:`CounterTree.apply_bulk_counts`, and each event access replays
    through the scheme's scalar ``access`` (the oracle).  Returns
    ``(position, commands)`` pairs for every access that emitted
    commands, in stream order.
    """
    n = len(rows)
    if n == 0:
        return []
    check_rows(rows, scheme.n_rows)
    tree = scheme.tree
    n_bins = tree.n_counters
    events: list[tuple[int, list["RefreshCommand"]]] = []
    scalar_calls = 0
    base = 0
    while base < n:
        chunk = rows[base : base + BATCH_WINDOW]
        # Gather once per window; re-gather (and re-count the remainder)
        # only after a structural mutation bumps the map version.
        ids = tree.map_rows_to_counters(chunk)
        version = tree._map_version
        counts = np.bincount(ids, minlength=n_bins)
        start = 0
        while True:
            headroom = tree._headroom()
            crossing = counts >= headroom
            if not crossing.any():
                # No event left in the window: apply the remainder.
                tree.apply_bulk_counts(counts)
                break
            # Counter c triggers at its headroom[c]-th remaining
            # occurrence; the earliest such position is the event.
            position: int | None = None
            for c in crossing.nonzero()[0].tolist():
                occurrences = (ids[start:] == c).nonzero()[0]
                pos = start + int(occurrences[int(headroom[c]) - 1])
                if position is None or pos < position:
                    position = pos
            prefix_counts = np.bincount(ids[start:position], minlength=n_bins)
            tree.apply_bulk_counts(prefix_counts)
            event_counter = int(ids[position])
            cmds = scheme.access(int(chunk[position]))
            scalar_calls += 1
            if cmds:
                events.append((base + position, cmds))
            start = position + 1
            if start >= len(chunk):
                break
            if tree._map_version != version:
                ids = tree.map_rows_to_counters(chunk)
                version = tree._map_version
                counts = np.bincount(ids[start:], minlength=n_bins)
            else:
                counts -= prefix_counts
                counts[event_counter] -= 1
        base += len(chunk)
    # Scalar replays already counted their own activations.
    scheme.stats.activations += n - scalar_calls
    return events


def counter_scheme_access_batch_jit(
    scheme: "MitigationScheme", rows: np.ndarray
) -> list[tuple[int, list["RefreshCommand"]]]:
    """Jit-tier exact batched access for tree-based schemes.

    Same contract and window structure as
    :func:`counter_scheme_access_batch`, but the three numpy passes per
    event (bincount, crossing test, occurrence scan) fuse into one
    sequential sweep of :func:`repro.core.jitkern.k_tree_scan`: the
    kernel accumulates per-counter hits and stops at the first access
    that reaches its counter's headroom.  The accumulated prefix applies
    via :meth:`CounterTree.apply_bulk_counts` and the event access
    replays through scalar ``access`` — the identical oracle, so events,
    statistics, and tree state stay bit-identical to the batched path.
    """
    from repro.core.jitkern import k_tree_scan

    n = len(rows)
    if n == 0:
        return []
    check_rows(rows, scheme.n_rows)
    tree = scheme.tree
    n_bins = tree.n_counters
    events: list[tuple[int, list["RefreshCommand"]]] = []
    scalar_calls = 0
    base = 0
    while base < n:
        chunk = rows[base : base + BATCH_WINDOW]
        # Gather once per window; re-gather only after a structural
        # mutation bumps the map version (splits invalidate the ids).
        ids = tree.map_rows_to_counters(chunk)
        version = tree._map_version
        start = 0
        while start < len(chunk):
            headroom = tree._headroom()
            hits = np.zeros(n_bins, dtype=np.int64)
            position = int(k_tree_scan(ids, start, headroom, hits))
            # ``hits`` holds the event-free prefix (event excluded).
            tree.apply_bulk_counts(hits)
            if position < 0:
                break
            cmds = scheme.access(int(chunk[position]))
            scalar_calls += 1
            if cmds:
                events.append((base + position, cmds))
            start = position + 1
            if tree._map_version != version:
                ids = tree.map_rows_to_counters(chunk)
                version = tree._map_version
        base += len(chunk)
    # Scalar replays already counted their own activations.
    scheme.stats.activations += n - scalar_calls
    return events
