"""USIMM-style memory trace records.

The Memory Scheduling Championship distributes traces as text lines of
the form ``<cycle-gap> <op> <address> [<pc>]`` where the cycle gap counts
non-memory instructions executed since the previous memory operation.
We implement the same format so synthetic workloads can be written to
disk, inspected, and replayed — and so a user with real MSC traces can
feed them straight in.

:class:`TraceRecord` is the in-memory form; :func:`write_trace` /
:func:`read_trace` handle the text serialisation.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory operation in a USIMM-style trace.

    Attributes
    ----------
    cycle_gap:
        Core cycles of non-memory work since the previous record.
    op:
        ``"R"`` (read) or ``"W"`` (write).
    address:
        Physical byte address.
    pc:
        Program counter of the instruction (0 when unknown).
    """

    cycle_gap: int
    op: str
    address: int
    pc: int = 0

    def __post_init__(self) -> None:
        if self.cycle_gap < 0:
            raise ValueError("cycle_gap must be non-negative")
        if self.op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    def to_line(self) -> str:
        """Serialise in MSC text format."""
        if self.pc:
            return f"{self.cycle_gap} {self.op} 0x{self.address:x} 0x{self.pc:x}"
        return f"{self.cycle_gap} {self.op} 0x{self.address:x}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse one MSC text line."""
        parts = line.split()
        if len(parts) not in (3, 4):
            raise ValueError(f"malformed trace line: {line!r}")
        gap = int(parts[0])
        op = parts[1].upper()
        address = int(parts[2], 0)
        pc = int(parts[3], 0) if len(parts) == 4 else 0
        return cls(gap, op, address, pc)


def write_trace(records: Iterable[TraceRecord], stream: io.TextIOBase) -> int:
    """Write records to a text stream; returns the number written."""
    count = 0
    for record in records:
        stream.write(record.to_line())
        stream.write("\n")
        count += 1
    return count


def read_trace(stream: io.TextIOBase) -> Iterator[TraceRecord]:
    """Yield records from a text stream, skipping blanks and comments."""
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield TraceRecord.from_line(line)


def save_trace(records: Iterable[TraceRecord], path: str) -> int:
    """Write a trace file to ``path``; returns the record count."""
    with open(path, "w", encoding="ascii") as f:
        return write_trace(records, f)


def load_trace(path: str) -> list[TraceRecord]:
    """Read a full trace file into memory."""
    with open(path, "r", encoding="ascii") as f:
        return list(read_trace(f))
