"""ROB-limited CPU front end, in the style of USIMM's processor model.

USIMM replays a trace through a simple out-of-order window: the core
fetches ``fetch_width`` instructions per cycle into a ``rob_entries``-deep
reorder buffer, retires up to ``retire_width`` per cycle, and a memory
operation can only retire once DRAM has answered it.  The visible effect
is that memory stalls throttle the rate at which later trace records
reach the memory system.

For this reproduction the front end's job is to convert a trace's
*cycle gaps* into *arrival timestamps* while modelling the first-order
feedback (a full ROB stops fetch).  The conversion is what gives the
simulator its time axis, which CMRPO (power = energy/time) and ETO both
depend on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cpu.trace import TraceRecord
from repro.dram.config import SystemConfig


@dataclass(frozen=True, slots=True)
class TimedAccess:
    """A memory operation with an absolute issue time."""

    time_ns: float
    address: int
    is_write: bool


class ROBFrontEnd:
    """Convert cycle-gap trace records into timestamped memory accesses.

    Parameters
    ----------
    config:
        Supplies core frequency and ROB geometry (Table I).
    memory_latency_ns:
        Nominal DRAM round-trip the front end assumes for occupancy
        accounting.  The detailed bank model downstream recomputes true
        completion times; this parameter only shapes issue-rate feedback.
    """

    def __init__(self, config: SystemConfig, memory_latency_ns: float = 75.0) -> None:
        self.config = config
        self.cycle_ns = 1.0 / config.core_freq_ghz
        self.memory_latency_ns = memory_latency_ns
        self._rob: deque[float] = deque()

    def schedule(self, records: list[TraceRecord]) -> list[TimedAccess]:
        """Assign an issue timestamp to every record in ``records``.

        The model walks the trace, advancing a core clock by each
        record's cycle gap (non-memory work), stalling when the ROB is
        full of outstanding memory operations, and issuing the memory op
        when a slot frees.
        """
        out: list[TimedAccess] = []
        now_ns = 0.0
        rob = self._rob
        rob.clear()
        rob_capacity = self.config.rob_entries
        for record in records:
            now_ns += record.cycle_gap * self.cycle_ns / self.config.fetch_width
            while rob and rob[0] <= now_ns:
                rob.popleft()
            if len(rob) >= rob_capacity:
                # ROB full: fetch stalls until the oldest miss returns.
                now_ns = rob.popleft()
                while rob and rob[0] <= now_ns:
                    rob.popleft()
            rob.append(now_ns + self.memory_latency_ns)
            out.append(
                TimedAccess(now_ns, record.address, record.op == "W")
            )
        return out

    def estimated_execution_time_ns(self, records: list[TraceRecord]) -> float:
        """Execution time of the trace under the nominal latency model."""
        timed = self.schedule(records)
        if not timed:
            return 0.0
        return timed[-1].time_ns + self.memory_latency_ns
