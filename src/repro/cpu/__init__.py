"""CPU front end: trace format and ROB-limited issue model."""

from repro.cpu.rob import ROBFrontEnd, TimedAccess
from repro.cpu.trace import (
    TraceRecord,
    load_trace,
    read_trace,
    save_trace,
    write_trace,
)

__all__ = [
    "ROBFrontEnd",
    "TimedAccess",
    "TraceRecord",
    "load_trace",
    "read_trace",
    "save_trace",
    "write_trace",
]
