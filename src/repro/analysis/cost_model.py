"""Refresh-cost model and split-threshold derivation (Section IV-D).

The paper derives the split thresholds from a cost model of refreshed
rows.  For the 4-counter example: a balanced tree refreshes
``CostSCA = w * R / T`` rows per interval (Eq. 2), while a tree that
deepened under a bias ``x`` toward one small group refreshes
``CostCAT = ((2w)^2 + w^2 + (w/2)^2 + (x + w/2) * w/2) * alpha / T``
rows (Eq. 3) with ``alpha = R / (x + 4w)``.  Equating the two yields the
critical bias ``x > 3w`` (Eq. 4) above which the unbalanced tree wins,
and the tie condition at that bias fixes adjacent split thresholds at a
ratio of 2 near the start of growth, with the last two thresholds pinned
at ``T/2`` and ``T``.

This module implements the cost functions (used in tests to verify the
critical bias) and the generalized threshold derivation that
:mod:`repro.core.thresholds` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass


def cost_sca(w: float, references: float, refresh_threshold: float) -> float:
    """Eq. 2: rows refreshed per interval by the balanced 4-counter tree.

    ``w = N/4`` is the rows per leaf of the balanced tree.
    """
    return w * references / refresh_threshold


def cost_cat(
    w: float, bias: float, references: float, refresh_threshold: float
) -> float:
    """Eq. 3: rows refreshed by the unbalanced tree of Figure 6(c).

    Counters at levels 1, 2, 3, 3 hold 2w, w, w/2, w/2 rows; the deepest
    group receives ``bias`` extra references.
    """
    alpha = references / (bias + 4 * w)
    weighted_rows = (
        (2 * w) ** 2 + w**2 + (w / 2) ** 2 + (bias + w / 2) * (w / 2)
    )
    return weighted_rows * alpha / refresh_threshold


def critical_bias(w: float) -> float:
    """Eq. 4: the bias above which the unbalanced tree wins (3w)."""
    return 3.0 * w


@dataclass(frozen=True)
class TreeShapeCost:
    """Refresh cost of an arbitrary tree shape under a reference split.

    ``levels`` lists the level of each leaf; ``shares`` the fraction of
    the R references each leaf receives.  The expected rows refreshed is
    ``sum(share_i * R / T * rows_i)`` where ``rows_i = N / 2^level_i``.
    """

    n_rows: int
    levels: tuple[int, ...]
    shares: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.shares):
            raise ValueError("levels and shares must have equal length")
        total_cover = sum(2.0 ** (-l) for l in self.levels)
        if abs(total_cover - 1.0) > 1e-9:
            raise ValueError(f"leaves do not tile the bank (cover={total_cover})")
        if abs(sum(self.shares) - 1.0) > 1e-9:
            raise ValueError("shares must sum to 1")

    def rows_refreshed(self, references: float, refresh_threshold: float) -> float:
        """Expected rows refreshed per interval under this shape."""
        total = 0.0
        for level, share in zip(self.levels, self.shares):
            group_rows = self.n_rows / (1 << level)
            hits = share * references / refresh_threshold
            total += hits * group_rows
        return total


def derive_split_thresholds(
    refresh_threshold: int, n_counters: int, max_levels: int
) -> list[int]:
    """Generalized split-threshold schedule (model strategy).

    Anchors:

    * ``T_{L-1} = T`` and ``T_{L-2} = T/2`` (convergence guarantee);
    * the first split ratio is 2 (the critical-bias tie condition of the
      4-counter example);
    * interior ratios ease toward 5/4, matching the published anchor
      sequence for (T=32K, M=64, L=10): 5155, 10309, 12886, 16384, 32768.

    Returns thresholds for levels ``log2(M)-1 .. L-1``.
    """
    import math

    m = int(math.log2(n_counters))
    first_level = m - 1
    last_level = max_levels - 1
    k = last_level - first_level + 1
    t = refresh_threshold
    if k <= 0:
        return []
    if k == 1:
        return [t]
    if k == 2:
        return [t // 2, t]
    n_head = k - 1
    values = [0.0] * n_head
    values[-1] = t / 2
    ratios = [2.0]
    n_ratios = n_head - 1
    for j in range(1, n_ratios):
        frac = (j - 1) / max(1, n_ratios - 2) if n_ratios > 2 else 0.0
        ratios.append(1.25 + 0.0215 * frac * (n_ratios - 1))
    for i in range(n_head - 2, -1, -1):
        values[i] = values[i + 1] / ratios[i]
    out = [int(round(v)) for v in values] + [t]
    for i in range(1, len(out)):
        if out[i] <= out[i - 1]:
            out[i] = out[i - 1] + 1
    return out
