"""Pseudo-random number generator models for PRA.

The paper's reliability analysis (Section III-A) shows that PRA's
closed-form unsurvivability holds only when the refresh coin-flips come
from a *true* random number generator.  A cheap LFSR produces correlated
draws: once an attacker (or an unlucky access pattern) is phase-aligned
with the register sequence, the per-access refresh events stop being
independent and failure probability rises by orders of magnitude.

Two models are provided:

* :class:`TrueRandomPRNG` — a high-quality generator (numpy PCG64) that
  stands in for the paper's 45 nm all-digital TRNG [25].
* :class:`LFSRPRNG` — a Fibonacci linear-feedback shift register with
  standard maximal-length taps, used by the Monte-Carlo study in
  :mod:`repro.analysis.unsurvivability`.
"""

from __future__ import annotations

import abc

import numpy as np

#: Maximal-length Fibonacci LFSR tap masks for the right-shift parity
#: form used by :meth:`LFSRPRNG.step` (feedback = parity(state & taps),
#: inserted at the MSB).  Widths 8/9/16/24 are exhaustively verified to
#: have period ``2**width - 1`` (see tests); the 32-bit constant is the
#: standard maximal-length mask, screened here for short cycles.
LFSR_TAPS: dict[int, int] = {
    8: 0x1D,
    9: 0x11,
    16: 0x100B,
    24: 0x87,
    32: 0xB4BCD35C,
}


class PRNG(abc.ABC):
    """Bit-serial random source, as the PRA hardware consumes it."""

    #: short identifier used in scheme descriptions and reports
    name: str = "abstract"

    @abc.abstractmethod
    def next_bits(self, n_bits: int) -> int:
        """Return an ``n_bits``-wide unsigned random draw."""

    def next_bits_batch(self, n_bits: int, count: int) -> np.ndarray:
        """Return ``count`` successive draws as an int64 array.

        Must consume the generator state exactly as ``count`` sequential
        :meth:`next_bits` calls would, so batched and scalar simulation
        engines observe the identical draw sequence.  The default loops;
        subclasses override with a vectorized implementation when their
        generator supports stream-equivalent bulk draws.
        """
        return np.fromiter(
            (self.next_bits(n_bits) for _ in range(count)),
            dtype=np.int64,
            count=count,
        )

    # -- checkpointable state (see repro.api) ----------------------------

    def to_state(self) -> dict:
        """JSON-serializable generator state; see :func:`prng_from_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} is not checkpointable"
        )

    def restore_state(self, state: dict) -> None:
        """Overwrite the generator state from a :meth:`to_state` doc."""
        raise NotImplementedError(
            f"{type(self).__name__} is not checkpointable"
        )


def prng_from_state(state: dict) -> "PRNG":
    """Rebuild a PRNG from its :meth:`PRNG.to_state` document.

    The ``kind`` field names the generator class; the restored instance
    continues the captured stream bit-exactly.
    """
    kinds: dict[str, type[PRNG]] = {
        TrueRandomPRNG.name: TrueRandomPRNG,
        LFSRPRNG.name: LFSRPRNG,
        CountingPRNG.name: CountingPRNG,
    }
    kind = state.get("kind")
    if kind not in kinds:
        raise ValueError(
            f"unknown PRNG kind {kind!r}; known: {', '.join(kinds)}"
        )
    prng = kinds[kind]() if kind != LFSRPRNG.name else LFSRPRNG(
        width=int(state["width"])
    )
    prng.restore_state(state)
    return prng


class TrueRandomPRNG(PRNG):
    """High-quality PRNG standing in for a hardware TRNG.

    Draws are i.i.d. uniform, so Eq. 1 of the paper applies exactly.
    A fixed ``seed`` gives reproducible simulations; ``seed=None`` seeds
    from the OS for genuinely independent runs.
    """

    name = "trng"

    def __init__(self, seed: int | None = 12345) -> None:
        self._rng = np.random.Generator(np.random.PCG64(seed))

    def next_bits(self, n_bits: int) -> int:
        """Draw ``n_bits`` i.i.d. uniform random bits."""
        return int(self._rng.integers(0, 1 << n_bits))

    def next_bits_batch(self, n_bits: int, count: int) -> np.ndarray:
        """Vectorized draws, stream-identical to sequential ``next_bits``.

        PCG64's bounded-integer sampling consumes the underlying stream
        per element identically for scalar and array requests (verified
        by ``tests/test_engine_equivalence.py``), so this is bit-exact.
        """
        return self._rng.integers(0, 1 << n_bits, size=count, dtype=np.int64)

    def to_state(self) -> dict:
        """Capture the full PCG64 stream position (JSON-safe big ints)."""
        return {"kind": self.name, "pcg64": self._rng.bit_generator.state}

    def restore_state(self, state: dict) -> None:
        """Resume the captured PCG64 stream bit-exactly."""
        self._rng.bit_generator.state = state["pcg64"]


class LFSRPRNG(PRNG):
    """Fibonacci LFSR: cheap in hardware, dangerously correlated.

    The register shifts once per emitted bit; an ``n_bits`` draw is the
    concatenation of ``n_bits`` successive output bits, exactly how a
    serial hardware LFSR would feed the PRA comparator.
    """

    name = "lfsr"

    def __init__(self, width: int = 16, seed: int = 0xACE1) -> None:
        if width not in LFSR_TAPS:
            raise ValueError(
                f"no tap table for width {width}; choose from {sorted(LFSR_TAPS)}"
            )
        if not 0 < seed < (1 << width):
            raise ValueError("seed must be a nonzero state within the register width")
        self.width = width
        self._taps = LFSR_TAPS[width]
        self._state = seed

    def step(self) -> int:
        """Advance one shift; return the emitted output bit.

        Fibonacci form: the feedback bit is the XOR (parity) of the
        tapped state bits; the register shifts right and the feedback
        enters at the most-significant position.
        """
        out = self._state & 1
        feedback = (self._state & self._taps).bit_count() & 1
        self._state >>= 1
        if feedback:
            self._state |= 1 << (self.width - 1)
        return out

    def next_bits(self, n_bits: int) -> int:
        """Concatenate ``n_bits`` successive serial output bits."""
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.step()
        return value

    @property
    def period_bound(self) -> int:
        """Upper bound on the state period (``2**width - 1``)."""
        return (1 << self.width) - 1

    def to_state(self) -> dict:
        """Width + register contents fully determine the sequence."""
        return {"kind": self.name, "width": self.width, "state": self._state}

    def restore_state(self, state: dict) -> None:
        """Resume from a captured register value (width must match)."""
        if int(state["width"]) != self.width:
            raise ValueError(
                f"LFSR width mismatch: state {state['width']}, "
                f"register {self.width}"
            )
        self._state = int(state["state"])


class CountingPRNG(PRNG):
    """Deterministic counter source for tests (worst-case correlation)."""

    name = "counting"

    def __init__(self, start: int = 0) -> None:
        self._value = start

    def next_bits(self, n_bits: int) -> int:
        """Return the low bits of a monotonically increasing counter."""
        out = self._value & ((1 << n_bits) - 1)
        self._value += 1
        return out

    def next_bits_batch(self, n_bits: int, count: int) -> np.ndarray:
        """Vectorized counter draws (identical to sequential calls)."""
        out = (np.arange(self._value, self._value + count, dtype=np.int64)
               & ((1 << n_bits) - 1))
        self._value += count
        return out

    def to_state(self) -> dict:
        """The counter value is the whole state."""
        return {"kind": self.name, "value": self._value}

    def restore_state(self, state: dict) -> None:
        """Resume the counter sequence."""
        self._value = int(state["value"])
