"""SCA energy-breakdown model (Figure 2 of the paper).

Figure 2 sweeps the number of SCA counters per bank from 16 to 65536 and
plots, over one 64 ms interval:

* counter energy (static + dynamic) — grows with M;
* victim-refresh energy — shrinks with M (smaller groups refreshed);
* their total — minimised around M = 128;
* horizontal reference lines for the 2KB and 8KB counter caches of [26],
  which intersect the SCA curve at the iso-storage points (SCA4096 /
  SCA16384).

The counter energy extends the Table II power law below/above its anchor
range; the refresh energy uses the measured mean victim-row counts of
the 18 workloads (or a caller-provided value), matching the paper's
footnote that the refresh energy is the 18-workload average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.config import REFRESH_INTERVAL_S, ROW_REFRESH_ENERGY_NJ
from repro.energy.hardware_model import scheme_hardware

#: Figure 2's x-axis: counters per bank.
FIGURE2_M_SWEEP = tuple(16 << i for i in range(13))  # 16 .. 65536

#: Storage equivalence of the counter caches in [26]: a 2KB cache holds
#: ~1K two-byte counters per bank spread over 2 banks' worth in the
#: paper's plot — the lines intersect SCA4096 and SCA16384 (iso total
#: counter storage, Section III-B).
COUNTER_CACHE_SIZES = {"2KB": 4096, "8KB": 16384}


@dataclass(frozen=True)
class SCAEnergyPoint:
    """One M-value of the Figure 2 sweep (energies in nJ per interval)."""

    n_counters: int
    counter_energy_nj: float
    refresh_energy_nj: float

    @property
    def total_nj(self) -> float:
        """Counter plus refresh energy (the Figure 2 total line)."""
        return self.counter_energy_nj + self.refresh_energy_nj


def counter_energy_nj(
    n_counters: int,
    accesses_per_interval: float,
    refresh_threshold: int = 32768,
) -> float:
    """Static + dynamic energy of M SCA counters over one interval."""
    hw = scheme_hardware("sca", n_counters, refresh_threshold)
    dynamic = hw.dynamic_nj_per_access * accesses_per_interval
    return hw.static_nj_per_interval + dynamic


def refresh_energy_nj(
    n_counters: int,
    n_rows: int,
    accesses_per_interval: float,
    refresh_threshold: int = 32768,
    skew_efficiency: float = 0.55,
) -> float:
    """Victim-refresh energy of SCA_M over one interval (model form).

    Each counter hit refreshes ``N/M + 2`` rows.  The number of hits is
    at most ``R / T`` and is reduced by access skew (counts stranded
    below T in cold groups); ``skew_efficiency`` is the measured mean
    fraction for the 18 workloads (the simulator measures it directly;
    this closed form is for the Figure 2 sweep where the paper also uses
    the 18-workload mean).
    """
    if n_counters <= 0 or n_rows <= 0:
        raise ValueError("n_counters and n_rows must be positive")
    group = n_rows / n_counters
    max_hits = accesses_per_interval / refresh_threshold
    hits = max_hits * min(1.0, skew_efficiency * (1.0 + 1.0 / math.log2(2 + n_counters)))
    return hits * (group + 2) * ROW_REFRESH_ENERGY_NJ


def figure2_sweep(
    n_rows: int = 65536,
    accesses_per_interval: float = 582_000.0,
    refresh_threshold: int = 32768,
    m_values: tuple[int, ...] = FIGURE2_M_SWEEP,
    measured_refresh_nj: dict[int, float] | None = None,
) -> list[SCAEnergyPoint]:
    """Compute the Figure 2 series.

    ``measured_refresh_nj`` lets the benchmark substitute simulator-
    measured refresh energies for the closed-form model.
    """
    points = []
    for m in m_values:
        counter = counter_energy_nj(m, accesses_per_interval, refresh_threshold)
        if measured_refresh_nj and m in measured_refresh_nj:
            refresh = measured_refresh_nj[m]
        else:
            refresh = refresh_energy_nj(
                m, n_rows, accesses_per_interval, refresh_threshold
            )
        points.append(SCAEnergyPoint(m, counter, refresh))
    return points


def optimal_m(points: list[SCAEnergyPoint]) -> int:
    """The M minimising total energy (the paper finds 128)."""
    return min(points, key=lambda p: p.total_nj).n_counters


def counter_cache_energy_nj(
    cache_label: str,
    accesses_per_interval: float,
    refresh_threshold: int = 32768,
) -> float:
    """Optimistic (no-miss) energy of a counter cache of [26].

    The paper plots these as horizontal lines that intersect the SCA
    curve at the iso-storage M (same total counter storage), so the
    model evaluates the SCA counter energy at that equivalent M.
    """
    if cache_label not in COUNTER_CACHE_SIZES:
        raise KeyError(
            f"unknown cache {cache_label!r}; choose from {sorted(COUNTER_CACHE_SIZES)}"
        )
    equivalent_m = COUNTER_CACHE_SIZES[cache_label]
    return counter_energy_nj(equivalent_m, accesses_per_interval, refresh_threshold)


def mitigation_energy_nj(total_mw: float) -> float:
    """Mitigation energy of one 64 ms refresh interval (nJ).

    Converts a CMRPO-style mitigation *power* (mW per bank, see
    :class:`repro.energy.cmrpo.CMRPOBreakdown`) into the per-interval
    *energy* the Figure 2-style plots use: ``P[mW] × 64 ms`` (1 mW over
    an interval is 6.4e4 nJ).

    Parameters
    ----------
    total_mw:
        Mitigation power in mW per bank (must be >= 0).

    Returns
    -------
    float
        Energy spent over one refresh interval, in nJ.
    """
    if total_mw < 0:
        raise ValueError("total_mw must be non-negative")
    return total_mw * 1e-3 * REFRESH_INTERVAL_S * 1e9


def energy_savings_pct(baseline_nj: float, scheme_nj: float) -> float:
    """Per-interval mitigation-energy saving vs a baseline (percent).

    Positive when the scheme spends less energy than the baseline;
    negative when it spends more (PRA vs a cheap counter scheme).  100%
    means free; 0% means parity.

    Parameters
    ----------
    baseline_nj:
        Baseline scheme's per-interval energy in nJ (must be > 0).
    scheme_nj:
        Compared scheme's per-interval energy in nJ.

    Returns
    -------
    float
        ``100 × (1 − scheme/baseline)``.
    """
    if baseline_nj <= 0:
        raise ValueError("baseline_nj must be positive")
    return 100.0 * (1.0 - scheme_nj / baseline_nj)


def energy_crossover_m(points: list[SCAEnergyPoint]) -> int:
    """Smallest M where counter energy exceeds refresh energy.

    Figure 2's qualitative story: refresh dominates at small M, counters
    dominate at large M; the crossover sits near the optimum.
    """
    for point in points:
        if point.counter_energy_nj > point.refresh_energy_nj:
            return point.n_counters
    return points[-1].n_counters
