"""PRA reliability analysis (Section III-A, Figure 1, Eq. 1).

PRA protects a victim row only if at least one of the aggressor's T
activations wins the refresh coin-flip.  With a true RNG the probability
of an error within Y years is::

    unsurvivability = (1 - p)^T * Q0 * Q1        (Eq. 1)

where ``p`` is the per-access refresh probability, ``Q0`` the number of
refresh-threshold windows per 64 ms interval, and ``Q1`` the number of
64 ms periods in Y years.  The module also provides the Monte-Carlo
study that exposes the weakness of LFSR-driven PRA: correlated draws
break the independence assumption of Eq. 1, so failures occur orders of
magnitude earlier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.prng import PRNG, LFSRPRNG
from repro.dram.config import REFRESH_INTERVAL_S

#: Chipkill's 5-year unsurvivability reference line from Figure 1.
CHIPKILL_UNSURVIVABILITY = 1e-4


def periods_in_years(years: float) -> float:
    """Number of 64 ms refresh periods in ``years`` years (Q1)."""
    return years * 365.0 * 24 * 3600 / REFRESH_INTERVAL_S


def unsurvivability(
    probability: float,
    refresh_threshold: int,
    years: float = 5.0,
    q0: float = 20.0,
) -> float:
    """Eq. 1: PRA's probability of at least one error within ``years``.

    ``q0`` is the number of threshold windows per refresh interval; the
    paper plots q0 ∈ {10, 15, 20, 40} for T ∈ {32K, 24K, 16K, 8K}.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    if refresh_threshold <= 0:
        raise ValueError("refresh_threshold must be positive")
    q1 = periods_in_years(years)
    log_survive_one = refresh_threshold * math.log1p(-probability)
    return math.exp(log_survive_one) * q0 * q1


def figure1_grid(
    thresholds: tuple[int, ...] = (32768, 24576, 16384, 8192),
    probabilities: tuple[float, ...] = (0.001, 0.002, 0.003, 0.004, 0.005, 0.006),
    years: float = 5.0,
    q0_by_threshold: dict[int, float] | None = None,
) -> dict[int, dict[float, float]]:
    """The full Figure 1 data grid: {T: {p: unsurvivability}}.

    The paper pairs larger q0 with smaller T (more threshold windows per
    interval when the threshold shrinks): q0 = 10, 15, 20, 40.
    """
    if q0_by_threshold is None:
        q0_by_threshold = {32768: 10.0, 24576: 15.0, 16384: 20.0, 8192: 40.0}
    grid: dict[int, dict[float, float]] = {}
    for t in thresholds:
        q0 = q0_by_threshold.get(t, 20.0)
        grid[t] = {
            p: unsurvivability(p, t, years=years, q0=q0) for p in probabilities
        }
    return grid


def minimum_probability_for_reliability(
    refresh_threshold: int,
    target: float = CHIPKILL_UNSURVIVABILITY,
    years: float = 5.0,
    q0: float = 20.0,
) -> float:
    """Smallest p meeting a target unsurvivability (inverts Eq. 1).

    Used to justify the paper's choice of p per threshold (e.g. p=0.003
    at T=16K because p=0.002 misses the Chipkill line).
    """
    q1 = periods_in_years(years)
    # (1-p)^T * Q0 * Q1 <= target  =>  p >= 1 - (target/(Q0*Q1))^(1/T)
    return 1.0 - (target / (q0 * q1)) ** (1.0 / refresh_threshold)


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of an LFSR-PRA Monte-Carlo reliability run."""

    n_windows: int
    failures: int
    refresh_threshold: int
    probability: float
    prng_name: str

    @property
    def failure_rate(self) -> float:
        """Fraction of aggressor windows that completed unrefreshed."""
        return self.failures / self.n_windows if self.n_windows else 0.0

    def intervals_to_reach(self, target: float, q0: float = 20.0) -> float:
        """Refresh intervals until cumulative failure reaches ``target``.

        Treats each interval as ``q0`` independent windows with the
        measured per-window failure rate.
        """
        if self.failure_rate <= 0.0:
            return math.inf
        per_interval = self.failure_rate * q0
        if per_interval >= 1.0:
            return 1.0
        return math.log1p(-target) / math.log1p(-per_interval)


def monte_carlo_window_failures(
    prng: PRNG,
    probability: float,
    refresh_threshold: int,
    n_windows: int,
    random_bits: int = 9,
) -> MonteCarloResult:
    """Estimate the per-window failure rate of PRA under a given PRNG.

    One *window* is T consecutive activations of an aggressor row; PRA
    fails the window when none of the T coin-flips triggers a refresh.
    For a true RNG the rate approaches ``(1-p)^T``; for an LFSR the
    draws repeat with the register period and the rate can be grossly
    higher (or pattern-locked to 0 or 1).
    """
    cut = max(1, round(probability * (1 << random_bits)))
    failures = 0
    for _ in range(n_windows):
        refreshed = False
        for _ in range(refresh_threshold):
            if prng.next_bits(random_bits) < cut:
                refreshed = True
                break
        if not refreshed:
            failures += 1
    return MonteCarloResult(
        n_windows=n_windows,
        failures=failures,
        refresh_threshold=refresh_threshold,
        probability=probability,
        prng_name=prng.name,
    )


def lfsr_effective_failure_rate(
    width: int,
    probability: float,
    refresh_threshold: int,
    random_bits: int = 9,
    seed: int = 0xACE1,
) -> float:
    """Exact per-window failure behaviour of a small LFSR.

    Because the LFSR sequence is deterministic with period 2^width - 1,
    a window fails iff the aligned stretch of T draws contains no value
    below the cut.  This walks one full period and reports the fraction
    of alignments that fail — the quantity a phase-aligned attacker
    controls.
    """
    seed = seed & ((1 << width) - 1) or 1  # fold the seed into the register
    lfsr = LFSRPRNG(width=width, seed=seed)
    period = lfsr.period_bound
    draws = [lfsr.next_bits(random_bits) for _ in range(period)]
    cut = max(1, round(probability * (1 << random_bits)))
    hits = [d < cut for d in draws]
    # For each alignment, does the window of T draws (cyclic) miss all hits?
    # Compute gaps between consecutive hits once instead of O(period*T).
    hit_positions = [i for i, h in enumerate(hits) if h]
    if not hit_positions:
        return 1.0
    failures = 0
    n = len(hit_positions)
    for i in range(n):
        gap = (hit_positions[(i + 1) % n] - hit_positions[i]) % period
        # Alignments starting just after hit i fail when the next hit is
        # more than T draws away.
        failures += max(0, gap - refresh_threshold)
    return failures / period
