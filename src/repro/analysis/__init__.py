"""Analytical models: reliability, PRNGs, SCA energy, threshold costs."""

from repro.analysis.cost_model import (
    TreeShapeCost,
    cost_cat,
    cost_sca,
    critical_bias,
    derive_split_thresholds,
)
from repro.analysis.prng import PRNG, CountingPRNG, LFSRPRNG, TrueRandomPRNG
from repro.analysis.sca_energy import (
    COUNTER_CACHE_SIZES,
    FIGURE2_M_SWEEP,
    SCAEnergyPoint,
    counter_cache_energy_nj,
    counter_energy_nj,
    energy_crossover_m,
    figure2_sweep,
    optimal_m,
    refresh_energy_nj,
)
from repro.analysis.unsurvivability import (
    CHIPKILL_UNSURVIVABILITY,
    MonteCarloResult,
    figure1_grid,
    lfsr_effective_failure_rate,
    minimum_probability_for_reliability,
    monte_carlo_window_failures,
    periods_in_years,
    unsurvivability,
)

__all__ = [
    "PRNG",
    "TrueRandomPRNG",
    "LFSRPRNG",
    "CountingPRNG",
    "TreeShapeCost",
    "cost_sca",
    "cost_cat",
    "critical_bias",
    "derive_split_thresholds",
    "CHIPKILL_UNSURVIVABILITY",
    "unsurvivability",
    "figure1_grid",
    "minimum_probability_for_reliability",
    "periods_in_years",
    "MonteCarloResult",
    "monte_carlo_window_failures",
    "lfsr_effective_failure_rate",
    "SCAEnergyPoint",
    "figure2_sweep",
    "counter_energy_nj",
    "refresh_energy_nj",
    "counter_cache_energy_nj",
    "optimal_m",
    "energy_crossover_m",
    "FIGURE2_M_SWEEP",
    "COUNTER_CACHE_SIZES",
]
