"""Single source of the package version.

``setup.py`` reads this file at build time and :mod:`repro` exposes it
as ``repro.__version__`` (preferring the installed distribution's
metadata, which is generated from this same constant), so the version
can never drift between the package, the metadata, and ``repro
--version``.
"""

__version__ = "0.4.0"
