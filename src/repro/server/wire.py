"""JSON wire schema of the ``repro serve`` HTTP API.

One module owns every document shape that crosses the wire, so the
golden round-trip tests (and any future client) have a single surface
to pin.  Requests reuse the experiment layer's existing serialized
forms verbatim — a ``POST /v1/runs`` body is exactly the
:meth:`ExperimentSpec.to_dict` document ``repro run --spec`` reads, and
``POST /v1/plans`` takes the ``repro plan --spec`` document — wrapped in
a thin envelope that leaves room for submission options.

Responses carry ``wire_version`` so clients can detect incompatible
servers; bump :data:`WIRE_VERSION` on breaking layout changes.
"""

from __future__ import annotations

import json

from repro.experiments.plan import Plan
from repro.experiments.spec import ExperimentSpec, SpecError

#: Version stamp of every response envelope; bump on breaking changes.
WIRE_VERSION = 1

#: Upper bound on request body size (a plan grid document is a few KiB;
#: anything near this is abuse, not an experiment).
MAX_BODY_BYTES = 4 * 2**20


class WireError(ValueError):
    """A request the wire layer rejects; carries the HTTP status.

    ``retry_after`` (seconds) marks a *transient* rejection — admission
    control turning work away while draining (503) or saturated (429);
    the handler surfaces it as a ``Retry-After`` header so well-behaved
    clients back off instead of hammering.
    """

    def __init__(self, message: str, status: int = 400,
                 code: str = "bad-request",
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


def parse_json_body(body: bytes) -> dict:
    """Decode a request body into a JSON object (or raise 400)."""
    if not body:
        raise WireError("request body is empty (expected a JSON document)")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise WireError("request body must be a JSON object")
    return doc


def parse_run_request(doc: dict) -> ExperimentSpec:
    """The :class:`ExperimentSpec` a ``POST /v1/runs`` body describes.

    Accepts either the bare spec document or ``{"spec": {...}}`` (the
    envelope form mirrors ``{"plan": ...}`` submissions).
    """
    spec_doc = doc.get("spec", doc)
    if not isinstance(spec_doc, dict):
        raise WireError("'spec' must be a JSON object")
    try:
        return ExperimentSpec.from_dict(spec_doc)
    except (SpecError, ValueError, TypeError, KeyError) as exc:
        raise WireError(f"invalid experiment spec: {exc}",
                        code="invalid-spec") from None


def parse_plan_request(doc: dict) -> Plan:
    """The :class:`Plan` a ``POST /v1/plans`` body describes.

    Accepts the bare plan document (``kind: repro-experiment-plan``) or
    ``{"plan": {...}}``.
    """
    plan_doc = doc.get("plan", doc)
    if not isinstance(plan_doc, dict):
        raise WireError("'plan' must be a JSON object")
    try:
        return Plan.from_dict(plan_doc)
    except (SpecError, ValueError, TypeError, KeyError) as exc:
        raise WireError(f"invalid experiment plan: {exc}",
                        code="invalid-plan") from None


def envelope(doc: dict) -> dict:
    """Stamp one response document with the wire version."""
    return {"wire_version": WIRE_VERSION, **doc}


def error_doc(exc: "WireError | Exception", status: int = 500) -> dict:
    """The error envelope every non-2xx response carries."""
    if isinstance(exc, WireError):
        return envelope({
            "error": {"code": exc.code, "status": exc.status,
                      "message": str(exc)},
        })
    return envelope({
        "error": {"code": "internal", "status": status, "message": str(exc)},
    })


def dump(doc: dict) -> bytes:
    """Canonical response bytes: sorted keys, trailing newline.

    Sorted, separator-stable JSON makes byte-identity assertions
    (server result vs direct ``repro run``) meaningful on the wire.
    """
    return (json.dumps(doc, sort_keys=True, indent=1) + "\n").encode("utf-8")


# -- Server-Sent Events ----------------------------------------------------

def sse_event(event: str, event_id: int, data: dict) -> bytes:
    """One SSE frame: ``event``/``id``/``data`` lines + blank line.

    ``data`` is a single compact-JSON line, so the frame never needs
    multi-line data continuation.
    """
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return (
        f"event: {event}\nid: {event_id}\ndata: {payload}\n\n"
    ).encode("utf-8")


def sse_comment(text: str) -> bytes:
    """An SSE comment frame (keep-alive; ignored by clients)."""
    return f": {text}\n\n".encode("utf-8")


__all__ = [
    "WIRE_VERSION",
    "MAX_BODY_BYTES",
    "WireError",
    "parse_json_body",
    "parse_run_request",
    "parse_plan_request",
    "envelope",
    "error_doc",
    "dump",
    "sse_event",
    "sse_comment",
]
