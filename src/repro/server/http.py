"""Minimal HTTP/1.1 framing over asyncio streams, stdlib-only.

Just enough protocol for the service's JSON + SSE surface — request
line, headers, ``Content-Length`` bodies, fixed-length responses, and
chunk-free streaming responses that end by connection close (the SSE
contract).  Every connection is ``Connection: close``: the clients this
serves (curl, test harnesses, SDK loops) reconnect cheaply, and
dropping keep-alive removes a whole class of framing bugs from
hand-rolled parsing.

The parser is deliberately strict and bounded: oversized request lines,
header blocks, or bodies are rejected with 4xx rather than buffered —
the server fronts a simulation fleet, not the open internet, but it
should never be trivially OOM-able either.
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterator
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Bounds on the request head (line + headers) and default body cap.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_HEADERS = 64

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or over-limit request; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # lower-cased names
    body: bytes = b""


@dataclass
class Response:
    """One response: a fixed JSON body or a streaming (SSE) generator."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json; charset=utf-8"
    headers: dict[str, str] = field(default_factory=dict)
    #: when set, the body is streamed from this async iterator and the
    #: response ends by connection close (SSE)
    stream: AsyncIterator[bytes] | None = None


async def read_request(reader: asyncio.StreamReader,
                       max_body: int) -> Request | None:
    """Parse one request off the stream.

    Returns None on a clean EOF before any bytes (client closed an idle
    connection); raises :class:`HttpError` on malformed input.
    """
    try:
        raw_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(raw_line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = raw_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {raw_line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    total = 0
    for _ in range(MAX_HEADERS + 1):
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers") from None
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        line = raw.decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "invalid Content-Length") from None
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than "
                                 "Content-Length") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported; "
                             "send Content-Length")

    split = urlsplit(target)
    query = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(response: Response) -> bytes:
    reason = STATUS_REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "Content-Type": response.content_type,
        "Connection": "close",
        **response.headers,
    }
    if response.stream is None:
        headers["Content-Length"] = str(len(response.body))
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter,
                         response: Response) -> None:
    """Send one response; streams the body when ``stream`` is set."""
    writer.write(_head(response))
    if response.stream is None:
        writer.write(response.body)
        await writer.drain()
        return
    await writer.drain()
    async for chunk in response.stream:
        writer.write(chunk)
        await writer.drain()


__all__ = [
    "MAX_REQUEST_LINE",
    "MAX_HEADER_BYTES",
    "STATUS_REASONS",
    "HttpError",
    "Request",
    "Response",
    "read_request",
    "write_response",
]
