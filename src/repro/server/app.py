"""The ``repro serve`` application: routes → experiment layer.

:class:`ReproServer` owns the job table, the SSE hub, a
:class:`ResultCache` shared by every job, and a small thread pool that
*drives* jobs (the heavy lifting still happens where it always did:
single runs execute a streaming :class:`~repro.api.Session` on the
driving thread, plans shard their cells onto the process-wide
:class:`~repro.experiments.SweepPool` through the fault-tolerant
:func:`run_plan` scheduler).

Deduplication happens at two layers, both keyed by content hash:

* **completed** work — the submit handlers consult the result cache
  first; a full hit becomes a job that is born ``done`` (zero
  simulation, provable via the cache hit/miss counters);
* **in-flight** work — the job table's
  :class:`~repro.experiments.shared.SharedWorkRegistry` attaches
  concurrent identical submissions to the one job already executing.

Every handler is synchronous and pure enough to call directly from
tests (``server.handle(Request(...)) -> Response``); only the SSE
endpoint returns a streaming response, whose generator bridges the
job's :class:`~repro.server.hub.EventHub` channel onto the socket.

Crash safety
------------
The server is restart-transparent: every accepted submission is
journaled (:mod:`repro.server.journal`) before work starts, and
:meth:`ReproServer.__init__` replays the journal from the previous
incarnation — finished jobs reload their results from the
:class:`ResultCache`, unfinished jobs are re-enqueued (plans recompute
only the cells the cache does not already hold; runs resume from the
periodic ``"serve"`` session snapshot the driver checkpoints every
``checkpoint_epochs`` epochs).  Recovered results are byte-identical to
an uninterrupted run: cells by per-cell seeding, sessions by the PR-4
snapshot/restore equivalence proof.

SIGTERM/SIGINT trigger a *graceful drain* (see :meth:`drain`): new
submissions get 503 + Retry-After while status reads stay live, running
sessions checkpoint, running plans stop cooperatively at the next cell
boundary, the journal flushes, and the process exits within
``drain_deadline_s``.  A supervision loop requeues jobs whose driver
thread stops heartbeating, and admission control sheds load (429) when
the queue is full.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import logging
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro._version import __version__
from repro.errors import is_retryable
from repro.experiments.cache import ResultCache
from repro.experiments.run import run_plan
from repro.locking import lock_backend, lock_stats
from repro.server import wire
from repro.server.http import (
    HttpError,
    Request,
    Response,
    read_request,
    write_response,
)
from repro.server.hub import EventHub
from repro.server.journal import Journal, JournaledJob
from repro.server.jobs import JOB_STATES, Job, JobTable
from repro.server.routes import match
from repro.testing.faults import fault_point

logger = logging.getLogger(__name__)

#: How long one connection may take to send its request head + body.
_REQUEST_TIMEOUT_S = 30.0

#: Journal directory name under the cache root (beside the
#: fingerprint-salted result partitions, so code edits that move the
#: partition never orphan the journal).
JOURNAL_DIR = "journal"

#: The snapshot tag run-job checkpoints are stored under.
SNAPSHOT_TAG = "serve"


@dataclass
class ServerConfig:
    """Tunables of one server instance (all CLI-exposed ones first)."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: SweepPool width plan cells shard onto
    workers: int = 2
    #: result-cache directory; None = a private temp dir per server
    cache_dir: str | None = None
    #: job-driving threads (concurrent runs; plans serialize, see below)
    driver_threads: int = 4
    max_jobs: int = 256
    job_ttl_s: float = 3600.0
    #: per-job SSE event ring size (older events age out for late/slow
    #: subscribers; publishers never block on it)
    event_backlog: int = 512
    #: SSE keep-alive comment cadence
    keepalive_s: float = 15.0
    max_body: int = wire.MAX_BODY_BYTES
    #: plan-cell retry budget / timeout, passed through to run_plan
    max_retries: int = 2
    cell_timeout: float | None = None
    #: run jobs checkpoint a session snapshot every this many epochs
    #: (0 disables periodic checkpoints; drain still checkpoints)
    checkpoint_epochs: int = 2
    #: graceful-drain budget: running work gets this long to checkpoint
    #: and stop before the process exits anyway
    drain_deadline_s: float = 20.0
    #: a running job whose heartbeat is older than this is presumed
    #: stalled and requeued under a fresh generation
    stall_timeout_s: float = 120.0
    #: admission control: reject (429) when this many jobs are queued
    max_queued: int = 64
    #: how many times a job may be requeued (stall or retryable driver
    #: failure) before it is marked failed
    max_job_requeues: int = 2


class ReproServer:
    """The asyncio HTTP service over the experiment layer."""

    def __init__(self, config: ServerConfig | None = None, *,
                 clock=time.monotonic) -> None:
        self.config = config or ServerConfig()
        self.hub = EventHub(backlog=self.config.event_backlog)
        if self.config.cache_dir is None:
            self._cache_root = tempfile.mkdtemp(prefix="repro-serve-cache-")
        else:
            self._cache_root = self.config.cache_dir
        self.cache = ResultCache(self._cache_root)
        self.journal = Journal(Path(self._cache_root) / JOURNAL_DIR)
        self.jobs = JobTable(
            self.hub, clock=clock,
            max_jobs=self.config.max_jobs, ttl_s=self.config.job_ttl_s,
            journal=self.journal,
        )
        self._drivers = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.driver_threads,
            thread_name_prefix="repro-job",
        )
        #: one plan at a time: plans already fan out across the whole
        #: process-wide SweepPool, so running two concurrently would
        #: just thrash it (and SweepPool's build path is not re-entrant)
        self._plan_lane = threading.Lock()
        #: job_id → (execute fn, payload), kept while the job is live so
        #: requeues (stall, retryable driver failure) can relaunch it
        self._work: dict[str, tuple] = {}
        self._work_lock = threading.Lock()
        self._draining = threading.Event()
        #: driver threads currently executing a job (drain waits on 0)
        self._active_drivers = 0
        self._active_lock = threading.Lock()
        #: what startup recovery did (surfaced in /v1/health)
        self.recovery = {
            "replayed": 0, "requeued": 0, "restored_done": 0,
            "restored_failed": 0, "resumed_from_snapshot": 0,
            "skipped": 0, "supervisor_requeues": 0,
        }
        self.started_unix = time.time()
        self.bound_port: int | None = None
        self._recover()

    # -- startup recovery --------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal of a previous incarnation (if any).

        Recovery matrix, per replayed job state:

        ========== =====================================================
        queued     re-enqueue (re-parse the journaled document)
        running    re-enqueue; run jobs resume from their ``"serve"``
                   snapshot, plan jobs recompute only uncached cells
        done       reload results from the ResultCache — or re-enqueue
                   when the cache no longer holds them
        failed     restore as failed (``recovered=true``)
        ========== =====================================================

        Terminal jobs older than ``job_ttl_s`` are skipped (the table
        would GC them immediately anyway).  After the fold the journal
        is compacted to one fresh segment holding exactly the surviving
        jobs, so restart chains never re-read dead history.
        """
        replayed = self.journal.replay()
        if not replayed:
            return
        survivors: list[JournaledJob] = []
        relaunch: list[tuple[Job, object, object]] = []
        now = time.time()
        for entry in replayed.values():
            self.recovery["replayed"] += 1
            if entry.finished and entry.finished_unix is not None and \
                    now - entry.finished_unix >= self.config.job_ttl_s:
                self.recovery["skipped"] += 1
                continue
            job = Job(
                id=entry.id, kind=entry.kind,
                content_hash=entry.content_hash, n_cells=entry.n_cells,
                created_unix=entry.submitted_unix,
                created_s=self.jobs._clock(),
            )
            if entry.status == "failed":
                job.status = "failed"
                job.error = entry.error
                job.started_s = job.finished_s = job.created_s
                self.jobs.adopt(job)
                self.recovery["restored_failed"] += 1
                survivors.append(entry)
                continue
            try:
                payload, execute = self._parse_recovered(entry)
            except Exception as exc:  # noqa: BLE001 - corrupt doc
                job.status = "failed"
                job.error = f"recovery: unreadable document " \
                            f"({type(exc).__name__}: {exc})"
                job.started_s = job.finished_s = job.created_s
                self.jobs.adopt(job)
                entry.status, entry.error = "failed", job.error
                self.recovery["restored_failed"] += 1
                survivors.append(entry)
                continue
            if entry.status == "done":
                results = self._cached_results(entry.kind, payload)
                if results is not None:
                    job.status = "done"
                    job.cached = True
                    job.started_s = job.finished_s = job.created_s
                    for key, value in results.items():
                        setattr(job, key, value)
                    self.jobs.adopt(job)
                    self.recovery["restored_done"] += 1
                    survivors.append(entry)
                    continue
                # The cache lost the results (cleared, or a code edit
                # moved the partition): the job must earn "done" again.
            job.status = "queued"
            entry.status, entry.error, entry.finished_unix = \
                "queued", None, None
            if self.jobs.adopt(job):
                relaunch.append((job, payload, execute))
                self.recovery["requeued"] += 1
            survivors.append(entry)
        # Compact *before* relaunching: post-compaction appends land in
        # the fresh segment; records written into doomed segments first
        # would be deleted out from under the jobs that wrote them.
        try:
            self.journal.compact(survivors)
        except OSError:
            logger.exception("journal compaction failed; recovering "
                             "on the uncompacted journal")
        for job, payload, execute in relaunch:
            self._launch(job.id, execute, payload,
                         generation=job.generation)

    def _parse_recovered(self, entry: JournaledJob):
        """(payload, execute fn) for one journaled document."""
        if entry.kind == "run":
            spec = wire.parse_run_request(entry.doc)
            return spec, self._execute_run
        plan = wire.parse_plan_request(entry.doc)
        return plan, self._execute_plan

    def _cached_results(self, kind: str, payload) -> dict | None:
        """A done job's results out of the cache, or None if any are
        missing (the job then re-executes instead)."""
        if kind == "run":
            result = self.cache.get(payload)
            return None if result is None else {"result": result}
        hits = [self.cache.get(spec) for spec in payload.specs]
        if any(hit is None for hit in hits):
            return None
        return {"results": hits}

    # -- request dispatch --------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route one request; never raises (errors become envelopes)."""
        try:
            found, params, path_known = match(request.method, request.path)
            if found is None:
                if path_known:
                    raise wire.WireError(
                        f"method {request.method} is not allowed on "
                        f"{request.path}", status=405,
                        code="method-not-allowed",
                    )
                raise wire.WireError(f"no such endpoint: {request.path}",
                                     status=404, code="not-found")
            handler = getattr(self, f"_h_{found.handler}")
            return handler(request, params)
        except wire.WireError as exc:
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(int(exc.retry_after))
            return Response(exc.status, wire.dump(wire.error_doc(exc)),
                            headers=headers)
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            logger.exception("unhandled error serving %s %s",
                             request.method, request.path)
            return Response(500, wire.dump(wire.error_doc(exc)))

    # -- endpoint handlers -------------------------------------------------

    def _h_health(self, request: Request, params: dict) -> Response:
        """``GET /v1/health`` — the ``repro verify`` header, as JSON."""
        from repro.core.jitkern import jit_tier_label
        from repro.sim.engine import ENGINES
        from repro.sim.tracestore import default_root, store_enabled
        from repro.testing.faults import faults_summary

        self.jobs.gc()
        engines = {name: "available" for name in ENGINES}
        engines["jit"] = jit_tier_label()
        doc = wire.envelope({
            "service": "repro",
            "version": __version__,
            "status": "draining" if self._draining.is_set() else "ok",
            "uptime_s": round(time.time() - self.started_unix, 3),
            "engines": engines,
            "trace_store": {
                "enabled": store_enabled(),
                "root": str(default_root()),
            },
            "result_cache": {
                "root": str(self.cache.root),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "lock_backend": lock_backend(),
            },
            "faults": faults_summary(),
            "jobs": self.jobs.counts(),
            "dedup": {"inflight": len(self.jobs.registry),
                      "shared": self.jobs.registry.shared},
            "workers": self.config.workers,
            "journal": self.journal.stats().to_dict(),
            "recovery": dict(self.recovery),
            "locks": lock_stats(),
            "draining": self._draining.is_set(),
        })
        return Response(200, wire.dump(doc))

    def _admit(self) -> None:
        """Admission control for submissions (reads stay open).

        Draining → 503 (come back after the restart); queue saturated →
        429 (back off and retry).  Both carry ``Retry-After``.
        """
        if self._draining.is_set():
            raise wire.WireError(
                "server is draining; resubmit after restart",
                status=503, code="draining", retry_after=5,
            )
        if self.jobs.counts()["queued"] >= self.config.max_queued:
            raise wire.WireError(
                f"job queue is full ({self.config.max_queued} queued)",
                status=429, code="queue-full", retry_after=2,
            )

    def _job_response(self, job, status: int = 200,
                      include_results: bool = True) -> Response:
        doc = job.to_dict(include_results=include_results)
        doc["events_url"] = f"/v1/jobs/{job.id}/events"
        doc["events"] = self.hub.channel_stats(job.id)
        return Response(status, wire.dump(wire.envelope(doc)))

    def _h_submit_run(self, request: Request, params: dict) -> Response:
        """``POST /v1/runs`` — one spec; dedup by content hash."""
        doc = wire.parse_json_body(request.body)
        spec = wire.parse_run_request(doc)
        self.jobs.gc()
        content_hash = spec.content_hash()
        cached = self.cache.get(spec)
        if cached is not None:
            job = self.jobs.add_finished("run", content_hash, 1,
                                         result=cached)
            return self._job_response(job, status=200)
        self._admit()
        job, owner = self.jobs.submit("run", content_hash, 1, doc=doc)
        if owner:
            self._launch(job.id, self._execute_run, spec)
        return self._job_response(job, status=202, include_results=False)

    def _h_submit_plan(self, request: Request, params: dict) -> Response:
        """``POST /v1/plans`` — a cell grid onto the sweep scheduler."""
        doc = wire.parse_json_body(request.body)
        plan = wire.parse_plan_request(doc)
        if len(plan) == 0:
            raise wire.WireError("plan expands to zero cells",
                                 status=422, code="empty-plan")
        self.jobs.gc()
        content_hash = plan.content_hash()
        hits = [self.cache.get(spec) for spec in plan.specs]
        if all(hit is not None for hit in hits):
            job = self.jobs.add_finished("plan", content_hash, len(plan),
                                         results=hits)
            return self._job_response(job, status=200)
        self._admit()
        job, owner = self.jobs.submit("plan", content_hash, len(plan),
                                      doc=doc)
        if owner:
            self._launch(job.id, self._execute_plan, plan)
        return self._job_response(job, status=202, include_results=False)

    def _h_list_jobs(self, request: Request, params: dict) -> Response:
        """``GET /v1/jobs`` — every live job, oldest first.

        ``?state=queued|running|done|failed`` filters; recovered jobs
        carry ``recovered: true`` in their documents.
        """
        self.jobs.gc()
        state = request.query.get("state")
        if state is not None and state not in JOB_STATES:
            raise wire.WireError(
                f"unknown state filter {state!r}: expected one of "
                f"{', '.join(JOB_STATES)}", status=422, code="bad-state",
            )
        doc = wire.envelope({
            "jobs": [job.to_dict(include_results=False)
                     for job in self.jobs.jobs(state)],
        })
        return Response(200, wire.dump(doc))

    def _get_job(self, params: dict):
        job = self.jobs.get(params["id"])
        if job is None:
            raise wire.WireError(f"no such job: {params['id']}",
                                 status=404, code="not-found")
        return job

    def _h_job_status(self, request: Request, params: dict) -> Response:
        """``GET /v1/jobs/<id>`` — status + results once terminal."""
        job = self._get_job(params)
        include = request.query.get("results", "1") != "0"
        return self._job_response(job, include_results=include)

    def _h_job_events(self, request: Request, params: dict) -> Response:
        """``GET /v1/jobs/<id>/events`` — the job's SSE stream.

        Replays the retained event ring, then streams live events until
        the job finishes.  A slow consumer only loses *its own* oldest
        events (reported via a ``dropped`` frame); it never slows the
        simulation or other subscribers.
        """
        job = self._get_job(params)
        subscription = self.hub.subscribe(job.id)
        keepalive = self.config.keepalive_s

        async def stream():
            reported_drops = 0
            try:
                yield wire.sse_comment(f"repro {__version__} job {job.id}")
                while True:
                    batch, done = await subscription.next_batch(keepalive)
                    if subscription.dropped > reported_drops:
                        yield wire.sse_event("dropped", -1, {
                            "job": job.id,
                            "dropped": subscription.dropped,
                        })
                        reported_drops = subscription.dropped
                    for event in batch:
                        yield wire.sse_event(event.name, event.id,
                                             event.data)
                    if done:
                        return
                    if not batch:
                        yield wire.sse_comment("keep-alive")
            finally:
                subscription.close()

        return Response(
            200,
            content_type="text/event-stream; charset=utf-8",
            headers={"Cache-Control": "no-cache"},
            stream=stream(),
        )

    # -- job execution (driver threads) ------------------------------------

    def _launch(self, job_id: str, fn, payload, generation: int = 0) -> None:
        """Register a job's work and hand it to a driver thread.

        The (fn, payload) pair is remembered while the job is live so a
        requeue — stall supervision or a retryable driver failure — can
        relaunch it under a fresh generation without the submission.
        """
        with self._work_lock:
            self._work[job_id] = (fn, payload)
        self._spawn(job_id, generation)

    def _spawn(self, job_id: str, generation: int) -> None:
        with self._work_lock:
            work = self._work.get(job_id)
        if work is None:  # job finished between requeue and relaunch
            return
        fn, payload = work

        def run() -> None:
            with self._active_lock:
                self._active_drivers += 1
            try:
                fault_point("server.driver")
                fn(job_id, payload, generation)
            except Exception as exc:  # noqa: BLE001 - job boundary
                self._driver_failed(job_id, generation, exc)
            finally:
                job = self.jobs.get(job_id)
                if job is None or job.finished:
                    with self._work_lock:
                        self._work.pop(job_id, None)
                with self._active_lock:
                    self._active_drivers -= 1

        self._drivers.submit(run)

    def _driver_failed(self, job_id: str, generation: int,
                       exc: Exception) -> None:
        """A driver thread died: requeue retryably, else fail the job."""
        logger.exception("job %s died in the driver (generation %d)",
                         job_id, generation)
        job = self.jobs.get(job_id)
        if (
            job is not None and not job.finished
            and generation == job.generation
            and is_retryable(exc)
            and job.requeues < self.config.max_job_requeues
            and not self._draining.is_set()
        ):
            new_generation = self.jobs.requeue(job_id)
            if new_generation is not None:
                self._spawn(job_id, new_generation)
                return
        with contextlib.suppress(Exception):
            self.jobs.mark_failed(
                job_id, f"{type(exc).__name__}: {exc}", generation
            )

    def supervise_once(self) -> list[str]:
        """One supervision pass: requeue stalled jobs; returns their ids.

        A running job whose heartbeat went quiet for ``stall_timeout_s``
        has a hung driver thread (Python threads cannot be killed).
        The job is requeued under a new generation — the zombie thread's
        later stamps are stale-generation no-ops, and its stray cache
        writes are benign because determinism makes the bytes identical.
        Out-of-budget jobs are failed instead of requeued forever.
        """
        if self._draining.is_set():
            return []
        requeued: list[str] = []
        for job in self.jobs.stalled(self.config.stall_timeout_s):
            if job.requeues >= self.config.max_job_requeues:
                with contextlib.suppress(Exception):
                    self.jobs.mark_failed(
                        job.id,
                        f"driver stalled (no heartbeat for "
                        f"{self.config.stall_timeout_s:.0f}s) and the "
                        f"requeue budget is spent", job.generation,
                    )
                continue
            new_generation = self.jobs.requeue(job.id)
            if new_generation is not None:
                logger.warning("job %s stalled; requeued as generation %d",
                               job.id, new_generation)
                self.recovery["supervisor_requeues"] += 1
                self._spawn(job.id, new_generation)
                requeued.append(job.id)
        return requeued

    def _execute_run(self, job_id: str, spec, generation: int = 0) -> None:
        """Drive one spec through a Session, taps bridged to the hub.

        The session facade is bit-identical to the batch path by the
        PR-4 equivalence guarantee, so serving a run this way (to get
        the observer taps) returns exactly what ``run_spec`` would.

        The run advances epoch by epoch so the driver can heartbeat,
        checkpoint a resumable snapshot every ``checkpoint_epochs``
        epochs, and stop at an epoch boundary when a drain begins.  A
        stored ``"serve"`` snapshot (from a killed or drained ancestor)
        is resumed instead of restarting from zero — byte-identical
        either way by the snapshot/restore equivalence proof.
        """
        from repro.api import Session

        if not self.jobs.mark_running(job_id, generation):
            return
        try:
            session = None
            stored = self.cache.get_snapshot(spec, SNAPSHOT_TAG)
            if stored is not None:
                try:
                    session = Session.restore(stored)
                    self.recovery["resumed_from_snapshot"] += 1
                except Exception:  # noqa: BLE001 - corrupt snapshot
                    logger.warning("job %s: stored snapshot unusable; "
                                   "cold-starting", job_id)
                    session = None
            if session is None:
                session = Session(spec)

            @session.on_epoch
            def _epoch(event) -> None:
                self.hub.publish(job_id, "epoch", {
                    "job": job_id,
                    "epoch": event.epoch,
                    "time_ns": event.time_ns,
                    "delta": event.delta.to_dict(),
                    "totals": event.totals.to_dict(),
                })

            @session.on_mitigation
            def _mitigation(event) -> None:
                self.hub.publish(job_id, "mitigation", {
                    "job": job_id,
                    "time_ns": event.time_ns,
                    "bank": event.bank,
                    "low": event.low,
                    "high": event.high,
                    "reason": event.reason,
                    "rows": event.rows,
                })

            every = self.config.checkpoint_epochs
            epoch_ns = session.epoch_ns
            for k in range(1, spec.n_intervals + 1):
                # Epochs an ancestor already served are no-ops: advance
                # serves arrivals strictly before the boundary, and the
                # restored position is already past it.
                if session.position_ns >= k * epoch_ns:
                    continue
                if self._draining.is_set():
                    with contextlib.suppress(Exception):
                        self.cache.put_snapshot(
                            spec, SNAPSHOT_TAG, session.snapshot()
                        )
                    return  # still journaled "running" → restart resumes
                session.advance(k * epoch_ns)
                self.jobs.touch(job_id, generation)
                if every and k % every == 0 and not session.done:
                    with contextlib.suppress(Exception):
                        self.cache.put_snapshot(
                            spec, SNAPSHOT_TAG, session.snapshot()
                        )
            result = session.result()
        except Exception as exc:  # noqa: BLE001 - job boundary
            logger.exception("run job %s failed", job_id)
            self.jobs.mark_failed(job_id, f"{type(exc).__name__}: {exc}",
                                  generation)
            return
        with contextlib.suppress(Exception):
            self.cache.put(spec, result)
        if self.jobs.mark_done(job_id, generation, result=result):
            # The run is terminal and cached; its resume point is dead
            # weight (and must not shadow a future identical spec).
            self.cache.delete_snapshot(spec, SNAPSHOT_TAG)

    def _execute_plan(self, job_id: str, plan, generation: int = 0) -> None:
        """Shard a plan onto the SweepPool via the retry scheduler.

        The scheduler's cooperative ``stop`` hook is wired to the drain
        flag: a drain stops the plan at the next cell boundary with all
        completed cells already flushed to the cache, and the journal's
        ``running`` record makes the restarted server recompute only
        what is missing.
        """
        if not self.jobs.mark_running(job_id, generation):
            return
        eventing = _EventingCache(
            self._cache_root, self.hub, job_id,
            on_cell=lambda: self.jobs.touch(job_id, generation),
        )
        # The plan lane can be held by a draining/zombie plan driver;
        # poll instead of blocking so a drain never deadlocks here.
        while not self._plan_lane.acquire(timeout=0.25):
            self.jobs.touch(job_id, generation)
            if self._draining.is_set():
                return  # journaled "running" → restart re-enqueues
        try:
            report = run_plan(
                plan,
                workers=self.config.workers,
                cache=eventing,
                keep_going=True,
                max_retries=self.config.max_retries,
                cell_timeout=self.config.cell_timeout,
                stop=self._draining.is_set,
            )
        except Exception as exc:  # noqa: BLE001 - job boundary
            logger.exception("plan job %s failed", job_id)
            self.jobs.mark_failed(job_id, f"{type(exc).__name__}: {exc}",
                                  generation)
            return
        finally:
            self._plan_lane.release()
        if report.pending:
            # A drain stopped the plan mid-flight: leave the job in its
            # journaled "running" state for the next incarnation.
            return
        payload = {"results": report.results, "report": report.to_dict()}
        if report.ok:
            self.jobs.mark_done(job_id, generation, **payload)
        else:
            failed = len(report.failed)
            self.jobs.mark_failed(
                job_id, f"{failed} cell(s) permanently failed", generation,
            )
            with contextlib.suppress(Exception):
                job = self.jobs.get(job_id)
                if job is not None:
                    job.results = report.results
                    job.report = report.to_dict()

    # -- serving -----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader, self.config.max_body),
                    timeout=_REQUEST_TIMEOUT_S,
                )
            except HttpError as exc:
                error = wire.WireError(str(exc), status=exc.status)
                response = Response(exc.status,
                                    wire.dump(wire.error_doc(error)))
            except asyncio.TimeoutError:
                error = wire.WireError("request timed out", status=408,
                                       code="timeout")
                response = Response(408, wire.dump(wire.error_doc(error)))
            else:
                if request is None:
                    return
                response = self.handle(request)
            with contextlib.suppress(ConnectionError,
                                     asyncio.CancelledError):
                await write_response(writer, response)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def serve(self, *, ready: "threading.Event | None" = None,
                    announce: bool = False,
                    handle_signals: bool = False) -> bool:
        """Bind and serve until cancelled (or, with signals, drained.)

        ``ready`` (a threading.Event) is set once the socket is bound
        and :attr:`bound_port` is valid — the hook thread-based
        embedders and the test harness synchronize on.

        With ``handle_signals`` (the ``repro serve`` CLI path), SIGTERM
        and SIGINT trigger a graceful drain: submissions 503 while
        status reads stay live, running work checkpoints, and this
        coroutine returns — True for a clean drain, False when the
        deadline expired with drivers still running (the CLI then
        hard-exits; the journal has everything).
        """
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        # Signal handlers must be live before the announce/ready gate:
        # supervisors send SIGTERM as soon as they see either, and a
        # not-yet-replaced default disposition would kill the process.
        stop = asyncio.Event()
        if handle_signals:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, stop.set)
        if announce:
            print(f"repro {__version__} serving on "
                  f"http://{self.config.host}:{self.bound_port} "
                  f"(plan workers: {self.config.workers}, cache: "
                  f"{self._cache_root})", flush=True)
        if ready is not None:
            ready.set()
        supervisor = asyncio.ensure_future(self._supervise_forever())
        try:
            async with server:
                if not handle_signals:
                    await server.serve_forever()
                    return True  # pragma: no cover - cancelled instead
                await stop.wait()
                if announce:
                    print("repro serve: draining "
                          f"(deadline {self.config.drain_deadline_s:.0f}s)",
                          flush=True)
                clean = await asyncio.to_thread(self.drain)
                if announce:
                    print("repro serve: drained cleanly" if clean else
                          "repro serve: drain deadline expired; "
                          "journal is flushed, exiting hard", flush=True)
                return clean
        finally:
            supervisor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await supervisor

    async def _supervise_forever(self) -> None:
        """Background stall detection while the server runs."""
        period = max(1.0, min(5.0, self.config.stall_timeout_s / 4))
        while True:
            await asyncio.sleep(period)
            with contextlib.suppress(Exception):
                self.supervise_once()

    # -- drain & teardown --------------------------------------------------

    def begin_drain(self) -> None:
        """Flip the drain flag: submissions 503, drivers start stopping."""
        self._draining.set()

    def drain(self, deadline_s: float | None = None) -> bool:
        """Gracefully stop job execution; True when drivers got idle.

        Sequence: set the drain flag (submissions now 503 + Retry-After
        while status/results reads stay live), cancel queued driver
        tasks (their jobs are journaled ``queued`` and will re-enqueue
        on restart), wait up to the deadline for running drivers to
        checkpoint and stop cooperatively, then flush and close the
        journal.  Even on a missed deadline the on-disk state is fully
        resumable — every journal append was already fsync'd.
        """
        self.begin_drain()
        deadline = time.monotonic() + (
            self.config.drain_deadline_s if deadline_s is None
            else deadline_s
        )
        self._drivers.shutdown(wait=False, cancel_futures=True)
        while time.monotonic() < deadline:
            with self._active_lock:
                active = self._active_drivers
            if active == 0:
                break
            time.sleep(0.05)
        with self._active_lock:
            clean = self._active_drivers == 0
        self.journal.close()
        return clean

    def close(self) -> None:
        """Stop accepting job work (driver threads wind down)."""
        self._draining.set()
        self._drivers.shutdown(wait=False, cancel_futures=True)
        self.journal.close()


class ServerThread:
    """Run a :class:`ReproServer` on a daemon thread (tests, notebooks).

    ::

        with ServerThread(ReproServer(config)) as base_url:
            urllib.request.urlopen(base_url + "/v1/health")
    """

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> str:
        ready = threading.Event()

        def main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(self.server.serve(ready=ready))
            except asyncio.CancelledError:
                pass
            finally:
                with contextlib.suppress(Exception):
                    loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-serve", daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("server failed to bind within 30s")
        host = self.server.config.host
        return f"http://{host}:{self.server.bound_port}"

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is not None:

            def cancel_all() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(cancel_all)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.server.close()


class _EventingCache(ResultCache):
    """A ResultCache that narrates plan progress onto the job stream.

    :func:`run_plan` flushes each completed cell through ``put`` as it
    lands and consults ``get`` per cell up front, which makes the cache
    the natural (and only parent-side) per-cell progress seam — no
    scheduler changes needed.  Events carry the spec hash so clients
    can correlate cells with the submitted plan.
    """

    def __init__(self, root: str, hub: EventHub, job_id: str,
                 on_cell=None) -> None:
        super().__init__(root)
        self._hub = hub
        self._job_id = job_id
        #: optional per-cell callback — the plan driver wires its job
        #: heartbeat here, so supervision sees cell-level progress
        self._on_cell = on_cell

    def _cell_landed(self) -> None:
        if self._on_cell is not None:
            with contextlib.suppress(Exception):
                self._on_cell()

    def get(self, spec):
        hit = super().get(spec)
        if hit is not None:
            self._hub.publish(self._job_id, "cell", {
                "job": self._job_id, "spec_hash": spec.content_hash(),
                "status": "cached",
            })
            self._cell_landed()
        return hit

    def put(self, spec, result):
        path = super().put(spec, result)
        self._hub.publish(self._job_id, "cell", {
            "job": self._job_id, "spec_hash": spec.content_hash(),
            "status": "done",
        })
        self._cell_landed()
        return path


__all__ = ["ReproServer", "ServerConfig", "ServerThread"]
