"""The ``repro serve`` application: routes → experiment layer.

:class:`ReproServer` owns the job table, the SSE hub, a
:class:`ResultCache` shared by every job, and a small thread pool that
*drives* jobs (the heavy lifting still happens where it always did:
single runs execute a streaming :class:`~repro.api.Session` on the
driving thread, plans shard their cells onto the process-wide
:class:`~repro.experiments.SweepPool` through the fault-tolerant
:func:`run_plan` scheduler).

Deduplication happens at two layers, both keyed by content hash:

* **completed** work — the submit handlers consult the result cache
  first; a full hit becomes a job that is born ``done`` (zero
  simulation, provable via the cache hit/miss counters);
* **in-flight** work — the job table's
  :class:`~repro.experiments.shared.SharedWorkRegistry` attaches
  concurrent identical submissions to the one job already executing.

Every handler is synchronous and pure enough to call directly from
tests (``server.handle(Request(...)) -> Response``); only the SSE
endpoint returns a streaming response, whose generator bridges the
job's :class:`~repro.server.hub.EventHub` channel onto the socket.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import logging
import tempfile
import threading
import time
from dataclasses import dataclass

from repro._version import __version__
from repro.experiments.cache import ResultCache
from repro.experiments.run import run_plan
from repro.locking import lock_backend
from repro.server import wire
from repro.server.http import (
    HttpError,
    Request,
    Response,
    read_request,
    write_response,
)
from repro.server.hub import EventHub
from repro.server.jobs import JobTable
from repro.server.routes import match

logger = logging.getLogger(__name__)

#: How long one connection may take to send its request head + body.
_REQUEST_TIMEOUT_S = 30.0


@dataclass
class ServerConfig:
    """Tunables of one server instance (all CLI-exposed ones first)."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: SweepPool width plan cells shard onto
    workers: int = 2
    #: result-cache directory; None = a private temp dir per server
    cache_dir: str | None = None
    #: job-driving threads (concurrent runs; plans serialize, see below)
    driver_threads: int = 4
    max_jobs: int = 256
    job_ttl_s: float = 3600.0
    #: per-job SSE event ring size (older events age out for late/slow
    #: subscribers; publishers never block on it)
    event_backlog: int = 512
    #: SSE keep-alive comment cadence
    keepalive_s: float = 15.0
    max_body: int = wire.MAX_BODY_BYTES
    #: plan-cell retry budget / timeout, passed through to run_plan
    max_retries: int = 2
    cell_timeout: float | None = None


class ReproServer:
    """The asyncio HTTP service over the experiment layer."""

    def __init__(self, config: ServerConfig | None = None, *,
                 clock=time.monotonic) -> None:
        self.config = config or ServerConfig()
        self.hub = EventHub(backlog=self.config.event_backlog)
        self.jobs = JobTable(
            self.hub, clock=clock,
            max_jobs=self.config.max_jobs, ttl_s=self.config.job_ttl_s,
        )
        if self.config.cache_dir is None:
            self._cache_root = tempfile.mkdtemp(prefix="repro-serve-cache-")
        else:
            self._cache_root = self.config.cache_dir
        self.cache = ResultCache(self._cache_root)
        self._drivers = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.driver_threads,
            thread_name_prefix="repro-job",
        )
        #: one plan at a time: plans already fan out across the whole
        #: process-wide SweepPool, so running two concurrently would
        #: just thrash it (and SweepPool's build path is not re-entrant)
        self._plan_lane = threading.Lock()
        self.started_unix = time.time()
        self.bound_port: int | None = None

    # -- request dispatch --------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route one request; never raises (errors become envelopes)."""
        try:
            found, params, path_known = match(request.method, request.path)
            if found is None:
                if path_known:
                    raise wire.WireError(
                        f"method {request.method} is not allowed on "
                        f"{request.path}", status=405,
                        code="method-not-allowed",
                    )
                raise wire.WireError(f"no such endpoint: {request.path}",
                                     status=404, code="not-found")
            handler = getattr(self, f"_h_{found.handler}")
            return handler(request, params)
        except wire.WireError as exc:
            return Response(exc.status, wire.dump(wire.error_doc(exc)))
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            logger.exception("unhandled error serving %s %s",
                             request.method, request.path)
            return Response(500, wire.dump(wire.error_doc(exc)))

    # -- endpoint handlers -------------------------------------------------

    def _h_health(self, request: Request, params: dict) -> Response:
        """``GET /v1/health`` — the ``repro verify`` header, as JSON."""
        from repro.core.jitkern import jit_tier_label
        from repro.sim.engine import ENGINES
        from repro.sim.tracestore import default_root, store_enabled
        from repro.testing.faults import faults_summary

        self.jobs.gc()
        engines = {name: "available" for name in ENGINES}
        engines["jit"] = jit_tier_label()
        doc = wire.envelope({
            "service": "repro",
            "version": __version__,
            "status": "ok",
            "uptime_s": round(time.time() - self.started_unix, 3),
            "engines": engines,
            "trace_store": {
                "enabled": store_enabled(),
                "root": str(default_root()),
            },
            "result_cache": {
                "root": str(self.cache.root),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "lock_backend": lock_backend(),
            },
            "faults": faults_summary(),
            "jobs": self.jobs.counts(),
            "dedup": {"inflight": len(self.jobs.registry),
                      "shared": self.jobs.registry.shared},
            "workers": self.config.workers,
        })
        return Response(200, wire.dump(doc))

    def _job_response(self, job, status: int = 200,
                      include_results: bool = True) -> Response:
        doc = job.to_dict(include_results=include_results)
        doc["events_url"] = f"/v1/jobs/{job.id}/events"
        doc["events"] = self.hub.channel_stats(job.id)
        return Response(status, wire.dump(wire.envelope(doc)))

    def _h_submit_run(self, request: Request, params: dict) -> Response:
        """``POST /v1/runs`` — one spec; dedup by content hash."""
        spec = wire.parse_run_request(wire.parse_json_body(request.body))
        self.jobs.gc()
        content_hash = spec.content_hash()
        cached = self.cache.get(spec)
        if cached is not None:
            job = self.jobs.add_finished("run", content_hash, 1,
                                         result=cached)
            return self._job_response(job, status=200)
        job, owner = self.jobs.submit("run", content_hash, 1)
        if owner:
            self._launch(job.id, self._execute_run, job.id, spec)
        return self._job_response(job, status=202, include_results=False)

    def _h_submit_plan(self, request: Request, params: dict) -> Response:
        """``POST /v1/plans`` — a cell grid onto the sweep scheduler."""
        plan = wire.parse_plan_request(wire.parse_json_body(request.body))
        if len(plan) == 0:
            raise wire.WireError("plan expands to zero cells",
                                 status=422, code="empty-plan")
        self.jobs.gc()
        content_hash = plan.content_hash()
        hits = [self.cache.get(spec) for spec in plan.specs]
        if all(hit is not None for hit in hits):
            job = self.jobs.add_finished("plan", content_hash, len(plan),
                                         results=hits)
            return self._job_response(job, status=200)
        job, owner = self.jobs.submit("plan", content_hash, len(plan))
        if owner:
            self._launch(job.id, self._execute_plan, job.id, plan)
        return self._job_response(job, status=202, include_results=False)

    def _h_list_jobs(self, request: Request, params: dict) -> Response:
        """``GET /v1/jobs`` — every live job, oldest first."""
        self.jobs.gc()
        doc = wire.envelope({
            "jobs": [job.to_dict(include_results=False)
                     for job in self.jobs.jobs()],
        })
        return Response(200, wire.dump(doc))

    def _get_job(self, params: dict):
        job = self.jobs.get(params["id"])
        if job is None:
            raise wire.WireError(f"no such job: {params['id']}",
                                 status=404, code="not-found")
        return job

    def _h_job_status(self, request: Request, params: dict) -> Response:
        """``GET /v1/jobs/<id>`` — status + results once terminal."""
        job = self._get_job(params)
        include = request.query.get("results", "1") != "0"
        return self._job_response(job, include_results=include)

    def _h_job_events(self, request: Request, params: dict) -> Response:
        """``GET /v1/jobs/<id>/events`` — the job's SSE stream.

        Replays the retained event ring, then streams live events until
        the job finishes.  A slow consumer only loses *its own* oldest
        events (reported via a ``dropped`` frame); it never slows the
        simulation or other subscribers.
        """
        job = self._get_job(params)
        subscription = self.hub.subscribe(job.id)
        keepalive = self.config.keepalive_s

        async def stream():
            reported_drops = 0
            try:
                yield wire.sse_comment(f"repro {__version__} job {job.id}")
                while True:
                    batch, done = await subscription.next_batch(keepalive)
                    if subscription.dropped > reported_drops:
                        yield wire.sse_event("dropped", -1, {
                            "job": job.id,
                            "dropped": subscription.dropped,
                        })
                        reported_drops = subscription.dropped
                    for event in batch:
                        yield wire.sse_event(event.name, event.id,
                                             event.data)
                    if done:
                        return
                    if not batch:
                        yield wire.sse_comment("keep-alive")
            finally:
                subscription.close()

        return Response(
            200,
            content_type="text/event-stream; charset=utf-8",
            headers={"Cache-Control": "no-cache"},
            stream=stream(),
        )

    # -- job execution (driver threads) ------------------------------------

    def _launch(self, job_id: str, fn, *args) -> None:
        def run() -> None:
            try:
                fn(*args)
            except Exception as exc:  # noqa: BLE001 - job boundary
                logger.exception("job %s died in the driver", job_id)
                with contextlib.suppress(Exception):
                    self.jobs.mark_failed(
                        job_id, f"{type(exc).__name__}: {exc}"
                    )

        self._drivers.submit(run)

    def _execute_run(self, job_id: str, spec) -> None:
        """Drive one spec through a Session, taps bridged to the hub.

        The session facade is bit-identical to the batch path by the
        PR-4 equivalence guarantee, so serving a run this way (to get
        the observer taps) returns exactly what ``run_spec`` would.
        """
        from repro.api import Session

        self.jobs.mark_running(job_id)
        try:
            session = Session(spec)

            @session.on_epoch
            def _epoch(event) -> None:
                self.hub.publish(job_id, "epoch", {
                    "job": job_id,
                    "epoch": event.epoch,
                    "time_ns": event.time_ns,
                    "delta": event.delta.to_dict(),
                    "totals": event.totals.to_dict(),
                })

            @session.on_mitigation
            def _mitigation(event) -> None:
                self.hub.publish(job_id, "mitigation", {
                    "job": job_id,
                    "time_ns": event.time_ns,
                    "bank": event.bank,
                    "low": event.low,
                    "high": event.high,
                    "reason": event.reason,
                    "rows": event.rows,
                })

            result = session.result()
        except Exception as exc:  # noqa: BLE001 - job boundary
            logger.exception("run job %s failed", job_id)
            self.jobs.mark_failed(job_id, f"{type(exc).__name__}: {exc}")
            return
        with contextlib.suppress(Exception):
            self.cache.put(spec, result)
        self.jobs.mark_done(job_id, result=result)

    def _execute_plan(self, job_id: str, plan) -> None:
        """Shard a plan onto the SweepPool via the retry scheduler."""
        self.jobs.mark_running(job_id)
        eventing = _EventingCache(self._cache_root, self.hub, job_id)
        try:
            with self._plan_lane:
                report = run_plan(
                    plan,
                    workers=self.config.workers,
                    cache=eventing,
                    keep_going=True,
                    max_retries=self.config.max_retries,
                    cell_timeout=self.config.cell_timeout,
                )
        except Exception as exc:  # noqa: BLE001 - job boundary
            logger.exception("plan job %s failed", job_id)
            self.jobs.mark_failed(job_id, f"{type(exc).__name__}: {exc}")
            return
        payload = {"results": report.results, "report": report.to_dict()}
        if report.ok:
            self.jobs.mark_done(job_id, **payload)
        else:
            failed = len(report.failed)
            self.jobs.mark_failed(
                job_id, f"{failed} cell(s) permanently failed",
            )
            with contextlib.suppress(Exception):
                job = self.jobs.get(job_id)
                if job is not None:
                    job.results = report.results
                    job.report = report.to_dict()

    # -- serving -----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader, self.config.max_body),
                    timeout=_REQUEST_TIMEOUT_S,
                )
            except HttpError as exc:
                error = wire.WireError(str(exc), status=exc.status)
                response = Response(exc.status,
                                    wire.dump(wire.error_doc(error)))
            except asyncio.TimeoutError:
                error = wire.WireError("request timed out", status=408,
                                       code="timeout")
                response = Response(408, wire.dump(wire.error_doc(error)))
            else:
                if request is None:
                    return
                response = self.handle(request)
            with contextlib.suppress(ConnectionError,
                                     asyncio.CancelledError):
                await write_response(writer, response)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def serve(self, *, ready: "threading.Event | None" = None,
                    announce: bool = False) -> None:
        """Bind and serve until cancelled.

        ``ready`` (a threading.Event) is set once the socket is bound
        and :attr:`bound_port` is valid — the hook thread-based
        embedders and the test harness synchronize on.
        """
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        if announce:
            print(f"repro {__version__} serving on "
                  f"http://{self.config.host}:{self.bound_port} "
                  f"(plan workers: {self.config.workers}, cache: "
                  f"{self._cache_root})")
        if ready is not None:
            ready.set()
        async with server:
            await server.serve_forever()

    def close(self) -> None:
        """Stop accepting job work (driver threads wind down)."""
        self._drivers.shutdown(wait=False, cancel_futures=True)


class ServerThread:
    """Run a :class:`ReproServer` on a daemon thread (tests, notebooks).

    ::

        with ServerThread(ReproServer(config)) as base_url:
            urllib.request.urlopen(base_url + "/v1/health")
    """

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> str:
        ready = threading.Event()

        def main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(self.server.serve(ready=ready))
            except asyncio.CancelledError:
                pass
            finally:
                with contextlib.suppress(Exception):
                    loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-serve", daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("server failed to bind within 30s")
        host = self.server.config.host
        return f"http://{host}:{self.server.bound_port}"

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is not None:

            def cancel_all() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(cancel_all)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.server.close()


class _EventingCache(ResultCache):
    """A ResultCache that narrates plan progress onto the job stream.

    :func:`run_plan` flushes each completed cell through ``put`` as it
    lands and consults ``get`` per cell up front, which makes the cache
    the natural (and only parent-side) per-cell progress seam — no
    scheduler changes needed.  Events carry the spec hash so clients
    can correlate cells with the submitted plan.
    """

    def __init__(self, root: str, hub: EventHub, job_id: str) -> None:
        super().__init__(root)
        self._hub = hub
        self._job_id = job_id

    def get(self, spec):
        hit = super().get(spec)
        if hit is not None:
            self._hub.publish(self._job_id, "cell", {
                "job": self._job_id, "spec_hash": spec.content_hash(),
                "status": "cached",
            })
        return hit

    def put(self, spec, result):
        path = super().put(spec, result)
        self._hub.publish(self._job_id, "cell", {
            "job": self._job_id, "spec_hash": spec.content_hash(),
            "status": "done",
        })
        return path


__all__ = ["ReproServer", "ServerConfig", "ServerThread"]
