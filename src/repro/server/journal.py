"""Durable job journal: crash-safe record of every accepted submission.

The job table (:mod:`repro.server.jobs`) is in-memory; a killed
``repro serve`` process historically forgot every queued and running
job.  The journal fixes that with the standard write-ahead discipline:
every accepted submission and every state transition is appended — as
one CRC-framed, fsync'd record — to a segment file under
``<cache-dir>/journal/`` *before* the transition is acted on, and on
startup the server replays the journal to rebuild the table and
re-enqueue unfinished work (see ``ReproServer._recover``).

Framing
-------
A segment (``seg-<n>.wal``) is a flat sequence of frames::

    [length: u32 LE][crc32(payload): u32 LE][payload: UTF-8 JSON]

The first frame is a segment header (``kind: repro-journal-segment``)
carrying the journal version; every later frame is one record.  A
record is a JSON object with a ``rec`` discriminator:

* ``{"rec": "submit", "job", "kind", "hash", "cells", "doc", "unix"}``
  — one accepted submission, ``doc`` being the exact wire document
  (spec or plan) needed to re-execute it;
* ``{"rec": "state", "job", "status", "unix", ["error"], ["cached"]}``
  — one lifecycle transition (``running``/``queued``/``done``/
  ``failed``; ``queued`` records a requeue).

Torn tails
----------
Appends are atomic *enough* — a crash mid-append leaves a truncated or
garbled final frame, never a misframed earlier one.  The reader treats
any undecodable frame (short header, impossible length, CRC mismatch,
non-JSON payload) as the end of that segment: recovery degrades to the
last good frame, losing at most the record being written at the moment
of death.  Since records are written *before* their effect (and the
effects — enqueue, execute — are idempotent under replay), a lost tail
record means a little recomputation, never a wrong result.

Replay idempotency
------------------
:func:`replay_records` is a pure fold with absorbing terminal states:
duplicate ``submit`` records are ignored, transitions out of ``done``/
``failed`` are ignored, and state records for unknown jobs (their
submit segment was GC'd) are dropped.  Replaying a journal twice —
or replaying the concatenation of a journal with itself — yields an
identical job table, which is what makes startup recovery safe to
re-run after *its own* crash.

Compaction & GC
---------------
On startup the server folds the surviving jobs into one fresh segment
(written atomically: temp file + rename) and deletes the old ones, so
restart chains never accumulate unbounded history.  Offline,
:meth:`Journal.gc` (driven by ``repro cache stats``/``clear``) removes
*fully applied* segments — segments every job of which is terminal (or
unknown): their results live in the :class:`ResultCache`; the journal
no longer owes them anything.

The ``server.journal.write`` fault site fires in :meth:`Journal.append`
(``raise`` = failed append, counted and survived; ``corrupt`` = a
garbled record the next replay must absorb), and segment reads pass
through the ``server.journal.read`` ``corrupt`` site so CI can tear
the tail on demand.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import struct
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.testing.faults import corrupting, fault_point

logger = logging.getLogger(__name__)

#: Bump on incompatible frame/record layout changes; replay skips
#: segments stamped with other versions (they are unreadable, not
#: wrong — recovery degrades to recompute).
JOURNAL_VERSION = 1

SEGMENT_KIND = "repro-journal-segment"

#: Frame header: payload length + CRC32 of the payload, little-endian.
_FRAME = struct.Struct("<II")

#: Upper bound on one record's payload; anything larger in a header is
#: torn-frame garbage, not a record (plan documents are a few KiB).
MAX_RECORD_BYTES = 8 * 2**20

#: Default segment-rotation threshold.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Terminal job states: absorbing under replay, eligible for GC.
TERMINAL = ("done", "failed")


@dataclass
class JournaledJob:
    """One job as reconstructed by replay."""

    id: str
    kind: str
    content_hash: str
    n_cells: int
    doc: dict
    submitted_unix: float
    status: str = "queued"
    error: str | None = None
    cached: bool = False
    finished_unix: float | None = None

    @property
    def finished(self) -> bool:
        """True in a terminal (done/failed) state."""
        return self.status in TERMINAL


def replay_records(records) -> "dict[str, JournaledJob]":
    """Fold journal records into a job table (idempotent, see module doc).

    Returns jobs keyed by id, in first-submission order (dict order).
    """
    jobs: dict[str, JournaledJob] = {}
    for record in records:
        rec = record.get("rec")
        if rec == "submit":
            job_id = record.get("job")
            if not job_id or job_id in jobs:
                continue
            doc = record.get("doc")
            if not isinstance(doc, dict):
                continue
            jobs[job_id] = JournaledJob(
                id=job_id,
                kind=str(record.get("kind", "run")),
                content_hash=str(record.get("hash", "")),
                n_cells=int(record.get("cells", 1)),
                doc=doc,
                submitted_unix=float(record.get("unix", 0.0)),
            )
        elif rec == "state":
            job = jobs.get(record.get("job"))
            status = record.get("status")
            if job is None or job.finished or status not in (
                "queued", "running", "done", "failed"
            ):
                continue
            job.status = status
            if status in TERMINAL:
                job.error = record.get("error")
                job.cached = bool(record.get("cached", False))
                job.finished_unix = float(record.get("unix", 0.0))
    return jobs


def _frames(data: bytes):
    """Decode frames until the first undecodable one (torn tail)."""
    offset = 0
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if length > MAX_RECORD_BYTES or start + length > len(data):
            return
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(doc, dict):
            return
        yield doc
        offset = start + length


def _frame_bytes(doc: dict) -> bytes:
    payload = json.dumps(doc, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_header(index: int) -> dict:
    return {"kind": SEGMENT_KIND, "journal_version": JOURNAL_VERSION,
            "segment": index}


@dataclass
class JournalStats:
    """What ``repro cache stats`` and ``/v1/health`` report."""

    segments: int = 0
    bytes: int = 0
    records: int = 0
    live_jobs: int = 0
    finished_jobs: int = 0
    writes: int = 0
    write_errors: int = 0

    def to_dict(self) -> dict:
        """Flat JSON-ready counters."""
        return {
            "segments": self.segments,
            "bytes": self.bytes,
            "records": self.records,
            "live_jobs": self.live_jobs,
            "finished_jobs": self.finished_jobs,
            "writes": self.writes,
            "write_errors": self.write_errors,
        }


class Journal:
    """Append-only, fsync'd, CRC-framed job journal in one directory.

    Thread-safe: submissions append from the asyncio handler thread
    while drivers append state transitions.  Appends are best-effort
    durable — an ``OSError`` (disk full, fault injection) is counted
    and logged, never raised, because losing one journal record only
    weakens recovery for that job; taking the service down would lose
    everything.
    """

    def __init__(self, root: "Path | str", *,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: bool = True) -> None:
        self.root = Path(root)
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        self.writes = 0
        self.write_errors = 0
        self._lock = threading.Lock()
        self._fh = None
        self._segment_index = 0

    # -- segment files ------------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment files, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("seg-*.wal"))

    @staticmethod
    def _segment_index_of(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _segment_path(self, index: int) -> Path:
        return self.root / f"seg-{index:08d}.wal"

    def _open_segment(self, index: int) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._segment_path(index)
        fresh = not path.exists()
        self._fh = open(path, "ab")
        self._segment_index = index
        if fresh:
            self._fh.write(_frame_bytes(_segment_header(index)))
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def _ensure_open(self) -> None:
        if self._fh is not None:
            return
        existing = self.segments()
        index = (self._segment_index_of(existing[-1]) if existing else 1)
        self._open_segment(max(1, index))

    # -- writing ------------------------------------------------------------

    def append(self, record: dict) -> bool:
        """Durably append one record; returns whether it was persisted.

        The ``server.journal.write`` fault site fires here: ``raise``
        makes this append fail (counted, survived), ``corrupt`` garbles
        the payload so the *next replay* must stop at the frame before
        it — exactly the torn-tail discipline a real partial write
        exercises.
        """
        try:
            fault_point("server.journal.write")
            with self._lock:
                self._ensure_open()
                if self._fh.tell() > self.max_segment_bytes:
                    self._fh.close()
                    self._open_segment(self._segment_index + 1)
                payload = json.dumps(record, sort_keys=True,
                                     separators=(",", ":")).encode("utf-8")
                payload = corrupting("server.journal.write", payload)
                frame = _FRAME.pack(len(payload), zlib.crc32(payload)) \
                    + payload
                self._fh.write(frame)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
            self.writes += 1
            return True
        except Exception:
            self.write_errors += 1
            logger.exception("journal append failed (record %r dropped)",
                             record.get("rec"))
            return False

    def record_submit(self, job_id: str, kind: str, content_hash: str,
                      n_cells: int, doc: dict) -> bool:
        """Append one accepted-submission record."""
        return self.append({
            "rec": "submit", "job": job_id, "kind": kind,
            "hash": content_hash, "cells": n_cells, "doc": doc,
            "unix": time.time(),
        })

    def record_state(self, job_id: str, status: str, *,
                     error: str | None = None,
                     cached: bool = False) -> bool:
        """Append one lifecycle-transition record."""
        record: dict = {"rec": "state", "job": job_id, "status": status,
                        "unix": time.time()}
        if error is not None:
            record["error"] = error
        if cached:
            record["cached"] = True
        return self.append(record)

    def close(self) -> None:
        """Flush and close the active segment (drain/final teardown)."""
        with self._lock:
            if self._fh is not None:
                with contextlib.suppress(Exception):
                    self._fh.flush()
                    if self.fsync:
                        os.fsync(self._fh.fileno())
                with contextlib.suppress(Exception):
                    self._fh.close()
                self._fh = None

    # -- reading ------------------------------------------------------------

    def _read_segment(self, path: Path) -> list[dict]:
        """One segment's decodable records (header frame stripped)."""
        try:
            data = path.read_bytes()
        except OSError:
            return []
        data = corrupting("server.journal.read", data)
        frames = list(_frames(data))
        if not frames:
            return []
        head = frames[0]
        if head.get("kind") != SEGMENT_KIND or \
                head.get("journal_version") != JOURNAL_VERSION:
            logger.warning("journal segment %s has an unreadable header; "
                           "skipping it", path.name)
            return []
        return frames[1:]

    def records(self) -> list[dict]:
        """Every decodable record across all segments, oldest first."""
        out: list[dict] = []
        for path in self.segments():
            out.extend(self._read_segment(path))
        return out

    def replay(self) -> "dict[str, JournaledJob]":
        """Rebuild the job table from disk (see :func:`replay_records`)."""
        return replay_records(self.records())

    # -- compaction & GC ----------------------------------------------------

    def compact(self, jobs: "list[JournaledJob]") -> None:
        """Rewrite the journal as one fresh segment holding ``jobs``.

        Called at startup after replay: the surviving jobs (and nothing
        else) are folded into a new segment — written to a temp file
        and renamed into place, so a crash mid-compaction leaves either
        the old segments or the complete new one, never a half journal.
        Old segments are deleted only after the rename lands.
        """
        existing = self.segments()
        index = (self._segment_index_of(existing[-1]) + 1) if existing else 1
        self.close()
        self.root.mkdir(parents=True, exist_ok=True)
        blob = _frame_bytes(_segment_header(index))
        for job in jobs:
            blob += _frame_bytes({
                "rec": "submit", "job": job.id, "kind": job.kind,
                "hash": job.content_hash, "cells": job.n_cells,
                "doc": job.doc, "unix": job.submitted_unix,
            })
            if job.status != "queued":
                record: dict = {"rec": "state", "job": job.id,
                                "status": job.status,
                                "unix": job.finished_unix or time.time()}
                if job.error is not None:
                    record["error"] = job.error
                if job.cached:
                    record["cached"] = True
                blob += _frame_bytes(record)
        target = self._segment_path(index)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=target.stem,
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, target)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        for path in existing:
            with contextlib.suppress(OSError):
                path.unlink()

    def gc(self) -> int:
        """Remove fully-applied segments; returns how many were deleted.

        A segment is fully applied when every job it mentions is
        terminal (or unknown) under a full replay — its results, if
        any, live in the :class:`ResultCache`; nothing in it would
        change a future recovery.  Safe to run offline (``repro cache
        stats``); running it against a *live* server's journal carries
        the same caveat as clearing a live store.
        """
        final = self.replay()
        removed = 0
        for path in self.segments():
            mentioned = {r.get("job") for r in self._read_segment(path)
                         if r.get("job")}
            applied = all(
                job_id not in final or final[job_id].finished
                for job_id in mentioned
            )
            if applied:
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
        return removed

    # -- stats --------------------------------------------------------------

    def stats(self) -> JournalStats:
        """Segment/record/job counts for status surfaces."""
        stats = JournalStats(writes=self.writes,
                             write_errors=self.write_errors)
        for path in self.segments():
            stats.segments += 1
            with contextlib.suppress(OSError):
                stats.bytes += path.stat().st_size
            stats.records += len(self._read_segment(path))
        for job in self.replay().values():
            if job.finished:
                stats.finished_jobs += 1
            else:
                stats.live_jobs += 1
        return stats


__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "JOURNAL_VERSION",
    "MAX_RECORD_BYTES",
    "SEGMENT_KIND",
    "TERMINAL",
    "Journal",
    "JournalStats",
    "JournaledJob",
    "replay_records",
]
