"""URL dispatch: (method, path pattern) → handler name.

Patterns are literal segments plus ``<name>`` captures (no regexes to
maintain); :func:`match` returns the route and its captured path
parameters.  A path that exists under a different method yields a 405
distinct from a plain 404, so clients get an honest error surface.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Route:
    """One endpoint: HTTP method, split pattern, handler name."""

    method: str
    segments: tuple[str, ...]
    handler: str


def route(method: str, pattern: str, handler: str) -> Route:
    """Build a route from a ``/v1/jobs/<id>``-style pattern."""
    segments = tuple(s for s in pattern.split("/") if s)
    return Route(method.upper(), segments, handler)


#: The service's endpoint table (the wire-layer tests pin this shape).
ROUTES: tuple[Route, ...] = (
    route("GET", "/v1/health", "health"),
    route("POST", "/v1/runs", "submit_run"),
    route("POST", "/v1/plans", "submit_plan"),
    route("GET", "/v1/jobs", "list_jobs"),
    route("GET", "/v1/jobs/<id>", "job_status"),
    route("GET", "/v1/jobs/<id>/events", "job_events"),
)


def _bind(segments: tuple[str, ...], path_parts: list[str]
          ) -> dict[str, str] | None:
    if len(segments) != len(path_parts):
        return None
    params: dict[str, str] = {}
    for pattern_part, actual in zip(segments, path_parts):
        if pattern_part.startswith("<") and pattern_part.endswith(">"):
            params[pattern_part[1:-1]] = actual
        elif pattern_part != actual:
            return None
    return params


def match(method: str, path: str) -> tuple[Route | None, dict[str, str], bool]:
    """Resolve a request; returns ``(route, params, path_known)``.

    ``route`` is None on a miss; ``path_known=True`` then means the
    path matched some route under another method (405, not 404).
    """
    parts = [s for s in path.split("/") if s]
    path_known = False
    for candidate in ROUTES:
        params = _bind(candidate.segments, parts)
        if params is None:
            continue
        if candidate.method == method.upper():
            return candidate, params, True
        path_known = True
    return None, {}, path_known


__all__ = ["ROUTES", "Route", "match", "route"]
