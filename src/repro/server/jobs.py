"""The server's job table: submissions, lifecycle, dedup, and GC.

A *job* is one accepted submission — a single spec (``POST /v1/runs``)
or a whole plan (``POST /v1/plans``) — moving through ``queued`` →
``running`` → ``done``/``failed``.  The table is the single source of
truth the status endpoint reads and the executor writes, guarded by one
lock because readers (asyncio handlers) and writers (worker threads)
live on different threads.

**Content-hash dedup** rides on the experiment layer's
:class:`~repro.experiments.shared.SharedWorkRegistry`: while a hash is
in flight, every further submission of the same hash is attached to the
existing job — one simulation, many watchers.  (Completed work is the
:class:`ResultCache`'s department: the executor consults it before
simulating, so re-submitting finished work costs a cache read, not a
run.)

**GC** keeps the table bounded: finished jobs are evicted after
``ttl_s`` seconds, and the oldest finished jobs are evicted early when
the table exceeds ``max_jobs``.  Queued/running jobs are never evicted.
The injected ``clock`` makes eviction deterministic under test.

**Durability** is delegated: when the table is built with a
:class:`~repro.server.journal.Journal`, every submission and lifecycle
transition is journaled *before* it is acted on, and on restart the
server replays the journal and re-inserts the survivors via
:meth:`JobTable.adopt` (which re-claims the dedup hash for live jobs
and flags them ``recovered``).  **Supervision** rides on per-job
heartbeats: driver threads :meth:`touch` their job as they make
progress, :meth:`stalled` surfaces running jobs whose heartbeat went
quiet, and :meth:`requeue` sends a stalled or retryably-failed job back
to ``queued`` under a new *generation* — stamps from the old (possibly
still running, unkillable) driver thread are stale-generation no-ops.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.experiments.shared import SharedWorkRegistry

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One accepted submission and everything known about it."""

    id: str
    kind: str  # "run" | "plan"
    content_hash: str
    n_cells: int
    status: str = "queued"
    #: wall-clock submission time (display only; GC uses the table clock)
    created_unix: float = field(default_factory=time.time)
    created_s: float = 0.0  # table-clock stamps
    started_s: float | None = None
    finished_s: float | None = None
    #: True when the whole job was served from the ResultCache with
    #: zero simulation (the "completed submissions are free" path).
    cached: bool = False
    #: submissions attached to this job beyond the first (dedup hits)
    attached: int = 0
    error: str | None = None
    #: True when this job was rebuilt from the journal after a restart.
    recovered: bool = False
    #: Bumped every requeue; driver threads carry the generation they
    #: were launched under, so a superseded (hung, then replaced) thread
    #: cannot stamp the job's fresh attempt.
    generation: int = 0
    #: how many times this job went running → queued (stall/retry)
    requeues: int = 0
    #: table-clock stamp of the driver's last sign of life (supervision)
    heartbeat_s: float | None = None
    #: run jobs: the SimulationResult; plan jobs: list (None per failed
    #: cell).  Held as live objects; serialized on demand.
    result: object | None = None
    results: list | None = None
    #: plan jobs: the SweepReport dict (per-cell status/attempts/failures)
    report: dict | None = None

    @property
    def finished(self) -> bool:
        """True in a terminal state (done or failed)."""
        return self.status in ("done", "failed")

    def to_dict(self, include_results: bool = True) -> dict:
        """The job-status document ``GET /v1/jobs/<id>`` serves."""
        doc = {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
            "content_hash": self.content_hash,
            "cells": self.n_cells,
            "created_unix": self.created_unix,
            "cached": self.cached,
            "attached": self.attached,
            "error": self.error,
            "recovered": self.recovered,
            "requeues": self.requeues,
        }
        if self.started_s is not None:
            doc["queued_s"] = round(self.started_s - self.created_s, 6)
        if self.finished_s is not None and self.started_s is not None:
            doc["elapsed_s"] = round(self.finished_s - self.started_s, 6)
        if self.report is not None:
            doc["report"] = self.report
        if include_results and self.status == "done":
            if self.kind == "run":
                doc["result"] = self.result.to_dict()
            else:
                doc["results"] = [
                    (r.to_dict() if r is not None else None)
                    for r in self.results
                ]
        return doc


class JobTable:
    """Thread-safe job registry with in-flight dedup and bounded GC."""

    def __init__(self, hub, *, clock=time.monotonic,
                 max_jobs: int = 256, ttl_s: float = 3600.0,
                 journal=None) -> None:
        self._hub = hub
        self._clock = clock
        self.max_jobs = max_jobs
        self.ttl_s = ttl_s
        self.journal = journal
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self.registry: SharedWorkRegistry[str] = SharedWorkRegistry()

    def _journal_state(self, job: Job) -> None:
        if self.journal is not None:
            self.journal.record_state(job.id, job.status, error=job.error,
                                      cached=job.cached)

    # -- submission --------------------------------------------------------

    def submit(self, kind: str, content_hash: str,
               n_cells: int, doc: dict | None = None) -> tuple[Job, bool]:
        """Register one submission; returns ``(job, owner?)``.

        The first submission of an in-flight hash creates the job and
        returns ``owner=True`` — that caller must execute it and
        eventually :meth:`mark_done`/:meth:`mark_failed`.  Concurrent
        identical submissions get the same job back with
        ``owner=False`` (and bump its ``attached`` count): exactly one
        simulation is in flight per content hash.

        ``doc`` is the submission's wire document (spec or plan); when
        the table has a journal, owner submissions are journaled with
        it *before* this returns, so a crash at any later point can
        re-execute the job from the document alone.
        """
        while True:
            with self._lock:
                self._seq += 1
                candidate_id = f"j{self._seq:05d}-{content_hash[:8]}"
            job_id, owner = self.registry.claim(content_hash, candidate_id)
            if owner:
                break
            with self._lock:
                existing = self._jobs.get(job_id)
                if existing is not None and not existing.finished:
                    existing.attached += 1
            if existing is not None and not existing.finished:
                self._hub.publish(job_id, "attached",
                                  {"job": job_id,
                                   "attached": existing.attached})
                return existing, False
            # Stale claim: the owner finished (or was GC'd) between the
            # claim and this read without releasing.  Clear and retry
            # rather than wedging the hash forever.
            self.registry.release(content_hash, job_id)
        job = Job(
            id=candidate_id, kind=kind, content_hash=content_hash,
            n_cells=n_cells, created_s=self._clock(),
        )
        with self._lock:
            self._jobs[candidate_id] = job
        if self.journal is not None and doc is not None:
            self.journal.record_submit(job.id, kind, content_hash,
                                       n_cells, doc)
        self._hub.open(candidate_id)
        self._publish_status(job)
        return job, True

    def add_finished(self, kind: str, content_hash: str, n_cells: int,
                     **payload) -> Job:
        """Register a job born terminal (a cache-served submission)."""
        with self._lock:
            self._seq += 1
            job = Job(
                id=f"j{self._seq:05d}-{content_hash[:8]}",
                kind=kind, content_hash=content_hash, n_cells=n_cells,
                status="done", cached=True, created_s=self._clock(),
            )
            job.started_s = job.finished_s = job.created_s
            for key, value in payload.items():
                setattr(job, key, value)
            self._jobs[job.id] = job
        self._hub.open(job.id)
        self._publish_status(job)
        self._hub.close(job.id)
        return job

    # -- lifecycle ---------------------------------------------------------

    def mark_running(self, job_id: str,
                     generation: int | None = None) -> bool:
        """queued → running (executor thread picked the job up).

        A ``generation`` that no longer matches (the job was requeued
        away from a stalled thread) makes this a no-op returning False.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished or (
                generation is not None and generation != job.generation
            ):
                return False
            job.status = "running"
            job.started_s = job.heartbeat_s = self._clock()
        self._journal_state(job)
        self._publish_status(job)
        return True

    def touch(self, job_id: str, generation: int | None = None) -> bool:
        """Stamp the job's heartbeat (driver made progress); False when
        the job is gone, finished, or ``generation`` is stale."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished or (
                generation is not None and generation != job.generation
            ):
                return False
            job.heartbeat_s = self._clock()
            return True

    def _finish(self, job_id: str, status: str,
                generation: int | None = None, **payload) -> Job | None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished or (
                generation is not None and generation != job.generation
            ):
                return None
            job.status = status
            job.finished_s = self._clock()
            for key, value in payload.items():
                setattr(job, key, value)
        self.registry.release(job.content_hash, job_id)
        self._journal_state(job)
        self._publish_status(job)
        self._hub.close(job_id)
        return job

    def mark_done(self, job_id: str, generation: int | None = None,
                  **payload) -> Job | None:
        """running → done; releases the dedup claim, closes the stream.

        Returns None (and changes nothing) for a stale ``generation`` —
        a superseded driver thread finishing late cannot overwrite the
        requeued attempt.  Benign either way: determinism means both
        attempts produce identical bytes.
        """
        return self._finish(job_id, "done", generation, **payload)

    def mark_failed(self, job_id: str, error: str,
                    generation: int | None = None) -> Job | None:
        """running → failed; later identical submissions start fresh."""
        return self._finish(job_id, "failed", generation, error=error)

    def requeue(self, job_id: str) -> int | None:
        """Send a live job back to ``queued`` under a new generation.

        Used for stalled drivers (supervision) and retryable driver
        failures.  The dedup claim is *kept* — the job still owns its
        hash; only the executing thread is replaced.  Returns the new
        generation, or None when the job is gone or already terminal.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished:
                return None
            job.status = "queued"
            job.generation += 1
            job.requeues += 1
            job.started_s = None
            job.heartbeat_s = None
        self._journal_state(job)
        self._publish_status(job)
        return job.generation

    def adopt(self, job: Job) -> bool:
        """Insert a journal-recovered job; returns whether it is viable.

        Flags the job ``recovered``, floors the id sequence past it (so
        fresh submissions never collide with replayed ids), re-claims
        the dedup hash for live jobs, and opens/replays its event
        channel.  A live job whose hash is somehow already owned — a
        state no legitimate journal produces — is adopted as ``failed``
        rather than left to shadow the owner, and False is returned.
        """
        job.recovered = True
        viable = True
        if not job.finished:
            _, owner = self.registry.claim(job.content_hash, job.id)
            if not owner:
                job.status = "failed"
                job.error = "recovery: content hash already owned"
                job.finished_s = self._clock()
                viable = False
        with self._lock:
            try:
                seq = int(job.id[1:].split("-", 1)[0])
            except ValueError:
                seq = 0
            self._seq = max(self._seq, seq)
            self._jobs[job.id] = job
        self._hub.open(job.id)
        self._publish_status(job)
        if job.finished:
            self._hub.close(job.id)
        return viable

    def stalled(self, timeout_s: float) -> list[Job]:
        """Running jobs whose heartbeat went quiet for ``timeout_s``."""
        now = self._clock()
        with self._lock:
            return [
                job for job in self._jobs.values()
                if job.status == "running"
                and (job.heartbeat_s or job.started_s or 0.0)
                <= now - timeout_s
            ]

    def _publish_status(self, job: Job) -> None:
        self._hub.publish(job.id, "status", {
            "job": job.id, "status": job.status, "kind": job.kind,
            "cells": job.n_cells, "cached": job.cached,
            "error": job.error,
        })

    # -- reads -------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        """The job record, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, state: str | None = None) -> list[Job]:
        """All live jobs, oldest first (optionally filtered by state)."""
        with self._lock:
            selected = [
                job for job in self._jobs.values()
                if state is None or job.status == state
            ]
        return sorted(selected, key=lambda j: j.created_s)

    def counts(self) -> dict[str, int]:
        """Job counts by status (health surface)."""
        out = dict.fromkeys(JOB_STATES, 0)
        with self._lock:
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
        return out

    # -- GC ----------------------------------------------------------------

    def gc(self) -> list[str]:
        """Evict expired/excess *finished* jobs; returns evicted ids.

        Two triggers: a finished job older than ``ttl_s`` (by the table
        clock) expires, and when the table still exceeds ``max_jobs``
        the oldest finished jobs go first.  Live jobs are never
        evicted, so a table full of running work simply stays large.
        """
        now = self._clock()
        evicted: list[str] = []
        with self._lock:
            finished = sorted(
                (j for j in self._jobs.values() if j.finished),
                key=lambda j: j.finished_s,
            )
            for job in finished:
                if now - job.finished_s >= self.ttl_s:
                    del self._jobs[job.id]
                    evicted.append(job.id)
            overflow = len(self._jobs) - self.max_jobs
            if overflow > 0:
                for job in finished:
                    if overflow <= 0:
                        break
                    if job.id in self._jobs:
                        del self._jobs[job.id]
                        evicted.append(job.id)
                        overflow -= 1
        for job_id in evicted:
            self._hub.drop(job_id)
        return evicted


__all__ = ["JOB_STATES", "Job", "JobTable"]
