"""Per-job event fan-out: simulation taps in, SSE subscribers out.

Jobs execute on worker threads (and, for plans, pool processes) while
subscribers sit in the asyncio loop; the hub is the thread-safe bridge
between the two.  Each job owns one :class:`_Channel` — a monotonic
event counter plus a *bounded* ring of recent events — and any number of
:class:`Subscription` cursors reading from that ring.

The design is pull-based on purpose: publishers only append to the ring
and set per-subscriber wakeup flags, so **publishing never blocks and
never waits on a client** — a stalled SSE consumer cannot slow the
simulation that feeds it.  The cost lands where it belongs: a subscriber
that falls more than ``backlog`` events behind loses the oldest events,
and its cursor reports exactly how many were dropped (the SSE stream
surfaces that as a ``dropped`` event so clients know their view has a
gap).

Late subscribers replay the ring from its oldest retained event, so a
client attaching mid-run still sees recent history and, for short runs,
the whole stream.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """One published event: monotonic per-job id, name, JSON-able data."""

    id: int
    name: str
    data: dict


class _Channel:
    """One job's event ring + its live subscriptions."""

    def __init__(self, backlog: int) -> None:
        self.events: deque[Event] = deque(maxlen=backlog)
        self.next_id = 0
        self.closed = False
        self.subs: set[Subscription] = set()


class Subscription:
    """A cursor over one channel's ring, consumable from asyncio.

    Iterate with :meth:`next_batch`; ``dropped`` counts ring events that
    aged out before this cursor read them.
    """

    def __init__(self, hub: "EventHub", job_id: str) -> None:
        self._hub = hub
        self.job_id = job_id
        self._cursor = 0
        self.dropped = 0
        self._wakeup = asyncio.Event()
        self._loop = asyncio.get_running_loop()

    def _wake(self) -> None:
        """Set the wakeup flag from any thread."""
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            self._wakeup.set()
        else:
            self._loop.call_soon_threadsafe(self._wakeup.set)

    def _drain(self) -> tuple[list[Event], bool]:
        """Events at/after the cursor, and the channel's closed flag."""
        with self._hub._lock:
            channel = self._hub._channels.get(self.job_id)
            if channel is None:
                return [], True
            batch = [e for e in channel.events if e.id >= self._cursor]
            if batch:
                oldest = batch[0].id
                if oldest > self._cursor:
                    self.dropped += oldest - self._cursor
                self._cursor = batch[-1].id + 1
            return batch, channel.closed

    async def next_batch(self, timeout: float | None = None
                         ) -> tuple[list[Event], bool]:
        """Wait for events; returns ``(events, done)``.

        ``done=True`` means the channel is closed *and* fully drained —
        the stream is over.  An empty batch with ``done=False`` is a
        ``timeout`` expiry (callers emit an SSE keep-alive comment).
        """
        while True:
            batch, closed = self._drain()
            if batch:
                return batch, False
            if closed:
                return [], True
            self._wakeup.clear()
            # Race window: an event published between _drain and clear
            # would have set the flag before the clear.  Re-check.
            batch, closed = self._drain()
            if batch or closed:
                return batch, closed and not batch
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                return [], False

    def close(self) -> None:
        """Detach this cursor from its channel."""
        with self._hub._lock:
            channel = self._hub._channels.get(self.job_id)
            if channel is not None:
                channel.subs.discard(self)


class EventHub:
    """Thread-safe registry of per-job event channels."""

    def __init__(self, backlog: int = 512) -> None:
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        self._backlog = backlog
        self._lock = threading.Lock()
        self._channels: dict[str, _Channel] = {}

    def open(self, job_id: str) -> None:
        """Create the channel for a job (idempotent)."""
        with self._lock:
            self._channels.setdefault(job_id, _Channel(self._backlog))

    def publish(self, job_id: str, name: str, data: dict) -> int:
        """Append one event and wake subscribers; never blocks.

        Safe from any thread.  Returns the event id, or -1 when the
        channel is closed or gone (late tap firings after job teardown
        are dropped silently — the run is already over).
        """
        with self._lock:
            channel = self._channels.get(job_id)
            if channel is None or channel.closed:
                return -1
            event = Event(channel.next_id, name, data)
            channel.next_id += 1
            channel.events.append(event)
            subs = list(channel.subs)
        for sub in subs:
            sub._wake()
        return event.id

    def close(self, job_id: str) -> None:
        """Mark a job's stream finished; subscribers drain then end."""
        with self._lock:
            channel = self._channels.get(job_id)
            if channel is None:
                return
            channel.closed = True
            subs = list(channel.subs)
        for sub in subs:
            sub._wake()

    def drop(self, job_id: str) -> None:
        """Remove a channel entirely (job GC)."""
        with self._lock:
            channel = self._channels.pop(job_id, None)
            subs = list(channel.subs) if channel is not None else []
        for sub in subs:
            sub._wake()

    def subscribe(self, job_id: str) -> Subscription:
        """Attach a cursor (from the event loop) to a job's channel.

        The cursor starts at the ring's oldest retained event, so late
        subscribers get the available history before live events.
        """
        sub = Subscription(self, job_id)
        with self._lock:
            channel = self._channels.get(job_id)
            if channel is not None:
                # Start at the oldest *retained* event: late attachment
                # replays available history without counting the events
                # that aged out before this cursor existed as drops.
                if channel.events:
                    sub._cursor = channel.events[0].id
                else:
                    sub._cursor = channel.next_id
                channel.subs.add(sub)
        return sub

    def channel_stats(self, job_id: str) -> dict:
        """Events published / retained / subscriber count (status doc)."""
        with self._lock:
            channel = self._channels.get(job_id)
            if channel is None:
                return {"published": 0, "retained": 0, "subscribers": 0,
                        "closed": True}
            return {
                "published": channel.next_id,
                "retained": len(channel.events),
                "subscribers": len(channel.subs),
                "closed": channel.closed,
            }


__all__ = ["Event", "EventHub", "Subscription"]
