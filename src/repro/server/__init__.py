"""``repro serve`` — the experiment layer over HTTP, stdlib-only.

A hand-rolled asyncio HTTP/1.1 + SSE service (no dependencies beyond
the standard library, matching the repo's SVG-backend precedent) that
exposes the declarative experiment layer:

* ``POST /v1/runs`` — submit one :class:`ExperimentSpec`; identical
  in-flight submissions share one simulation (content-hash dedup) and
  completed ones are served straight from the :class:`ResultCache`.
* ``POST /v1/plans`` — submit a :class:`Plan`; cells shard onto the
  persistent :class:`SweepPool` through the fault-tolerant retry
  scheduler, with per-cell :class:`SweepReport` status.
* ``GET /v1/jobs/<id>`` — job status (and results once done).
* ``GET /v1/jobs/<id>/events`` — per-epoch :class:`RunTotals` deltas,
  mitigation events, and job lifecycle over Server-Sent Events.
* ``GET /v1/health`` — version, engine tiers, cache/trace-store status.

The service is crash-safe: accepted jobs are journaled durably
(:mod:`~repro.server.journal`), recovered idempotently on restart, and
drained gracefully on SIGTERM — see the failure-model section of
DESIGN.md.

Module map: :mod:`~repro.server.wire` (JSON wire schema),
:mod:`~repro.server.jobs` (job table + content-hash dedup),
:mod:`~repro.server.journal` (durable job journal),
:mod:`~repro.server.hub` (SSE fan-out with per-client backpressure),
:mod:`~repro.server.http` (HTTP/1.1 framing), :mod:`~repro.server.routes`
(URL dispatch), :mod:`~repro.server.app` (the service itself).
"""

from repro.server.app import ReproServer, ServerConfig, ServerThread
from repro.server.hub import EventHub
from repro.server.jobs import Job, JobTable
from repro.server.journal import Journal, JournaledJob
from repro.server.wire import WIRE_VERSION, WireError

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "EventHub",
    "Job",
    "JobTable",
    "Journal",
    "JournaledJob",
    "ReproServer",
    "ServerConfig",
    "ServerThread",
]
