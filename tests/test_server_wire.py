"""Golden tests of the ``repro serve`` JSON wire schema and routing."""

import json

import pytest

from repro.experiments import ExperimentSpec, Plan, SchemeSpec
from repro.server import WIRE_VERSION, WireError
from repro.server import wire
from repro.server.routes import ROUTES, match

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestRunRequests:
    def test_bare_spec_document_round_trips(self):
        spec = fast_spec(seed=3)
        parsed = wire.parse_run_request(spec.to_dict())
        assert parsed == spec
        assert parsed.content_hash() == spec.content_hash()

    def test_enveloped_spec_document_round_trips(self):
        spec = fast_spec(seed=4)
        parsed = wire.parse_run_request({"spec": spec.to_dict()})
        assert parsed == spec

    def test_run_body_is_exactly_the_cli_spec_document(self):
        # The wire reuses `repro run --spec` documents verbatim: what
        # to_dict emits is a valid POST /v1/runs body with no extras.
        doc = fast_spec().to_dict()
        body = json.dumps({"spec": doc}).encode()
        assert wire.parse_run_request(wire.parse_json_body(body)) == \
            fast_spec()

    def test_invalid_spec_is_a_422_style_wire_error(self):
        with pytest.raises(WireError) as err:
            wire.parse_run_request({"spec": {"scheme": {"kind": "bogus"}}})
        assert err.value.status == 400
        assert err.value.code == "invalid-spec"

    def test_non_object_spec_rejected(self):
        with pytest.raises(WireError):
            wire.parse_run_request({"spec": [1, 2]})


class TestPlanRequests:
    def test_plan_document_round_trips(self):
        plan = Plan.grid(fast_spec(), seed=[1, 2, 3])
        parsed = wire.parse_plan_request(plan.to_dict())
        assert parsed.content_hash() == plan.content_hash()
        assert len(parsed) == 3

    def test_enveloped_plan_round_trips(self):
        plan = Plan.grid(fast_spec(), seed=[5, 6])
        parsed = wire.parse_plan_request({"plan": plan.to_dict()})
        assert list(parsed.specs) == list(plan.specs)

    def test_invalid_plan_is_a_wire_error(self):
        with pytest.raises(WireError) as err:
            wire.parse_plan_request({"plan": {"axes": "nope"}})
        assert err.value.code == "invalid-plan"


class TestBodiesAndEnvelopes:
    def test_empty_body_rejected(self):
        with pytest.raises(WireError, match="empty"):
            wire.parse_json_body(b"")

    def test_non_json_body_rejected(self):
        with pytest.raises(WireError, match="not valid JSON"):
            wire.parse_json_body(b"{nope")

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            wire.parse_json_body(b"[1, 2]")

    def test_envelope_stamps_wire_version(self):
        assert wire.envelope({"x": 1}) == {"wire_version": WIRE_VERSION,
                                           "x": 1}

    def test_error_doc_carries_code_status_message(self):
        doc = wire.error_doc(WireError("nope", status=404,
                                       code="not-found"))
        assert doc["error"] == {"code": "not-found", "status": 404,
                                "message": "nope"}
        assert doc["wire_version"] == WIRE_VERSION

    def test_generic_exception_becomes_internal_error(self):
        doc = wire.error_doc(RuntimeError("boom"))
        assert doc["error"]["code"] == "internal"
        assert doc["error"]["status"] == 500

    def test_dump_is_canonical(self):
        # Sorted keys + trailing newline: the property the byte-identity
        # assertions (server response vs direct run) rely on.
        a = wire.dump({"b": 1, "a": 2})
        b = wire.dump({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")
        assert json.loads(a) == {"a": 2, "b": 1}


class TestSSEFraming:
    def test_event_frame_shape(self):
        frame = wire.sse_event("epoch", 7, {"b": 1, "a": 2}).decode()
        lines = frame.splitlines()
        assert lines[0] == "event: epoch"
        assert lines[1] == "id: 7"
        assert lines[2] == 'data: {"a":2,"b":1}'
        assert frame.endswith("\n\n")

    def test_data_is_one_line(self):
        frame = wire.sse_event("x", 0, {"text": "a\nb"}).decode()
        # JSON escapes the newline; the frame stays single-data-line.
        assert frame.count("data: ") == 1

    def test_comment_frame(self):
        assert wire.sse_comment("keep-alive") == b": keep-alive\n\n"


class TestRouting:
    def test_endpoint_table_is_pinned(self):
        table = {(r.method, "/" + "/".join(r.segments)): r.handler
                 for r in ROUTES}
        assert table == {
            ("GET", "/v1/health"): "health",
            ("POST", "/v1/runs"): "submit_run",
            ("POST", "/v1/plans"): "submit_plan",
            ("GET", "/v1/jobs"): "list_jobs",
            ("GET", "/v1/jobs/<id>"): "job_status",
            ("GET", "/v1/jobs/<id>/events"): "job_events",
        }

    def test_match_binds_path_params(self):
        route, params, known = match("GET", "/v1/jobs/j00001-abc/events")
        assert route.handler == "job_events"
        assert params == {"id": "j00001-abc"}
        assert known

    def test_unknown_path_is_not_known(self):
        route, params, known = match("GET", "/v2/health")
        assert route is None and not known

    def test_method_mismatch_is_known_path(self):
        # Known path + wrong method must be distinguishable (405 vs 404).
        route, _params, known = match("DELETE", "/v1/health")
        assert route is None and known
