"""Tests for the trace-driven simulator and its scaling machinery."""

import numpy as np
import pytest

from repro.dram.config import DUAL_CORE_2CH, SystemConfig
from repro.experiments import ExperimentSpec, SchemeSpec
from repro.sim.simulator import (
    TraceDrivenSimulator,
    _merge_streams,
    _phase_segments,
    baseline_execution_time_ns,
    scaled_threshold,
)
from repro.workloads.suites import get_workload


class TestScaledThreshold:
    def test_divides(self):
        assert scaled_threshold(32768, 16.0) == 2048

    def test_floors_at_32(self):
        assert scaled_threshold(32768, 10000.0) == 32

    def test_identity(self):
        assert scaled_threshold(32768, 1.0) == 32768


class TestPhaseSegments:
    def test_single_phase(self):
        assert _phase_segments(0, 1) == [(1.0, 0)]
        assert _phase_segments(5, 1) == [(1.0, 0)]

    def test_fractions_sum_to_one(self):
        for phases in (2, 3, 5):
            for interval in range(3):
                segments = _phase_segments(interval, phases)
                assert sum(f for f, _ in segments) == pytest.approx(1.0)

    def test_boundaries_not_epoch_aligned(self):
        """The trailing segment of interval i shares its phase id with
        the leading segment of interval i+1 (no change at the epoch)."""
        tail_phase = _phase_segments(0, 2)[-1][1]
        head_phase = _phase_segments(1, 2)[0][1]
        assert tail_phase == head_phase

    def test_phase_ids_advance(self):
        segs = _phase_segments(0, 3)
        ids = [p for _, p in segs]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestMergeStreams:
    def test_sorted_by_time(self):
        a = (np.array([5.0, 10.0]), np.array([1, 2]))
        b = (np.array([1.0, 7.0]), np.array([3, 4]))
        times, _banks, _rows = _merge_streams([a, b])
        assert list(times) == [1.0, 5.0, 7.0, 10.0]

    def test_bank_tags(self):
        a = (np.array([1.0]), np.array([42]))
        b = (np.array([2.0]), np.array([43]))
        times, banks, rows = _merge_streams([a, b])
        assert list(banks) == [0, 1]
        assert list(rows) == [42, 43]

    def test_integer_dtypes(self):
        """Bank and row ids never round-trip through float64."""
        a = (np.array([1.0]), np.array([42], dtype=np.int64))
        _times, banks, rows = _merge_streams([a])
        assert banks.dtype == np.int64
        assert rows.dtype == np.int64

    def test_stable_for_tied_times(self):
        a = (np.array([5.0]), np.array([1]))
        b = (np.array([5.0]), np.array([2]))
        _times, banks, _rows = _merge_streams([a, b])
        assert list(banks) == [0, 1]

    def test_empty(self):
        times, banks, rows = _merge_streams([])
        assert len(times) == len(banks) == len(rows) == 0


class TestBaselineExecutionTime:
    def test_denominator_is_duration_plus_one_row_cycle(self):
        config = DUAL_CORE_2CH
        duration = 1e6
        expected = duration + config.timings.t_rc
        assert baseline_execution_time_ns(config, 1, duration) == expected
        # Independent of the access count: the busy-horizon model only
        # leaves at most one row cycle in flight at the interval's end.
        assert baseline_execution_time_ns(config, 100_000, duration) == expected

    def test_no_accesses_is_pure_duration(self):
        assert baseline_execution_time_ns(DUAL_CORE_2CH, 0, 5e5) == 5e5


class TestSimulatorRuns:
    def make(self, scheme, **kw):
        params = kw.pop("params", {})
        defaults = dict(scale=64.0, n_banks=1, n_intervals=1,
                        system=DUAL_CORE_2CH)
        defaults.update(kw)
        return TraceDrivenSimulator(ExperimentSpec(
            scheme=SchemeSpec.create(scheme, **params), **defaults
        ))

    def test_totals_consistent(self):
        sim = self.make("sca", params={"n_counters": 64})
        result = sim.run(get_workload("black"))
        totals = result.totals
        assert totals.accesses > 0
        assert totals.elapsed_ns == pytest.approx(64e6 / 64.0)
        assert totals.rows_refreshed >= totals.refresh_commands

    def test_deterministic(self):
        r1 = self.make("drcat").run(get_workload("comm1"))
        r2 = self.make("drcat").run(get_workload("comm1"))
        assert r1.totals.rows_refreshed == r2.totals.rows_refreshed
        assert r1.cmrpo == r2.cmrpo

    def test_refresh_rows_scale_invariant(self):
        """DESIGN.md invariant 6: rows/interval is stable across scales."""
        rows = []
        for scale in (32.0, 64.0):
            sim = self.make("sca", scale=scale)
            result = sim.run(get_workload("black"))
            rows.append(result.totals.rows_refreshed_per_bank_interval)
        assert rows[0] == pytest.approx(rows[1], rel=0.35)

    def test_pra_probability_plumbs_through(self):
        sim = self.make("pra", params={"probability": 0.004})
        result = sim.run(get_workload("libq"))
        assert result.parameters["probability"] == 0.004

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            self.make("sca", scale=0.5)

    def test_rejects_non_spec_construction(self):
        """The pre-spec (config, kind, **kwargs) form is gone for good."""
        with pytest.raises(TypeError, match="ExperimentSpec"):
            TraceDrivenSimulator(DUAL_CORE_2CH)

    def test_banks_capped_at_config(self):
        sim = self.make("sca", n_banks=1000)
        assert sim.n_banks_simulated == DUAL_CORE_2CH.n_banks

    def test_cat_schedule_scaled(self):
        sim = self.make("prcat", scale=16.0)
        scheme = sim._scheme_factory()(DUAL_CORE_2CH.rows_per_bank)
        assert scheme.schedule.refresh_threshold == 2048
        assert scheme.tree.thresholds.refresh_threshold == 2048

    def test_attack_run(self):
        from repro.workloads.attacks import ATTACK_KERNELS

        sim = self.make("sca", refresh_threshold=16384)
        result = sim.run_attack(
            ATTACK_KERNELS[0], "heavy", get_workload("libq")
        )
        assert result.totals.rows_refreshed > 0
        assert "kernel01" in result.workload


class TestQuadCoreConfig:
    def test_quad_core_rows(self):
        quad = SystemConfig(n_cores=4, rows_per_bank=131072)
        sim = TraceDrivenSimulator(ExperimentSpec(
            scheme=SchemeSpec("sca"), system=quad, scale=128.0,
            n_banks=1, n_intervals=1,
        ))
        result = sim.run(get_workload("comm1"))
        assert result.totals.accesses > 0
