"""Tests for the PRA reliability analysis (Eq. 1, Figure 1, LFSR MC)."""

import math

import pytest

from repro.analysis.prng import TrueRandomPRNG
from repro.analysis.unsurvivability import (
    CHIPKILL_UNSURVIVABILITY,
    figure1_grid,
    lfsr_effective_failure_rate,
    minimum_probability_for_reliability,
    monte_carlo_window_failures,
    periods_in_years,
    unsurvivability,
)


class TestEquation1:
    def test_matches_closed_form(self):
        p, t, q0, years = 0.002, 32768, 10.0, 5.0
        expected = (1 - p) ** t * q0 * periods_in_years(years)
        assert unsurvivability(p, t, years=years, q0=q0) == pytest.approx(
            expected, rel=1e-9
        )

    def test_periods_in_five_years(self):
        # 5 years of 64 ms periods
        assert periods_in_years(5) == pytest.approx(5 * 365 * 24 * 3600 / 0.064)

    def test_decreasing_in_probability(self):
        values = [unsurvivability(p, 16384) for p in (0.001, 0.003, 0.006)]
        assert values[0] > values[1] > values[2]

    def test_increasing_when_threshold_drops(self):
        """Smaller T -> exponentially worse unsurvivability (paper's key
        observation in Section III-A)."""
        big_t = unsurvivability(0.002, 32768, q0=10)
        small_t = unsurvivability(0.002, 8192, q0=40)
        assert small_t > big_t * 1e6

    def test_input_validation(self):
        with pytest.raises(ValueError):
            unsurvivability(0.0, 32768)
        with pytest.raises(ValueError):
            unsurvivability(0.002, 0)


class TestFigure1:
    def test_grid_shape(self):
        grid = figure1_grid()
        assert set(grid) == {32768, 24576, 16384, 8192}
        for series in grid.values():
            assert set(series) == {0.001, 0.002, 0.003, 0.004, 0.005, 0.006}

    def test_t32k_p2em3_beats_chipkill(self):
        """Figure 1: for T=32K and p > 0.001, PRA beats Chipkill's 1E-4."""
        grid = figure1_grid()
        assert grid[32768][0.002] < CHIPKILL_UNSURVIVABILITY

    def test_t16k_p002_misses_chipkill(self):
        """The paper switches to p=0.003 at T=16K because p=0.002 fails."""
        grid = figure1_grid()
        assert grid[16384][0.002] > CHIPKILL_UNSURVIVABILITY
        assert grid[16384][0.003] < CHIPKILL_UNSURVIVABILITY

    def test_t8k_needs_p005(self):
        grid = figure1_grid()
        assert grid[8192][0.003] > CHIPKILL_UNSURVIVABILITY
        assert grid[8192][0.005] < CHIPKILL_UNSURVIVABILITY


class TestMinimumProbability:
    def test_inverts_equation(self):
        for t, q0 in ((32768, 10.0), (16384, 20.0), (8192, 40.0)):
            p_min = minimum_probability_for_reliability(t, q0=q0)
            at_min = unsurvivability(p_min, t, q0=q0)
            assert at_min == pytest.approx(CHIPKILL_UNSURVIVABILITY, rel=1e-6)

    def test_monotone_in_threshold(self):
        ps = [
            minimum_probability_for_reliability(t)
            for t in (32768, 16384, 8192)
        ]
        assert ps[0] < ps[1] < ps[2]


class TestMonteCarlo:
    def test_trng_failure_rate_matches_closed_form(self):
        # Use a small threshold so (1-p)^T is measurable
        prng = TrueRandomPRNG(seed=3)
        result = monte_carlo_window_failures(
            prng, probability=0.004, refresh_threshold=512, n_windows=4000
        )
        # effective p is 2/512 = 0.00390625
        expected = (1 - 2 / 512) ** 512
        assert result.failure_rate == pytest.approx(expected, rel=0.35)

    def test_intervals_to_reach_infinite_when_no_failures(self):
        prng = TrueRandomPRNG(seed=3)
        result = monte_carlo_window_failures(
            prng, probability=0.05, refresh_threshold=2048, n_windows=200
        )
        assert result.failures == 0
        assert result.intervals_to_reach(1e-4) == math.inf

    def test_lfsr_worse_than_trng(self):
        """Section III-A: LFSR-driven PRA fails much earlier.

        A phase-aligned window either always hits or always misses; the
        exact period analysis exposes alignments with zero refreshes.
        """
        width = 16
        t = 512
        p = 0.004
        lfsr_rate = lfsr_effective_failure_rate(width, p, t)
        trng_rate = (1 - 2 / 512) ** t
        assert lfsr_rate > trng_rate

    def test_lfsr_exact_rate_in_unit_range(self):
        rate = lfsr_effective_failure_rate(16, 0.005, 2048)
        assert 0.0 <= rate <= 1.0


class TestLFSRExactAnalysis:
    def test_no_hits_means_certain_failure(self):
        # probability so small that the 9-bit cut only matches value 0;
        # if the LFSR never emits 9 zero bits in a window, failure certain
        rate = lfsr_effective_failure_rate(8, 0.0001, 10_000)
        assert rate == pytest.approx(0.0, abs=1e-9) or rate == 1.0
