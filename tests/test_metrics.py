"""Tests for result records and metric derivation."""

import pytest

from repro.energy.cmrpo import CMRPOBreakdown
from repro.sim.metrics import RunTotals, SimulationResult, format_table, mean_over


def totals(**kw):
    defaults = dict(
        scheme="sca",
        workload="test",
        scale=16.0,
        n_banks_simulated=2,
        n_intervals=4,
        accesses=1000,
        refresh_commands=10,
        rows_refreshed=800,
        stall_ns=1000.0,
        elapsed_ns=1e6,
        mitigation_busy_ns=5000.0,
        full_scale_accesses_per_interval=500_000.0,
    )
    defaults.update(kw)
    return RunTotals(**defaults)


class TestRunTotals:
    def test_rows_per_bank_interval(self):
        t = totals(rows_refreshed=800, n_banks_simulated=2, n_intervals=4)
        assert t.rows_refreshed_per_bank_interval == 100.0

    def test_eto_corrects_for_scale(self):
        t = totals(stall_ns=1600.0, elapsed_ns=1e6, scale=16.0)
        assert t.eto == pytest.approx(1600.0 / 1e6 / 16.0)

    def test_eto_zero_when_no_time(self):
        assert totals(elapsed_ns=0.0).eto == 0.0


class TestSimulationResult:
    def make(self):
        return SimulationResult(
            totals=totals(),
            cmrpo_breakdown=CMRPOBreakdown(0.01, 0.02, 0.03),
            parameters={"n_counters": 64},
        )

    def test_properties(self):
        r = self.make()
        assert r.scheme == "sca"
        assert r.workload == "test"
        assert r.cmrpo == pytest.approx(0.06 / 2.5)

    def test_summary_fields(self):
        summary = self.make().summary()
        assert summary["workload"] == "test"
        assert summary["cmrpo_pct"] == pytest.approx(100 * 0.06 / 2.5)
        assert "rows_per_interval" in summary


class TestHelpers:
    def test_mean_over(self):
        results = [self.make_result(c) for c in (0.02, 0.04)]
        assert mean_over(results, "cmrpo") == pytest.approx(
            (results[0].cmrpo + results[1].cmrpo) / 2
        )

    def make_result(self, refresh_mw):
        return SimulationResult(
            totals=totals(),
            cmrpo_breakdown=CMRPOBreakdown(0.0, 0.0, refresh_mw),
        )

    def test_mean_over_empty_raises(self):
        with pytest.raises(ValueError):
            mean_over([], "cmrpo")

    def test_format_table(self):
        rows = [
            {"name": "a", "value": 1.5},
            {"name": "bb", "value": 2.25},
        ]
        text = format_table(rows, ["name", "value"])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text and "2.250" in text
        assert len(lines) == 4
