"""Property-based tests (hypothesis) for the core invariants.

These verify the DESIGN.md invariants over randomised access sequences:

1. the CAT partition always tiles the bank exactly;
2. rowhammer safety: with a deterministic scheme in the loop, no row's
   unrefreshed activation count ever exceeds the refresh threshold;
3. counter conservation across splits and merges;
4. CAT under uniform access degenerates to SCA's uniform grouping.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import ActivationLedger
from repro.core.counter_tree import CounterTree
from repro.core.sca import SCAScheme
from repro.core.cat import PRCATScheme
from repro.core.drcat import DRCATScheme
from repro.core.thresholds import SplitThresholds

N_ROWS = 256


def tree_strategy():
    return st.tuples(
        st.sampled_from([4, 8, 16]),          # counters
        st.sampled_from([64, 128, 256]),      # refresh threshold
        st.booleans(),                        # weights
    )


access_seq = st.lists(st.integers(0, N_ROWS - 1), min_size=1, max_size=400)


class TestPartitionInvariant:
    @settings(max_examples=60, deadline=None)
    @given(params=tree_strategy(), rows=access_seq, data=st.data())
    def test_partition_tiles_bank(self, params, rows, data):
        m, t, weights = params
        th = SplitThresholds.create(t, m, max_levels=int(np.log2(m)) + 3)
        tree = CounterTree(N_ROWS, th, track_weights=weights)
        for row in rows:
            tree.access(row)
        tree.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(rows=access_seq)
    def test_partition_after_reset(self, rows):
        th = SplitThresholds.create(64, 8, 6)
        tree = CounterTree(N_ROWS, th, track_weights=True)
        for i, row in enumerate(rows):
            tree.access(row)
            if i % 97 == 96:
                tree.reset()
        tree.reset()
        tree.check_invariants()
        assert tree.active_counters == 4  # presplit for M=8


class TestRowhammerSafety:
    """No row may accumulate more than T activations unrefreshed."""

    def _run_safety(self, scheme, rows, threshold):
        ledger = ActivationLedger(scheme.n_rows)
        for row in rows:
            ledger.activate(row)
            for cmd in scheme.access(row):
                c = cmd.clamped(scheme.n_rows)
                ledger.refresh_range(c.low, c.high)
            assert ledger.max_pressure() <= threshold, (
                f"row pressure {ledger.max_pressure()} exceeds T={threshold}"
            )

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(st.integers(0, N_ROWS - 1), min_size=50, max_size=600),
        m=st.sampled_from([4, 8, 16]),
    )
    def test_sca_is_safe(self, rows, m):
        scheme = SCAScheme(N_ROWS, 32, m)
        self._run_safety(scheme, rows, 32)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(st.integers(0, N_ROWS - 1), min_size=50, max_size=600),
    )
    def test_prcat_is_safe(self, rows):
        scheme = PRCATScheme(N_ROWS, 64, n_counters=8, max_levels=6)
        self._run_safety(scheme, rows, 64)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(st.integers(0, N_ROWS - 1), min_size=50, max_size=600),
    )
    def test_drcat_is_safe(self, rows):
        scheme = DRCATScheme(N_ROWS, 64, n_counters=8, max_levels=6)
        self._run_safety(scheme, rows, 64)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_drcat_safe_under_adversarial_hammer(self, data):
        """Focused hammering with drift — the hardest deterministic case."""
        scheme = DRCATScheme(N_ROWS, 64, n_counters=8, max_levels=7)
        targets = data.draw(
            st.lists(st.integers(0, N_ROWS - 1), min_size=1, max_size=4)
        )
        rows = []
        for t in targets:
            rows.extend([t] * 200)
        self._run_safety(scheme, rows, 64)


class TestCounterConservation:
    @settings(max_examples=40, deadline=None)
    @given(rows=access_seq)
    def test_active_plus_free_constant(self, rows):
        th = SplitThresholds.create(64, 8, 7)
        tree = CounterTree(N_ROWS, th, track_weights=True)
        for row in rows:
            tree.access(row)
            assert tree.active_counters + tree.free_counters == 8


class TestSCAEquivalence:
    def test_uniform_cat_refreshes_same_groups_as_sca(self):
        """Invariant 4: under uniform access CAT converges to SCA_M.

        After convergence both schemes partition the bank into M equal
        groups, so their refresh ranges coincide.
        """
        m, t = 8, 64
        th = SplitThresholds.create(t, m, 6)
        tree = CounterTree(N_ROWS, th)
        rng = np.random.default_rng(0)
        for row in rng.integers(0, N_ROWS, size=3000):
            tree.access(int(row))
        assert tree.is_balanced()
        group = N_ROWS // m
        expected = {(i * group, (i + 1) * group - 1) for i in range(m)}
        got = {(lo, hi) for lo, hi, _ in tree.partition()}
        assert got == expected


class TestScaleInvariance:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_refresh_counts_stable_under_scaling(self, seed):
        """Invariant 6: dividing T and the access count by the same
        factor leaves refreshes-per-interval roughly unchanged."""
        rng = np.random.default_rng(seed)
        hot = int(rng.integers(0, N_ROWS))
        base_rows = [
            hot if rng.random() < 0.5 else int(rng.integers(0, N_ROWS))
            for _ in range(4000)
        ]
        results = []
        for scale in (1, 2):
            t = 256 // scale
            th = SplitThresholds.create(t, 8, 6)
            tree = CounterTree(N_ROWS, th)
            for row in base_rows[: len(base_rows) // scale]:
                tree.access(row)
            results.append(tree.total_refresh_commands)
        assert abs(results[0] - results[1]) <= max(3, results[0] // 2)
