"""Tests for the experiment runner public API."""

import pytest

from repro.experiments import SchemeSpec
from repro.sim.runner import (
    simulate_attack,
    simulate_workload,
    suite_means,
    sweep,
)
from repro.workloads.suites import get_workload

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


class TestSimulateWorkload:
    def test_basic_run(self):
        result = simulate_workload("black", scheme="drcat", **FAST)
        assert result.scheme == "drcat"
        assert result.workload == "black"
        assert 0.0 <= result.cmrpo < 1.0

    def test_accepts_spec_object(self):
        spec = get_workload("libq")
        result = simulate_workload(spec, scheme="sca", **FAST)
        assert result.workload == "libq"

    def test_full_name_aliases(self):
        result = simulate_workload("blackscholes", scheme="sca", **FAST)
        assert result.workload == "black"
        result = simulate_workload("facesim", scheme="sca", **FAST)
        assert result.workload == "face"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            simulate_workload("quake3", **FAST)

    def test_counter_knob(self):
        result = simulate_workload(
            "libq", scheme=SchemeSpec.create("sca", n_counters=128), **FAST
        )
        assert result.parameters["n_counters"] == 128

    def test_loose_scheme_kwargs_removed(self):
        """The pre-spec kwarg soup is gone for good (was deprecated)."""
        with pytest.raises(TypeError):
            simulate_workload("libq", scheme="sca", counters=128, **FAST)


class TestSweep:
    def test_keys_are_workload_scheme_pairs(self):
        results = sweep(
            workloads=["black", "libq"], schemes=("sca", "drcat"), **FAST
        )
        assert set(results) == {
            ("black", "sca"),
            ("black", "drcat"),
            ("libq", "sca"),
            ("libq", "drcat"),
        }

    def test_typed_scheme_axis(self):
        """Per-scheme parameters ride on SchemeSpec grid entries."""
        results = sweep(
            workloads=["libq"],
            schemes=(SchemeSpec.create("sca", "sca", n_counters=128),
                     SchemeSpec.create("drcat", "drcat", n_counters=64)),
            **FAST,
        )
        assert results[("libq", "sca")].parameters["n_counters"] == 128
        assert results[("libq", "drcat")].parameters["n_counters"] == 64

    def test_scheme_overrides_removed(self):
        """The scheme_overrides kwarg is gone (was deprecated)."""
        with pytest.raises(TypeError):
            sweep(
                workloads=["libq"],
                schemes=("sca",),
                scheme_overrides={"sca": {"counters": 128}},
                **FAST,
            )

    def test_suite_means(self):
        results = sweep(workloads=["black", "libq"], schemes=("sca",), **FAST)
        means = suite_means(results, "cmrpo")
        assert set(means) == {"sca"}
        expected = (
            results[("black", "sca")].cmrpo + results[("libq", "sca")].cmrpo
        ) / 2
        assert means["sca"] == pytest.approx(expected)


class TestSimulateAttack:
    def test_attack_by_name(self):
        result = simulate_attack(
            "kernel02", "medium", "sca", refresh_threshold=16384, **FAST
        )
        assert "kernel02" in result.workload
        assert result.totals.rows_refreshed >= 0

    def test_attack_benign_choice(self):
        result = simulate_attack(
            "kernel01", "light", "prcat", benign="comm1", **FAST
        )
        assert "comm1" in result.workload
