"""Tests for the kernel rowhammer attack generators (Section VIII-D)."""

import numpy as np
import pytest

from repro.workloads.attacks import (
    ATTACK_KERNELS,
    ATTACK_MODES,
    TARGETS_PER_BANK,
    attack_stream,
    get_kernel,
)
from repro.workloads.suites import get_workload


class TestKernels:
    def test_twelve_kernels(self):
        assert len(ATTACK_KERNELS) == 12

    def test_lookup(self):
        assert get_kernel("kernel01").name == "kernel01"
        with pytest.raises(KeyError):
            get_kernel("kernel99")

    def test_four_targets_per_bank(self):
        for kernel in ATTACK_KERNELS[:3]:
            targets = kernel.pick_targets(65536, bank=0)
            assert len(targets) == TARGETS_PER_BANK
            assert len(set(targets.tolist())) == TARGETS_PER_BANK

    def test_targets_in_range(self):
        for bank in range(4):
            targets = ATTACK_KERNELS[0].pick_targets(4096, bank)
            assert targets.min() >= 0 and targets.max() < 4096

    def test_targets_differ_per_bank(self):
        t0 = ATTACK_KERNELS[0].pick_targets(65536, 0)
        t1 = ATTACK_KERNELS[0].pick_targets(65536, 1)
        assert set(t0.tolist()) != set(t1.tolist())

    def test_targets_deterministic(self):
        a = ATTACK_KERNELS[5].pick_targets(65536, 2)
        b = ATTACK_KERNELS[5].pick_targets(65536, 2)
        assert list(a) == list(b)

    def test_gaussian_placement_concentrates_near_center(self):
        kernel = ATTACK_KERNELS[0]
        n_rows = 65536
        all_targets = np.concatenate(
            [kernel.pick_targets(n_rows, b) for b in range(64)]
        )
        center = kernel.center_fraction * n_rows
        spread = kernel.spread_fraction * n_rows
        within = np.abs(all_targets - center) < 3 * spread
        assert within.mean() > 0.9


class TestMixes:
    def test_three_modes(self):
        assert set(ATTACK_MODES) == {"heavy", "medium", "light"}
        assert ATTACK_MODES["heavy"] == 0.75

    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError):
            attack_stream(ATTACK_KERNELS[0], "extreme", 1024, 100)

    def test_target_fraction_realised(self):
        kernel = ATTACK_KERNELS[1]
        n_rows, n_accesses = 65536, 40_000
        targets = set(kernel.pick_targets(n_rows, 0).tolist())
        for mode, fraction in ATTACK_MODES.items():
            rows = attack_stream(kernel, mode, n_rows, n_accesses, bank=0)
            on_target = sum(1 for r in rows.tolist() if r in targets)
            assert on_target / n_accesses == pytest.approx(fraction, abs=0.05)

    def test_stream_length(self):
        rows = attack_stream(ATTACK_KERNELS[2], "medium", 4096, 5000)
        assert len(rows) == 5000

    def test_custom_benign_workload(self):
        rows = attack_stream(
            ATTACK_KERNELS[3],
            "light",
            4096,
            5000,
            benign=get_workload("comm1"),
        )
        assert rows.min() >= 0 and rows.max() < 4096

    def test_deterministic_stream(self):
        a = attack_stream(ATTACK_KERNELS[4], "heavy", 4096, 2000, bank=1)
        b = attack_stream(ATTACK_KERNELS[4], "heavy", 4096, 2000, bank=1)
        assert np.array_equal(a, b)
