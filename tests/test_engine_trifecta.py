"""Three-engine differential suite: scalar vs batched vs jit.

The jit tier's contract is the same as the batched engine's — *bit
identical* results, whether the kernels run numba-compiled or through
the pure-python fallback — plus two tier-specific guarantees: the SoA
``to_arrays``/``from_arrays`` round-trip is lossless, and session
checkpoint/restore works on jit specs exactly as on batched ones.
Specs are sampled from a seeded generator (deterministic fuzz: wide
coverage, reproducible failures) across every registered scheme.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.registry import make_scheme, scheme_names
from repro.experiments import ExperimentSpec, SchemeSpec, run_plan
from repro.experiments.run import _fuse_key, run_spec
from repro.sim.simulator import TraceDrivenSimulator

ENGINES = ("scalar", "batched", "jit")

#: Per-scheme randomized parameter draws (see :func:`_sample_spec`).
FUZZ_DRAWS = 2

#: Scheme-parameter samplers for the fuzzed axis.  Only knobs that
#: change the hot-loop shape are varied; anything else is the default.
_PARAM_SAMPLERS = {
    "sca": lambda rng: {"n_counters": int(rng.choice([32, 128, 512]))},
    "prcat": lambda rng: {"n_counters": int(rng.choice([32, 64, 128]))},
    "drcat": lambda rng: {"max_levels": int(rng.choice([8, 11]))},
    "pra": lambda rng: {"probability": float(rng.choice([0.002, 0.01]))},
    "ccache": lambda rng: {},
}


def _sample_spec(scheme: str, rng: np.random.Generator) -> ExperimentSpec:
    """One randomized experiment for ``scheme`` (engine left default).

    Scales stay in the cheap regime (higher scale = fewer accesses) so
    the full fuzz matrix remains tier-1 friendly even when the jit
    engine runs its un-jitted fallback.
    """
    params = _PARAM_SAMPLERS.get(scheme, lambda _: {})(rng)
    return ExperimentSpec(
        scheme=SchemeSpec.create(scheme, **params),
        workload=str(rng.choice(["mum", "libq", "black"])),
        refresh_threshold=int(rng.choice([32768, 16384, 8192])),
        scale=float(rng.choice([48.0, 96.0])),
        n_banks=int(rng.choice([1, 2])),
        n_intervals=int(rng.choice([1, 2])),
    )


def _tree_fingerprint(memory) -> dict:
    """Engine-observable internals beyond the result document."""
    out = dict(memory.scheme_stats())
    for bank, scheme in enumerate(memory.schemes):
        tree = getattr(scheme, "tree", None)
        if tree is not None:
            out[f"bank{bank}_sram_reads"] = tree.total_sram_reads
            out[f"bank{bank}_partition"] = tuple(tree.partition())
            out[f"bank{bank}_counts"] = tuple(tree._count)
    return out


@pytest.mark.parametrize("scheme", scheme_names())
def test_trifecta_bit_identical(scheme):
    """Deterministic fuzz: all three engines agree on sampled specs."""
    rng = np.random.default_rng(abs(hash(scheme)) % (2**32))
    for draw in range(FUZZ_DRAWS):
        base = _sample_spec(scheme, rng)
        docs = {}
        prints = {}
        for engine in ENGINES:
            sim = TraceDrivenSimulator(
                dataclasses.replace(base, engine=engine)
            )
            docs[engine] = sim.run().to_dict()
            prints[engine] = _tree_fingerprint(sim._last_memory)
        context = f"{scheme} draw {draw}: {base}"
        assert docs["batched"] == docs["scalar"], context
        assert docs["jit"] == docs["scalar"], context
        assert prints["batched"] == prints["scalar"], context
        assert prints["jit"] == prints["scalar"], context


@pytest.mark.parametrize("scheme", scheme_names())
def test_access_batch_jit_matches_access_batch(scheme):
    """Kernel-level fuzz: one batch call, identical commands and state."""
    rng = np.random.default_rng(7)
    n_rows = 4096
    for threshold in (64, 256):
        ref = make_scheme(scheme, n_rows, threshold)
        jitted = make_scheme(scheme, n_rows, threshold)
        for _ in range(3):
            rows = rng.integers(0, n_rows, size=2500)
            # Skew the batch so some rows cross the threshold.
            rows[rng.random(len(rows)) < 0.5] = int(
                rng.integers(0, n_rows)
            )
            rows = np.asarray(rows, dtype=np.int64)
            ref_events = ref.access_batch(rows.copy())
            jit_events = jitted.access_batch_jit(rows.copy())
            assert jit_events == ref_events
            assert jitted.to_state() == ref.to_state()
            assert jitted.stats.snapshot() == ref.stats.snapshot()


@pytest.mark.parametrize("scheme", scheme_names())
def test_soa_round_trip_is_lossless(scheme):
    """to_arrays -> from_arrays reproduces the exact scheme state."""
    rng = np.random.default_rng(11)
    scheme_obj = make_scheme(scheme, 4096, 128)
    scheme_obj.access_batch(
        np.asarray(rng.integers(0, 4096, size=4000), dtype=np.int64)
    )
    before = scheme_obj.to_state()
    try:
        arrays = scheme_obj.to_arrays()
    except NotImplementedError:
        pytest.skip(f"{scheme} has no SoA form")
    scheme_obj.from_arrays(arrays)
    assert scheme_obj.to_state() == before
    # A second export must be independent of (not aliased to) live state.
    again = scheme_obj.to_arrays()
    for key, value in arrays.items():
        assert np.array_equal(again[key], value)


@pytest.mark.parametrize("mode", ("session", "checkpoint"))
@pytest.mark.parametrize("scheme", ("drcat", "ccache", "sca"))
def test_jit_session_modes_match_direct(scheme, mode, monkeypatch):
    """Streaming and checkpoint/restore round-trips on the jit tier."""
    spec = ExperimentSpec(
        scheme=SchemeSpec(scheme), workload="mum", engine="jit",
        scale=64.0, n_banks=2, n_intervals=3,
    )
    monkeypatch.setenv("REPRO_SESSION_MODE", "direct")
    direct = run_spec(spec)
    monkeypatch.setenv("REPRO_SESSION_MODE", mode)
    routed = run_spec(spec)
    assert routed.to_dict() == direct.to_dict()


def _scheme_axis_specs(engine: str) -> list:
    base = ExperimentSpec(
        scheme=SchemeSpec("drcat"), workload="libq", engine=engine,
        scale=48.0, n_banks=1, n_intervals=2,
    )
    schemes = [SchemeSpec("pra"), SchemeSpec.create("sca", n_counters=64),
               SchemeSpec("prcat"), SchemeSpec("drcat"),
               SchemeSpec("ccache")]
    return [
        dataclasses.replace(
            base, scheme=s, refresh_threshold=threshold
        )
        for s in schemes for threshold in (32768, 16384)
    ]


@pytest.mark.parametrize("engine", ("batched", "jit"))
def test_fused_plan_matches_per_cell(engine, monkeypatch):
    """Fused grouping is invisible in the results, serial and pooled."""
    specs = _scheme_axis_specs(engine)
    monkeypatch.setenv("REPRO_FUSED_SWEEP", "0")
    per_cell = run_plan(specs)
    monkeypatch.setenv("REPRO_FUSED_SWEEP", "1")
    fused = run_plan(specs)
    fused_pooled = run_plan(specs, workers=2)
    for a, b, c in zip(per_cell, fused, fused_pooled):
        assert a.to_dict() == b.to_dict() == c.to_dict()


def test_fusion_steps_aside_for_faults_and_modes(monkeypatch):
    """Fault injection and non-direct session modes bypass fusion."""
    spec = _scheme_axis_specs("batched")[0]
    assert _fuse_key(spec) is not None
    monkeypatch.setenv("REPRO_FAULTS", "cache.put:raise:1")
    assert _fuse_key(spec) is None
    monkeypatch.delenv("REPRO_FAULTS")
    monkeypatch.setenv("REPRO_SESSION_MODE", "checkpoint")
    assert _fuse_key(spec) is None
