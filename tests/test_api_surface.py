"""API-surface and edge-case tests.

Verifies the documented public API of every package `__init__` and a
set of boundary configurations (tiny trees, degenerate banks) that the
main suites do not reach.
"""

import numpy as np
import pytest

import repro
from repro.core import make_scheme
from repro.core.counter_tree import CounterTree
from repro.core.thresholds import SplitThresholds


class TestPublicAPI:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version_single_sourced(self):
        """repro.__version__ always agrees with the _version constant
        (which setup.py builds the distribution metadata from)."""
        from repro._version import __version__ as source

        assert repro.__version__ == source
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_subpackage_exports(self):
        import repro.analysis as analysis
        import repro.core as core
        import repro.cpu as cpu
        import repro.dram as dram
        import repro.energy as energy
        import repro.sim as sim
        import repro.workloads as workloads

        for module in (analysis, core, cpu, dram, energy, sim, workloads):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__} missing export {name}"
                )

    def test_make_scheme_all_kinds(self):
        for kind in ("sca", "pra", "prcat", "drcat", "ccache"):
            scheme = make_scheme(kind, 65536, 32768)
            assert scheme.name == kind

    def test_make_scheme_unknown(self):
        with pytest.raises(ValueError):
            make_scheme("unknown", 1024, 100)


class TestTinyTrees:
    def test_two_counter_tree(self):
        th = SplitThresholds.create(64, 2, 3)
        tree = CounterTree(16, th)
        assert tree.active_counters == 1
        for _ in range(200):
            tree.access(3)
        tree.check_invariants()
        assert tree.total_refresh_commands > 0

    def test_single_row_groups(self):
        """Max depth down to one row per group."""
        th = SplitThresholds.create(64, 8, 5)
        tree = CounterTree(16, th)
        for _ in range(500):
            tree.access(7)
        state = tree.counter_state(tree.lookup(7))
        assert state["high"] - state["low"] + 1 >= 1
        tree.check_invariants()

    def test_minimum_bank(self):
        th = SplitThresholds.create(16, 2, 2)
        tree = CounterTree(2, th)
        cmds = [tree.access(0) for _ in range(40)]
        assert any(c is not None for c in cmds)


class TestDegenerateSchemes:
    def test_sca_one_counter(self):
        scheme = make_scheme("sca", 1024, 16, n_counters=1)
        cmds = []
        for _ in range(16):
            cmds.extend(scheme.access(5))
        assert len(cmds) == 1
        assert cmds[0].row_count(1024) == 1024  # whole bank + clamp

    def test_sca_counter_per_row(self):
        scheme = make_scheme("sca", 64, 8, n_counters=64)
        cmds = []
        for _ in range(8):
            cmds.extend(scheme.access(30))
        (cmd,) = cmds
        assert (cmd.low, cmd.high) == (29, 31)

    def test_pra_probability_one_half(self):
        scheme = make_scheme("pra", 1024, 32768, probability=0.5)
        fired = sum(1 for _ in range(2000) if scheme.access(100))
        assert 700 < fired < 1300


class TestCrossSchemeConsistency:
    def test_equal_activation_accounting(self):
        """Every scheme counts the same activations on the same stream."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 1024, size=500)
        schemes = [
            make_scheme(kind, 1024, 256)
            for kind in ("sca", "pra", "prcat", "drcat", "ccache")
        ]
        for scheme in schemes:
            for row in rows:
                scheme.access(int(row))
        counts = {s.stats.activations for s in schemes}
        assert counts == {500}

    def test_deterministic_schemes_idempotent(self):
        rng = np.random.default_rng(1)
        rows = [int(r) for r in rng.integers(0, 1024, size=2000)]
        for kind in ("sca", "prcat", "drcat", "ccache"):
            a = make_scheme(kind, 1024, 128)
            b = make_scheme(kind, 1024, 128)
            rows_a = sum(
                cmd.row_count(1024) for r in rows for cmd in a.access(r)
            )
            rows_b = sum(
                cmd.row_count(1024) for r in rows for cmd in b.access(r)
            )
            assert rows_a == rows_b
