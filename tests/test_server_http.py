"""End-to-end service tests over a real socket: submit, poll, stream.

Covers the service-equivalence acceptance bar — results served over
HTTP are byte-identical to the direct ``run_spec``/``run_plan`` paths —
plus in-flight dedup, SSE delivery, and the error surface.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import ExperimentSpec, Plan, SchemeSpec, run_spec
from repro.server import ReproServer, ServerConfig, ServerThread

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


def get(base, path, timeout=30):
    with urllib.request.urlopen(base + path, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def post(base, path, doc, timeout=30):
    req = urllib.request.Request(
        base + path, data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def wait_done(base, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, doc = get(base, f"/v1/jobs/{job_id}")
        if doc["status"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture(scope="module")
def server():
    srv = ReproServer(ServerConfig(port=0, workers=1, driver_threads=2,
                                   max_body=64 * 1024))
    with ServerThread(srv) as base:
        yield srv, base


class TestHealth:
    def test_health_mirrors_the_verify_header(self, server):
        from repro._version import __version__

        _srv, base = server
        status, doc = get(base, "/v1/health")
        assert status == 200
        assert doc["service"] == "repro"
        assert doc["version"] == __version__
        assert doc["wire_version"] == 1
        # The same facts `repro verify` prints in its header line.
        assert set(doc["engines"]) == {"scalar", "batched", "jit"}
        assert "trace_store" in doc and "enabled" in doc["trace_store"]
        assert doc["result_cache"]["lock_backend"] in (
            "flock", "msvcrt", "lockdir")
        assert set(doc["jobs"]) == {"queued", "running", "done", "failed"}
        assert "faults" in doc


class TestRunSubmission:
    def test_submit_poll_results_equivalence(self, server):
        srv, base = server
        spec = fast_spec(seed=21)
        status, doc = post(base, "/v1/runs", {"spec": spec.to_dict()})
        assert status == 202
        assert doc["kind"] == "run" and doc["cells"] == 1
        assert doc["content_hash"] == spec.content_hash()
        final = wait_done(base, doc["job"])
        assert final["status"] == "done" and not final["cached"]
        # The acceptance bar: the served result is exactly run_spec's.
        assert final["result"] == run_spec(spec).to_dict()

    def test_resubmit_is_served_from_cache(self, server):
        srv, base = server
        spec = fast_spec(seed=22)
        _status, doc = post(base, "/v1/runs", {"spec": spec.to_dict()})
        wait_done(base, doc["job"])
        hits_before = srv.cache.hits
        status, doc2 = post(base, "/v1/runs", {"spec": spec.to_dict()})
        assert status == 200  # terminal immediately, not 202
        assert doc2["cached"] and doc2["status"] == "done"
        assert doc2["job"] != doc["job"]
        assert srv.cache.hits == hits_before + 1  # provably no rerun
        assert doc2["result"] == run_spec(spec).to_dict()

    def test_inflight_dedup_shares_one_job(self, server):
        srv, base = server
        # Saturate both driver threads so the target job stays queued
        # while the duplicate submission arrives — deterministic, no
        # timing window.
        blockers = [fast_spec(seed=31, n_intervals=4),
                    fast_spec(seed=32, n_intervals=4)]
        for blocker in blockers:
            post(base, "/v1/runs", {"spec": blocker.to_dict()})
        target = fast_spec(seed=33)
        _s1, first = post(base, "/v1/runs", {"spec": target.to_dict()})
        _s2, second = post(base, "/v1/runs", {"spec": target.to_dict()})
        assert second["job"] == first["job"]  # one simulation, two watchers
        assert second["attached"] == 1
        final = wait_done(base, first["job"])
        assert final["status"] == "done"
        assert final["result"] == run_spec(target).to_dict()

    def test_results_can_be_elided_from_status(self, server):
        _srv, base = server
        spec = fast_spec(seed=24)
        _status, doc = post(base, "/v1/runs", {"spec": spec.to_dict()})
        wait_done(base, doc["job"])
        _status, slim = get(base, f"/v1/jobs/{doc['job']}?results=0")
        assert slim["status"] == "done" and "result" not in slim

    def test_jobs_listing_contains_submissions(self, server):
        _srv, base = server
        spec = fast_spec(seed=25)
        _status, doc = post(base, "/v1/runs", {"spec": spec.to_dict()})
        wait_done(base, doc["job"])
        _status, listing = get(base, "/v1/jobs")
        assert doc["job"] in [j["job"] for j in listing["jobs"]]


class TestPlanSubmission:
    def test_plan_equivalence_and_report(self, server):
        from repro.experiments import run_plan

        srv, base = server
        plan = Plan.grid(fast_spec(seed=41), scale=[128.0, 64.0])
        status, doc = post(base, "/v1/plans", {"plan": plan.to_dict()})
        assert status == 202
        assert doc["kind"] == "plan" and doc["cells"] == 2
        assert doc["content_hash"] == plan.content_hash()
        final = wait_done(base, doc["job"])
        assert final["status"] == "done"
        assert [c["status"] for c in final["report"]["cells"]] == \
            ["ok", "ok"]
        direct = run_plan(plan)  # the plain list-returning form
        assert final["results"] == [r.to_dict() for r in direct]

    def test_whole_plan_cache_hit_is_terminal_immediately(self, server):
        _srv, base = server
        plan = Plan.grid(fast_spec(seed=42), seed=[43, 44])
        _status, doc = post(base, "/v1/plans", {"plan": plan.to_dict()})
        wait_done(base, doc["job"])
        status, doc2 = post(base, "/v1/plans", {"plan": plan.to_dict()})
        assert status == 200
        assert doc2["cached"] and doc2["status"] == "done"
        assert len(doc2["results"]) == 2


class TestEventStream:
    def test_sse_stream_orders_and_terminates(self, server):
        _srv, base = server
        spec = fast_spec(seed=51, n_intervals=3)
        _status, doc = post(base, "/v1/runs", {"spec": spec.to_dict()})
        frames = []
        with urllib.request.urlopen(
            base + f"/v1/jobs/{doc['job']}/events", timeout=60
        ) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/event-stream")
            body = resp.read().decode()  # server closes when job ends
        event = {}
        for line in body.splitlines():
            if not line:
                if event:
                    frames.append(event)
                event = {}
            elif line.startswith("event: "):
                event["name"] = line[7:]
            elif line.startswith("id: "):
                event["id"] = int(line[4:])
            elif line.startswith("data: "):
                event["data"] = json.loads(line[6:])
        names = [f["name"] for f in frames]
        assert "status" in names and "epoch" in names
        epochs = [f["data"]["epoch"] for f in frames
                  if f["name"] == "epoch"]
        assert epochs == sorted(epochs) and epochs[-1] == 3
        ids = [f["id"] for f in frames if "id" in f and f["id"] >= 0]
        assert ids == sorted(ids)  # monotonic delivery
        assert frames[-1]["name"] == "status"
        assert frames[-1]["data"]["status"] == "done"

    def test_stream_of_finished_job_replays_and_closes(self, server):
        _srv, base = server
        spec = fast_spec(seed=52)
        _status, doc = post(base, "/v1/runs", {"spec": spec.to_dict()})
        wait_done(base, doc["job"])
        with urllib.request.urlopen(
            base + f"/v1/jobs/{doc['job']}/events", timeout=30
        ) as resp:
            body = resp.read().decode()  # must not hang
        assert "event: status" in body


class TestErrorSurface:
    def test_unknown_job_is_404(self, server):
        _srv, base = server
        with pytest.raises(urllib.error.HTTPError) as err:
            get(base, "/v1/jobs/j99999-deadbeef")
        assert err.value.code == 404
        assert json.load(err.value)["error"]["code"] == "not-found"

    def test_unknown_path_is_404(self, server):
        _srv, base = server
        with pytest.raises(urllib.error.HTTPError) as err:
            get(base, "/v1/nope")
        assert err.value.code == 404

    def test_wrong_method_is_405(self, server):
        _srv, base = server
        with pytest.raises(urllib.error.HTTPError) as err:
            post(base, "/v1/health", {})
        assert err.value.code == 405

    def test_malformed_json_is_400(self, server):
        _srv, base = server
        req = urllib.request.Request(
            base + "/v1/runs", data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_invalid_spec_is_400_with_code(self, server):
        _srv, base = server
        with pytest.raises(urllib.error.HTTPError) as err:
            post(base, "/v1/runs", {"spec": {"scheme": {"kind": "nope"}}})
        assert err.value.code == 400
        assert json.load(err.value)["error"]["code"] == "invalid-spec"

    def test_oversized_body_is_413(self, server):
        _srv, base = server
        req = urllib.request.Request(
            base + "/v1/runs", data=b"x" * (64 * 1024 + 1),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 413

    def test_garbage_request_line_is_400(self, server):
        srv, base = server
        with socket.create_connection(
            ("127.0.0.1", srv.bound_port), timeout=30
        ) as sock:
            sock.sendall(b"NOT A REQUEST\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400 ")
