"""Tests for the counter-cache comparator of [26]."""

import numpy as np
import pytest

from repro.core.base import ActivationLedger
from repro.core.counter_cache import (
    COUNTER_MEMORY_ACCESS_NJ,
    CounterCacheScheme,
)


def make(n_rows=1024, t=32, n_sets=8, n_ways=2):
    return CounterCacheScheme(n_rows, t, n_sets=n_sets, n_ways=n_ways)


class TestConstruction:
    def test_capacity(self):
        # 8 sets x 8 ways of 32-counter lines = 2048 counters (32KB)
        assert make(n_sets=8, n_ways=8).capacity == 2048

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make(n_sets=0)
        with pytest.raises(ValueError):
            make(n_ways=0)

    def test_describe(self):
        assert "8x8 lines" in CounterCacheScheme(1024, 32).describe()


class TestCounting:
    def test_exact_per_row_counts(self):
        """Unlike SCA/CAT, the counter cache counts each row exactly."""
        scheme = make(t=10)
        cmds = []
        for _ in range(10):
            cmds.extend(scheme.access(500))
        assert len(cmds) == 2  # both neighbours, exactly at T

    def test_refreshes_neighbours_not_aggressor(self):
        scheme = make(t=5)
        cmds = []
        for _ in range(5):
            cmds.extend(scheme.access(500))
        assert {(c.low, c.high) for c in cmds} == {(499, 499), (501, 501)}

    def test_edge_rows(self):
        scheme = make(t=3)
        cmds = []
        for _ in range(3):
            cmds.extend(scheme.access(0))
        assert {(c.low, c.high) for c in cmds} == {(1, 1)}

    def test_counter_resets_after_refresh(self):
        scheme = make(t=4)
        for _ in range(4):
            scheme.access(10)
        # after reset, another T accesses are needed for the next refresh
        cmds = []
        for _ in range(4):
            cmds.extend(scheme.access(10))
        assert len(cmds) == 2


class TestCacheBehaviour:
    def test_hits_on_repeated_row(self):
        scheme = make()
        scheme.access(5)
        scheme.access(5)
        assert scheme.hits == 1
        assert scheme.misses == 1

    def test_line_spatial_locality(self):
        """Rows sharing a 32-counter line hit after one line fetch."""
        scheme = make()
        scheme.access(0)
        for row in range(1, 32):
            scheme.access(row)
        assert scheme.misses == 1
        assert scheme.hits == 31

    def test_counts_survive_eviction(self):
        """Evicted counters write back; the count is never lost."""
        scheme = make(t=4, n_sets=1, n_ways=1)
        scheme.access(5)            # line 0 cached, row 5 count=1
        scheme.access(40)           # line 1: evicts line 0 (writeback)
        scheme.access(80)           # line 2: evicts line 1
        assert scheme.writebacks == 2
        cmds = []
        for _ in range(3):
            cmds.extend(scheme.access(5))  # refetches count=1, reaches 4
        assert len(cmds) == 2

    def test_thrashing_increases_misses(self):
        small = make(n_sets=2, n_ways=1)
        big = make(n_sets=512, n_ways=8)
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 1024, size=3000)
        for row in rows:
            small.access(int(row))
            big.access(int(row))
        assert small.misses > big.misses
        assert small.hit_rate < big.hit_rate

    def test_miss_energy_accounting(self):
        scheme = make(n_sets=1, n_ways=1)
        scheme.access(0)
        scheme.access(1)
        expected = (scheme.misses + scheme.writebacks) * COUNTER_MEMORY_ACCESS_NJ
        assert scheme.miss_energy_nj() == expected


class TestSafety:
    def test_rowhammer_safety_under_thrashing(self):
        """Write-backs preserve exact counts, so detection stays sound
        even when the cache thrashes."""
        t = 16
        scheme = make(n_rows=256, t=t, n_sets=2, n_ways=1)
        ledger = ActivationLedger(256)
        rng = np.random.default_rng(1)
        for _ in range(3000):
            row = 7 if rng.random() < 0.4 else int(rng.integers(0, 256))
            ledger.activate(row)
            for cmd in scheme.access(row):
                c = cmd.clamped(256)
                ledger.refresh_range(c.low, c.high)
            # A victim-only refresh clears neighbour pressure; the ledger
            # clears a row only when the row and both neighbours were
            # refreshed, so pressure of the aggressor row itself persists
            # until its own neighbours' refresh event. The scheme's exact
            # counting still bounds it at T.
            assert all(v <= t for v in (scheme._memory_counters[r] for r in (7,)))

    def test_epoch_reset_clears_all(self):
        scheme = make(t=100)
        for _ in range(50):
            scheme.access(3)
        scheme.on_interval_boundary()
        assert scheme._memory_counters[3] == 0
        assert scheme.hit_rate == pytest.approx(49 / 50)
        cmds = []
        for _ in range(100):
            cmds.extend(scheme.access(3))
        assert len(cmds) == 2


class TestFactory:
    def test_make_scheme_ccache(self):
        from repro.core import make_scheme

        scheme = make_scheme("ccache", 65536, 32768)
        assert scheme.name == "ccache"
        assert scheme.capacity == 2048
