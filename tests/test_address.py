"""Tests for the address mapping (Table I policies)."""

import numpy as np
import pytest

from repro.dram.address import AddressMapper
from repro.dram.config import DUAL_CORE_2CH, DUAL_CORE_4CH, SystemConfig


class TestRoundTrip:
    def test_encode_decode_roundtrip(self):
        mapper = AddressMapper(DUAL_CORE_2CH)
        rng = np.random.default_rng(0)
        for _ in range(500):
            ch = int(rng.integers(0, 2))
            rk = 0
            bk = int(rng.integers(0, 8))
            row = int(rng.integers(0, 65536))
            col = int(rng.integers(0, 128))
            addr = mapper.encode(ch, rk, bk, row, col)
            decoded = mapper.decode(addr)
            assert (decoded.channel, decoded.rank, decoded.bank) == (ch, rk, bk)
            assert (decoded.row, decoded.column) == (row, col)

    def test_decode_encode_roundtrip(self):
        mapper = AddressMapper(DUAL_CORE_2CH)
        rng = np.random.default_rng(1)
        for _ in range(500):
            addr = int(rng.integers(0, 1 << mapper.address_bits)) & ~0x3F
            d = mapper.decode(addr)
            assert mapper.encode(d.channel, d.rank, d.bank, d.row, d.column) == addr


class TestFieldLayout:
    def test_offset_bits_are_cache_line(self):
        mapper = AddressMapper(DUAL_CORE_2CH)
        d0 = mapper.decode(0)
        d63 = mapper.decode(63)
        assert d0 == d63  # same cache line -> same coordinates

    def test_consecutive_lines_interleave_channels(self):
        """col bits sit above offset, channel above col: consecutive
        cache lines share a channel until the column wraps."""
        mapper = AddressMapper(DUAL_CORE_2CH)
        base = mapper.encode(0, 0, 0, 0, 0)
        next_line = mapper.decode(base + 64)
        assert next_line.column == 1
        assert next_line.channel == 0

    def test_column_wrap_changes_channel(self):
        mapper = AddressMapper(DUAL_CORE_2CH)
        last_col = mapper.encode(0, 0, 0, 0, 127)
        nxt = mapper.decode(last_col + 64)
        assert nxt.channel == 1
        assert nxt.column == 0

    def test_address_bits(self):
        mapper = AddressMapper(DUAL_CORE_2CH)
        # offset 6 + col 7 + ch 1 + bk 3 + rk 0 + row 16 = 33 bits = 8 GiB
        assert mapper.address_bits == 33


class TestFourChannel:
    def test_more_channel_and_rank_bits(self):
        mapper2 = AddressMapper(DUAL_CORE_2CH)
        mapper4 = AddressMapper(DUAL_CORE_4CH)
        # one extra channel bit + one extra rank bit
        assert mapper4.address_bits == mapper2.address_bits + 2

    def test_four_channel_flat_banks(self):
        config = DUAL_CORE_4CH
        mapper = AddressMapper(config)
        seen = set()
        for ch in range(4):
            for rk in range(2):
                for bk in range(8):
                    addr = mapper.encode(ch, rk, bk, 5, 0)
                    seen.add(mapper.decode(addr).flat_bank(config))
        assert seen == set(range(64))


class TestValidation:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            AddressMapper(DUAL_CORE_2CH).decode(-1)

    def test_rejects_out_of_range_fields(self):
        mapper = AddressMapper(DUAL_CORE_2CH)
        with pytest.raises(ValueError):
            mapper.encode(2, 0, 0, 0)   # only 2 channels
        with pytest.raises(ValueError):
            mapper.encode(0, 0, 8, 0)   # only 8 banks
        with pytest.raises(ValueError):
            mapper.encode(0, 0, 0, 65536)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(rows_per_bank=1000)
        with pytest.raises(ValueError):
            SystemConfig(n_channels=3)
