"""Advisory-lock tests and the multi-process cache publish stress.

The contract under test: concurrent writers — threads or whole
processes — hammering one result store always leave it with complete,
readable entries (one winner per entry, no torn JSON, no leaked temp
files), because every publish is ``mkstemp`` → ``os.replace`` under a
per-store advisory lock.
"""

import concurrent.futures
import json
import os
import threading
import time

import pytest

from repro.experiments import ExperimentSpec, ResultCache, SchemeSpec
from repro.experiments.run import run_spec
from repro.locking import (
    LOCK_SUFFIX,
    STALE_ENV_VAR,
    LockTimeout,
    advisory_lock,
    lock_backend,
    lock_stats,
    reset_lock_stats,
    stale_lock_s,
)

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


BACKENDS = ["lockdir"]
if lock_backend() == "flock":
    BACKENDS.append("flock")


@pytest.mark.parametrize("backend", BACKENDS)
class TestAdvisoryLock:
    def test_acquire_release_cycle(self, tmp_path, backend):
        target = tmp_path / "store"
        with advisory_lock(target, backend=backend):
            pass
        with advisory_lock(target, backend=backend):  # re-acquirable
            pass

    def test_lock_artifact_lives_beside_target(self, tmp_path, backend):
        target = tmp_path / "store"
        with advisory_lock(target, backend=backend):
            assert (tmp_path / ("store" + LOCK_SUFFIX)).exists()

    def test_mutual_exclusion_across_threads(self, tmp_path, backend):
        target = tmp_path / "store"
        active = []
        overlaps = []

        def worker():
            for _ in range(20):
                with advisory_lock(target, backend=backend):
                    active.append(1)
                    if len(active) > 1:
                        overlaps.append(True)
                    time.sleep(0.0005)
                    active.pop()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlaps

    def test_contended_lock_times_out(self, tmp_path, backend):
        target = tmp_path / "store"
        release = threading.Event()
        held = threading.Event()

        def holder():
            with advisory_lock(target, backend=backend):
                held.set()
                release.wait(10)

        t = threading.Thread(target=holder)
        t.start()
        try:
            assert held.wait(5)
            if backend == "flock":
                # flock is per-open-file, so contend from a second
                # process instead of a thread (same-process fds on one
                # inode do conflict, but keep the test honest).
                start = time.monotonic()
                with pytest.raises(LockTimeout):
                    _flock_in_subprocess(target, timeout=0.3)
                assert time.monotonic() - start < 5
            else:
                with pytest.raises(LockTimeout):
                    with advisory_lock(target, timeout=0.3,
                                       backend=backend):
                        pass
        finally:
            release.set()
            t.join()


def _flock_in_subprocess(target, timeout):
    import subprocess
    import sys

    code = (
        "import sys\n"
        "from repro.locking import advisory_lock, LockTimeout\n"
        "try:\n"
        f"    with advisory_lock({str(target)!r}, timeout={timeout},"
        " backend='flock'):\n"
        "        pass\n"
        "except LockTimeout:\n"
        "    sys.exit(42)\n"
    )
    proc = subprocess.run([sys.executable, "-c", code],
                          env={**os.environ,
                               "PYTHONPATH": _pythonpath()},
                          timeout=30)
    if proc.returncode == 42:
        raise LockTimeout("contended in subprocess")


def _pythonpath():
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


class TestLockdirStaleBreaking:
    def test_stale_lockdir_is_broken(self, tmp_path, monkeypatch):
        import repro.locking as locking

        target = tmp_path / "store"
        stale = tmp_path / ("store" + LOCK_SUFFIX)
        os.mkdir(stale)  # abandoned by a "killed" writer
        monkeypatch.setattr(locking, "STALE_LOCK_S", 0.05)
        time.sleep(0.1)
        with advisory_lock(target, timeout=5, backend="lockdir"):
            pass  # acquired despite the pre-existing dir

    def test_fresh_lockdir_is_respected(self, tmp_path):
        target = tmp_path / "store"
        os.mkdir(tmp_path / ("store" + LOCK_SUFFIX))
        with pytest.raises(LockTimeout):
            with advisory_lock(target, timeout=0.2, backend="lockdir"):
                pass


class TestStaleAgeConfig:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(STALE_ENV_VAR, raising=False)
        assert stale_lock_s() == 60.0

    def test_env_override_is_honored(self, monkeypatch):
        monkeypatch.setenv(STALE_ENV_VAR, "2.5")
        assert stale_lock_s() == 2.5

    def test_env_override_breaks_locks_at_configured_age(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "store"
        os.mkdir(tmp_path / ("store" + LOCK_SUFFIX))
        monkeypatch.setenv(STALE_ENV_VAR, "0.05")
        time.sleep(0.1)
        with advisory_lock(target, timeout=5, backend="lockdir"):
            pass  # the abandoned dir aged out under the override

    @pytest.mark.parametrize("raw", ["soon", "", " ", "0", "-3", "nan"])
    def test_malformed_or_nonpositive_values_fail_loudly(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv(STALE_ENV_VAR, raw)
        if not raw.strip():  # empty counts as unset, not malformed
            assert stale_lock_s() == 60.0
            return
        with pytest.raises(ValueError, match="REPRO_LOCK_STALE_S"):
            stale_lock_s()


class TestLockStats:
    @pytest.fixture(autouse=True)
    def _fresh_counters(self):
        reset_lock_stats()
        yield
        reset_lock_stats()

    def test_acquires_are_counted(self, tmp_path):
        with advisory_lock(tmp_path / "store", backend="lockdir"):
            pass
        stats = lock_stats()
        assert stats["acquires"] == 1
        assert stats["contended"] == 0
        assert stats["timeouts"] == 0

    def test_timeouts_and_contention_are_counted(self, tmp_path):
        target = tmp_path / "store"
        os.mkdir(tmp_path / ("store" + LOCK_SUFFIX))  # held elsewhere
        with pytest.raises(LockTimeout):
            with advisory_lock(target, timeout=0.2, backend="lockdir"):
                pass
        stats = lock_stats()
        assert stats["timeouts"] == 1
        assert stats["contended"] == 1

    def test_stale_breaks_are_counted(self, tmp_path, monkeypatch):
        target = tmp_path / "store"
        os.mkdir(tmp_path / ("store" + LOCK_SUFFIX))
        monkeypatch.setenv(STALE_ENV_VAR, "0.05")
        time.sleep(0.1)
        with advisory_lock(target, timeout=5, backend="lockdir"):
            pass
        assert lock_stats()["stale_broken"] == 1

    def test_reset_zeroes_every_counter(self, tmp_path):
        with advisory_lock(tmp_path / "store", backend="lockdir"):
            pass
        reset_lock_stats()
        assert lock_stats() == {
            "acquires": 0, "contended": 0, "timeouts": 0,
            "stale_broken": 0,
        }


# -- multi-process publish stress -------------------------------------------

def _hammer(cache_root: str, writer: int, rounds: int) -> int:
    """One stress process: publish the shared and a private entry."""
    cache = ResultCache(cache_root)
    result = run_spec(fast_spec())
    shared = fast_spec(seed=777)
    private = fast_spec(seed=1000 + writer)
    for _ in range(rounds):
        cache.put(shared, result)
        cache.put(private, result)
    return writer


class TestMultiProcessStress:
    def test_eight_writers_one_store(self, tmp_path):
        """8 processes × 12 publishes each into one store: every entry
        must come out complete and readable, with no temp residue."""
        rounds = 12
        with concurrent.futures.ProcessPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(_hammer, str(tmp_path), w, rounds)
                       for w in range(8)]
            done = [f.result(timeout=300) for f in futures]
        assert sorted(done) == list(range(8))

        cache = ResultCache(tmp_path)
        # The contended entry parses and round-trips through get().
        assert cache.get(fast_spec(seed=777)) is not None
        # Every private entry landed too.
        for writer in range(8):
            assert cache.get(fast_spec(seed=1000 + writer)) is not None
        assert cache.hits == 9 and cache.misses == 0
        # Raw files are all complete JSON documents...
        entries = list(cache.root.glob("*.json"))
        assert len(entries) == 9
        for path in entries:
            json.loads(path.read_text(encoding="utf-8"))
        # ...and no mkstemp temp file survived.
        assert not list(cache.root.glob("*.tmp"))
