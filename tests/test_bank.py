"""Tests for the bank timing model (refresh backlog + stall accounting)."""

import pytest

from repro.dram.bank import BACKLOG_ESCALATION_ROWS, BankState
from repro.dram.config import DRAMTimings


def make_bank():
    return BankState(DRAMTimings())


class TestDemandService:
    def test_access_occupies_one_row_cycle(self):
        bank = make_bank()
        done = bank.serve_access(100.0)
        assert done == pytest.approx(100.0 + bank.timings.t_rc)
        assert bank.activations == 1

    def test_back_to_back_accesses_queue(self):
        bank = make_bank()
        bank.serve_access(0.0)
        done = bank.serve_access(1.0)  # arrives while busy
        assert done == pytest.approx(2 * bank.timings.t_rc)

    def test_idle_gap_means_no_queueing(self):
        bank = make_bank()
        bank.serve_access(0.0)
        done = bank.serve_access(1000.0)
        assert done == pytest.approx(1000.0 + bank.timings.t_rc)


class TestRefreshBacklog:
    def test_refresh_enqueues_without_blocking(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 100)
        assert bank.refresh_backlog_rows == 100
        assert bank.rows_refreshed == 100
        assert bank.free_at_ns == 0.0  # demand horizon untouched

    def test_backlog_drains_in_idle_gap(self):
        bank = make_bank()
        t_op = bank.timings.row_refresh_ns
        bank.serve_refresh(0.0, 10)
        # demand arrives long after the backlog would fully drain
        done = bank.serve_access(100 * t_op)
        assert bank.refresh_backlog_rows == 0
        assert bank.stall_ns == 0.0
        assert done == pytest.approx(100 * t_op + bank.timings.t_rc)
        assert bank.mitigation_busy_ns == pytest.approx(10 * t_op)

    def test_demand_mid_rowop_waits_residual(self):
        bank = make_bank()
        t_op = bank.timings.row_refresh_ns
        bank.serve_refresh(0.0, 1000)
        # demand arrives in the middle of the 4th row-op
        arrival = 3.5 * t_op
        done = bank.serve_access(arrival)
        assert bank.stall_ns == pytest.approx(0.5 * t_op)
        assert done == pytest.approx(4 * t_op + bank.timings.t_rc)
        assert bank.refresh_backlog_rows == 1000 - 4

    def test_stall_bounded_by_one_rowop(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 10_000)
        bank.serve_access(10.0)
        assert bank.stall_ns <= bank.timings.row_refresh_ns

    def test_multiple_refresh_commands_accumulate(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 50)
        bank.serve_refresh(0.0, 70)
        assert bank.refresh_backlog_rows == 120

    def test_zero_rows_is_noop(self):
        bank = make_bank()
        horizon = bank.serve_refresh(5.0, 0)
        assert horizon == 0.0
        assert bank.refresh_backlog_rows == 0


class TestEscalation:
    def test_escalates_above_cap(self):
        bank = make_bank()
        bank.serve_refresh(0.0, BACKLOG_ESCALATION_ROWS + 5)
        assert bank.escalations == 1
        assert bank.refresh_backlog_rows == 0
        assert bank.free_at_ns > 0

    def test_no_escalation_below_cap(self):
        bank = make_bank()
        bank.serve_refresh(0.0, BACKLOG_ESCALATION_ROWS)
        assert bank.escalations == 0


class TestEpochReset:
    def test_blanket_refresh_absorbs_backlog(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 500)
        bank.reset_epoch()
        assert bank.refresh_backlog_rows == 0
        # energy accounting unchanged: rows were commanded
        assert bank.rows_refreshed == 500
