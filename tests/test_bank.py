"""Tests for the bank timing model (refresh backlog + stall accounting)."""

import pytest

from repro.dram.bank import BACKLOG_ESCALATION_ROWS, BankState
from repro.dram.config import DRAMTimings


def make_bank():
    return BankState(DRAMTimings())


class TestDemandService:
    def test_access_occupies_one_row_cycle(self):
        bank = make_bank()
        done = bank.serve_access(100.0)
        assert done == pytest.approx(100.0 + bank.timings.t_rc)
        assert bank.activations == 1

    def test_back_to_back_accesses_queue(self):
        bank = make_bank()
        bank.serve_access(0.0)
        done = bank.serve_access(1.0)  # arrives while busy
        assert done == pytest.approx(2 * bank.timings.t_rc)

    def test_idle_gap_means_no_queueing(self):
        bank = make_bank()
        bank.serve_access(0.0)
        done = bank.serve_access(1000.0)
        assert done == pytest.approx(1000.0 + bank.timings.t_rc)


class TestRefreshBacklog:
    def test_refresh_enqueues_without_blocking(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 100)
        assert bank.refresh_backlog_rows == 100
        assert bank.rows_refreshed == 100
        assert bank.free_at_ns == 0.0  # demand horizon untouched

    def test_backlog_drains_in_idle_gap(self):
        bank = make_bank()
        t_op = bank.timings.row_refresh_ns
        bank.serve_refresh(0.0, 10)
        # demand arrives long after the backlog would fully drain
        done = bank.serve_access(100 * t_op)
        assert bank.refresh_backlog_rows == 0
        assert bank.stall_ns == 0.0
        assert done == pytest.approx(100 * t_op + bank.timings.t_rc)
        assert bank.mitigation_busy_ns == pytest.approx(10 * t_op)

    def test_demand_mid_rowop_waits_residual(self):
        bank = make_bank()
        t_op = bank.timings.row_refresh_ns
        bank.serve_refresh(0.0, 1000)
        # demand arrives in the middle of the 4th row-op
        arrival = 3.5 * t_op
        done = bank.serve_access(arrival)
        assert bank.stall_ns == pytest.approx(0.5 * t_op)
        assert done == pytest.approx(4 * t_op + bank.timings.t_rc)
        assert bank.refresh_backlog_rows == 1000 - 4

    def test_stall_bounded_by_one_rowop(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 10_000)
        bank.serve_access(10.0)
        assert bank.stall_ns <= bank.timings.row_refresh_ns

    def test_multiple_refresh_commands_accumulate(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 50)
        bank.serve_refresh(0.0, 70)
        assert bank.refresh_backlog_rows == 120

    def test_zero_rows_is_noop(self):
        bank = make_bank()
        horizon = bank.serve_refresh(5.0, 0)
        assert horizon == 0.0
        assert bank.refresh_backlog_rows == 0


class TestEscalation:
    def test_escalates_above_cap(self):
        bank = make_bank()
        bank.serve_refresh(0.0, BACKLOG_ESCALATION_ROWS + 5)
        assert bank.escalations == 1
        assert bank.refresh_backlog_rows == 0
        assert bank.free_at_ns > 0

    def test_no_escalation_below_cap(self):
        bank = make_bank()
        bank.serve_refresh(0.0, BACKLOG_ESCALATION_ROWS)
        assert bank.escalations == 0


class TestEpochReset:
    def test_blanket_refresh_absorbs_backlog(self):
        bank = make_bank()
        bank.serve_refresh(0.0, 500)
        bank.reset_epoch()
        assert bank.refresh_backlog_rows == 0
        # energy accounting unchanged: rows were commanded
        assert bank.rows_refreshed == 500


class TestBatchDrainEquivalence:
    """serve_accesses_batch == per-access serve_access, bit-for-bit.

    The drain phase mixes three regimes — scalar idle/burst steps and
    the vectorized closed-form idle-run fast path — and every mix must
    reproduce the scalar oracle exactly.
    """

    def _assert_equivalent(self, arrivals, backlog, f0):
        import numpy as np

        oracle, batched = make_bank(), make_bank()
        for bank in (oracle, batched):
            bank.refresh_backlog_rows = backlog
            bank.free_at_ns = f0
        for arrival in arrivals.tolist():
            oracle.serve_access(arrival)
        batched.serve_accesses_batch(np.asarray(arrivals))
        assert oracle.to_state() == batched.to_state()

    @pytest.mark.parametrize("seed", range(8))
    def test_burst_dominated_streams(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(200, 2500))
        gaps = rng.integers(1, 400, size=n)
        arrivals = np.floor(np.cumsum(gaps).astype(np.float64)) * 0.25
        self._assert_equivalent(
            arrivals, int(rng.integers(1, 5000)),
            float(rng.integers(0, 4000)) * 0.25,
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_idle_dominated_streams(self, seed):
        import numpy as np

        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(200, 4000))
        gaps = rng.integers(300, 4000, size=n)
        bursts = rng.random(n) < 0.03
        gaps[bursts] = rng.integers(1, 40, size=int(bursts.sum()))
        mega = rng.random(n) < 0.002
        gaps[mega] = rng.integers(10**6, 10**8, size=int(mega.sum()))
        arrivals = np.cumsum(gaps).astype(np.float64) * 0.25
        self._assert_equivalent(
            arrivals, int(rng.integers(500, 200_000)),
            float(rng.integers(0, 4000)) * 0.25,
        )

    def test_exact_backlog_exhaustion_mid_run(self):
        import numpy as np

        # Gaps drain exactly 3 row-ops per access: with backlog = 3k the
        # run ends by exhaustion, not by a burst or full drain.
        t_op = DRAMTimings().row_refresh_ns
        arrivals = np.cumsum(
            np.full(200, np.floor(3.2 * t_op * 4.0) * 0.25)
        )
        self._assert_equivalent(arrivals, 3 * 120, 0.0)

    def test_off_grid_timings_fall_back_to_scalar(self):
        import numpy as np

        timings = DRAMTimings(t_rc=48.33)  # not a quarter-ns multiple
        oracle = BankState(timings)
        batched = BankState(timings)
        for bank in (oracle, batched):
            bank.refresh_backlog_rows = 4000
        arrivals = np.cumsum(np.full(300, 400.0))
        for arrival in arrivals.tolist():
            oracle.serve_access(arrival)
        batched.serve_accesses_batch(arrivals)
        assert oracle.to_state() == batched.to_state()
