"""Tests for DRCAT weight tracking and merge/split reconfiguration."""

import numpy as np
from repro.core.counter_tree import (
    HARVEST_BUDGET_PER_REFRESH,
    WEIGHT_AFTER_SPLIT,
    WEIGHT_MAX,
    CounterTree,
)
from repro.core.thresholds import SplitThresholds


def make_tree(n_rows=4096, t=256, m=16, l=10):
    th = SplitThresholds.create(t, m, l)
    return CounterTree(n_rows, th, track_weights=True)


def hammer(tree, row, n):
    cmds = []
    for _ in range(n):
        cmd = tree.access(row)
        if cmd is not None:
            cmds.append(cmd)
    return cmds


class TestWeights:
    def test_weight_increments_on_refresh(self):
        tree = make_tree()
        cmds = hammer(tree, 9, 400)
        assert cmds, "expected refreshes"
        idx = tree.lookup(9)
        assert tree.counter_state(idx)["weight"] >= 1

    def test_weight_saturates_at_cap(self):
        tree = make_tree()
        hammer(tree, 9, 5000)
        idx = tree.lookup(9)
        assert tree.counter_state(idx)["weight"] <= WEIGHT_MAX

    def test_other_weights_decay(self):
        tree = make_tree(n_rows=4096, t=128, m=8, l=9)
        hammer(tree, 9, 2000)       # heats region A
        w_a = tree.counter_state(tree.lookup(9))["weight"]
        assert w_a > 0
        hammer(tree, 3000, 2000)    # heats region B; A should decay
        w_a_after = tree.counter_state(tree.lookup(9))["weight"]
        assert w_a_after < max(w_a, WEIGHT_MAX)

    def test_weights_disabled_without_tracking(self):
        th = SplitThresholds.create(256, 16, 10)
        tree = CounterTree(4096, th, track_weights=False)
        hammer(tree, 9, 2000)
        assert all(tree.counter_state(i)["weight"] == 0 for i in range(16))


class TestReconfigure:
    def test_reconfigure_preserves_invariants(self):
        tree = make_tree()
        rng = np.random.default_rng(0)
        for i in range(50000):
            row = 11 if rng.random() < 0.6 else int(rng.integers(0, 4096))
            tree.access(row)
        assert tree.total_merges > 0
        tree.check_invariants()

    def test_reconfigure_returns_false_for_max_level_leaf(self):
        tree = make_tree()
        hammer(tree, 11, 30000)
        idx = tree.lookup(11)
        if tree.counter_state(idx)["level"] >= tree.max_levels - 1:
            assert tree.reconfigure(idx) is False

    def test_reconfigure_returns_false_for_inactive_counter(self):
        tree = make_tree()
        inactive = [
            i
            for i in range(tree.n_counters)
            if not tree.counter_state(i)["active"]
        ]
        assert tree.reconfigure(inactive[0]) is False

    def test_merge_promotes_and_frees(self):
        tree = make_tree(n_rows=1024, t=64, m=8, l=9)
        rng = np.random.default_rng(1)
        # exhaust the pool with spread accesses, then hammer one row
        for row in rng.integers(0, 1024, size=3000):
            tree.access(int(row))
        active_before = tree.active_counters
        merges_before = tree.total_merges
        hammer(tree, 77, 3000)
        if tree.total_merges > merges_before:
            # merge+split conserve the active count
            assert tree.active_counters == active_before
        tree.check_invariants()

    def test_newly_split_counters_get_protection_weight(self):
        tree = make_tree(n_rows=1024, t=64, m=8, l=9)
        rng = np.random.default_rng(2)
        for row in rng.integers(0, 1024, size=3000):
            tree.access(int(row))
        ok = tree.reconfigure(tree.lookup(500))
        if ok:
            assert tree.counter_state(tree.lookup(500))["weight"] >= WEIGHT_AFTER_SPLIT

    def test_merged_count_is_max_of_children(self):
        """Merging inherits the max count (soundness: DESIGN.md inv. 5)."""
        tree = make_tree(n_rows=1024, t=512, m=8, l=9)
        rng = np.random.default_rng(3)
        for row in rng.integers(0, 1024, size=2000):
            tree.access(int(row))
        # Find a sibling pair and force a merge via reconfigure of another
        parts = tree.partition()
        counts_before = {idx: tree.counter_state(idx)["count"] for _, _, idx in parts}
        merges_before = tree.total_merges
        hot = parts[0][2]
        if tree.reconfigure(hot):
            assert tree.total_merges == merges_before + 1
            # every surviving counter's count must be >= the max of any
            # pair of old counts it could have absorbed -- verified
            # indirectly by the safety property tests; here check bounds
            for _, _, idx in tree.partition():
                assert tree.counter_state(idx)["count"] <= tree.thresholds.refresh_threshold


class TestHarvest:
    def test_budget_replenishes_on_refresh(self):
        tree = make_tree(n_rows=1024, t=64, m=8, l=9)
        tree._harvest_budget = 0
        hammer(tree, 10, 100)  # forces a refresh eventually
        assert tree._harvest_budget == HARVEST_BUDGET_PER_REFRESH

    def test_harvest_blocked_flags_clear_on_refresh(self):
        tree = make_tree(n_rows=1024, t=64, m=8, l=9)
        for _ in range(200):
            for i in range(tree.n_counters):
                tree._harvest_blocked[i] = True
            if tree.access(10) is not None:
                # a refresh event must unblock harvesting immediately
                assert not any(tree._harvest_blocked)
                break
        else:
            raise AssertionError("no refresh fired in 200 accesses")

    def test_harvest_deepens_hot_region_after_exhaustion(self):
        tree = make_tree(n_rows=4096, t=256, m=8, l=12)
        rng = np.random.default_rng(4)
        for row in rng.integers(0, 4096, size=6000):
            tree.access(int(row))
        assert tree.free_counters == 0
        level_before = tree.counter_state(tree.lookup(123))["level"]
        hammer(tree, 123, 4000)
        level_after = tree.counter_state(tree.lookup(123))["level"]
        assert level_after > level_before
        tree.check_invariants()

    def test_no_harvest_without_weight_tracking(self):
        th = SplitThresholds.create(256, 8, 12)
        tree = CounterTree(4096, th, track_weights=False)
        rng = np.random.default_rng(4)
        for row in rng.integers(0, 4096, size=6000):
            tree.access(int(row))
        assert tree.free_counters == 0
        merges_before = tree.total_merges
        hammer(tree, 123, 4000)
        assert tree.total_merges == merges_before == 0


class TestDriftAdaptation:
    def test_tree_follows_moving_hot_spot(self):
        tree = make_tree(n_rows=4096, t=128, m=16, l=12)
        rng = np.random.default_rng(7)
        for hot in (100, 2100, 3900):
            for _ in range(20000):
                row = hot if rng.random() < 0.7 else int(rng.integers(0, 4096))
                tree.access(row)
            state = tree.counter_state(tree.lookup(hot))
            size = state["high"] - state["low"] + 1
            assert size <= 4096 // 16, f"hot spot {hot} left coarse: {size} rows"
        tree.check_invariants()

    def test_multiple_simultaneous_hot_spots(self):
        tree = make_tree(n_rows=4096, t=128, m=16, l=12)
        rng = np.random.default_rng(8)
        hots = (50, 1500, 3000)
        for _ in range(60000):
            r = rng.random()
            if r < 0.6:
                row = hots[int(rng.integers(0, 3))]
            else:
                row = int(rng.integers(0, 4096))
            tree.access(row)
        for hot in hots:
            state = tree.counter_state(tree.lookup(hot))
            assert state["high"] - state["low"] + 1 <= 4096 // 8
