"""Scheme-registry tests: validation, and registry-wide safety.

The safety test is the important one: it asserts, for *every* entry in
the scheme registry, that a random access stream can never accumulate
``T`` unrefreshed activations on any row (the ActivationLedger
invariant, DESIGN.md invariant 2).  Because it parametrizes over
``scheme_names()``, a future scheme registered with ``register_scheme``
is covered automatically — its author only supplies
``safety_overrides`` if the default small-threshold configuration does
not suit it (as PRA's probabilistic guarantee requires).
"""

import numpy as np
import pytest

from repro.core import (
    ActivationLedger,
    CatParams,
    DrcatParams,
    PraParams,
    ScaParams,
    build_params,
    get_scheme_info,
    make_scheme,
    scheme_names,
)

N_ROWS = 256
SAFETY_T = 64


class TestRegistryLookup:
    def test_all_paper_schemes_registered(self):
        assert set(scheme_names()) >= {"sca", "pra", "prcat", "drcat",
                                       "ccache"}

    def test_unknown_scheme_lists_registered(self):
        with pytest.raises(ValueError, match="registered schemes"):
            get_scheme_info("magic")

    def test_case_insensitive(self):
        assert get_scheme_info("DRCAT").name == "drcat"


class TestBuildParams:
    def test_defaults(self):
        assert build_params("sca") == ScaParams(n_counters=64)
        assert build_params("pra") == PraParams(probability=0.002)

    def test_explicit(self):
        params = build_params("drcat", n_counters=128, max_levels=9)
        assert isinstance(params, CatParams)
        assert (params.n_counters, params.max_levels) == (128, 9)

    def test_unknown_param_rejected_with_field_list(self):
        with pytest.raises(TypeError, match="valid parameters"):
            build_params("sca", probability_of_rain=0.5)

    def test_legacy_cross_scheme_kwargs_ignored(self):
        # The historical make_scheme accepted the full kwarg soup for
        # every scheme; irrelevant legacy names are dropped, not errors.
        assert build_params("sca", probability=0.5) == ScaParams()
        assert build_params("pra", n_counters=128) == PraParams()


class TestMakeScheme:
    def test_params_object_path(self):
        scheme = make_scheme("drcat", N_ROWS, 1024,
                             params=DrcatParams(n_counters=8, max_levels=6))
        assert scheme.n_counters == 8

    def test_params_type_checked(self):
        with pytest.raises(TypeError, match="expects"):
            make_scheme("drcat", N_ROWS, 1024, params=ScaParams())

    def test_params_and_kwargs_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            make_scheme("sca", N_ROWS, 1024, params=ScaParams(),
                        n_counters=8)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="takes no parameter"):
            make_scheme("drcat", N_ROWS, 1024, n_widgets=3)

    def test_prng_only_for_pra(self):
        with pytest.raises(TypeError, match="takes no prng"):
            make_scheme("sca", N_ROWS, 1024, prng=object())


def _safety_scheme(kind: str):
    """Build ``kind`` at the safety-test threshold, honouring the
    registry's declared overrides."""
    info = get_scheme_info(kind)
    params = dict(info.safety_overrides.get("params", {}))
    return make_scheme(kind, N_ROWS, SAFETY_T, **params)


@pytest.mark.parametrize("kind", scheme_names())
class TestRegistryWideSafety:
    """max_pressure() < T for every registered scheme, random streams."""

    def _drive(self, scheme, rows):
        ledger = ActivationLedger(scheme.n_rows)
        for row in rows:
            ledger.activate(row)
            ledger.apply_refreshes(scheme.access(row))
            assert ledger.max_pressure() < SAFETY_T, (
                f"{scheme.name}: row pressure {ledger.max_pressure()} "
                f"reached T={SAFETY_T}"
            )

    def test_random_stream_safe(self, kind):
        rng = np.random.default_rng(12345)
        rows = [int(r) for r in rng.integers(0, N_ROWS, size=1500)]
        self._drive(_safety_scheme(kind), rows)

    def test_hammered_stream_safe(self, kind):
        rng = np.random.default_rng(999)
        targets = [int(r) for r in rng.integers(0, N_ROWS, size=3)]
        rows = []
        for t in targets:
            rows.extend([t] * 300)
        self._drive(_safety_scheme(kind), rows)

    def test_batch_matches_scalar_state(self, kind):
        """access_batch leaves the scheme in the scalar-identical state."""
        rng = np.random.default_rng(7)
        rows = rng.integers(0, N_ROWS, size=600)
        a = _safety_scheme(kind)
        b = _safety_scheme(kind)
        scalar_cmds = []
        for row in rows.tolist():
            scalar_cmds.extend(a.access(row))
        batch_cmds = [
            cmd for _, cmds in b.access_batch(rows) for cmd in cmds
        ]
        if kind != "pra":  # PRA instances draw from independent TRNGs
            assert scalar_cmds == batch_cmds
        assert a.stats.activations == b.stats.activations == len(rows)
