"""Job-table lifecycle tests: submit → running → done/failed → GC,
plus in-flight content-hash dedup via the shared-work registry."""

import pytest

from repro.experiments import SharedWorkRegistry
from repro.server import EventHub
from repro.server.jobs import JOB_STATES, JobTable


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def table():
    clock = FakeClock()
    t = JobTable(EventHub(), clock=clock, max_jobs=4, ttl_s=100.0)
    t.clock = clock  # test handle
    return t


HASH = "a" * 16


class TestSharedWorkRegistry:
    def test_first_claim_owns(self):
        reg = SharedWorkRegistry()
        ticket, owner = reg.claim(HASH, "t1")
        assert ticket == "t1" and owner

    def test_second_claim_attaches(self):
        reg = SharedWorkRegistry()
        reg.claim(HASH, "t1")
        ticket, owner = reg.claim(HASH, "t2")
        assert ticket == "t1" and not owner
        assert reg.shared == 1

    def test_release_frees_the_key(self):
        reg = SharedWorkRegistry()
        reg.claim(HASH, "t1")
        reg.release(HASH, "t1")
        _ticket, owner = reg.claim(HASH, "t3")
        assert owner

    def test_release_requires_owner_ticket(self):
        reg = SharedWorkRegistry()
        reg.claim(HASH, "t1")
        reg.release(HASH, "not-the-owner")  # ignored
        _ticket, owner = reg.claim(HASH, "t2")
        assert not owner


class TestLifecycle:
    def test_full_lifecycle_stamps(self, table):
        job, owner = table.submit("run", HASH, 1)
        assert owner and job.status == "queued"
        table.clock.now = 1.0
        table.mark_running(job.id)
        assert table.get(job.id).status == "running"
        table.clock.now = 3.5
        table.mark_done(job.id, result=None)
        final = table.get(job.id)
        assert final.status == "done" and final.finished
        doc = final.to_dict(include_results=False)
        assert doc["queued_s"] == 1.0
        assert doc["elapsed_s"] == 2.5

    def test_failure_records_error(self, table):
        job, _ = table.submit("run", HASH, 1)
        table.mark_running(job.id)
        table.mark_failed(job.id, "ValueError: boom")
        final = table.get(job.id)
        assert final.status == "failed"
        assert final.error == "ValueError: boom"
        assert final.to_dict()["error"] == "ValueError: boom"

    def test_states_constant_matches_counts_keys(self, table):
        assert tuple(table.counts()) == JOB_STATES

    def test_job_ids_embed_the_content_hash(self, table):
        job, _ = table.submit("run", HASH, 1)
        assert job.id.endswith(HASH[:8])


class TestDedup:
    def test_concurrent_identical_submissions_share_one_job(self, table):
        first, owner1 = table.submit("run", HASH, 1)
        second, owner2 = table.submit("run", HASH, 1)
        assert owner1 and not owner2
        assert second is first
        assert first.attached == 1

    def test_finished_hash_starts_a_fresh_job(self, table):
        first, _ = table.submit("run", HASH, 1)
        table.mark_running(first.id)
        table.mark_done(first.id, result=None)
        second, owner = table.submit("run", HASH, 1)
        assert owner and second.id != first.id

    def test_failed_hash_starts_a_fresh_job(self, table):
        # A failure must not wedge the hash: retries get a new attempt.
        first, _ = table.submit("run", HASH, 1)
        table.mark_running(first.id)
        table.mark_failed(first.id, "boom")
        second, owner = table.submit("run", HASH, 1)
        assert owner and second.id != first.id

    def test_distinct_hashes_do_not_dedup(self, table):
        a, owner_a = table.submit("run", "b" * 16, 1)
        b, owner_b = table.submit("run", "c" * 16, 1)
        assert owner_a and owner_b and a.id != b.id

    def test_cache_served_job_is_born_done(self, table):
        job = table.add_finished("run", HASH, 1, result=None)
        assert job.status == "done" and job.cached
        assert job.finished_s is not None
        # Born-terminal jobs never claim the hash, so a live submission
        # of the same hash still gets ownership.
        _, owner = table.submit("run", HASH, 1)
        assert owner


class TestGC:
    def test_ttl_expires_finished_jobs_only(self, table):
        done, _ = table.submit("run", "d" * 16, 1)
        table.mark_running(done.id)
        table.mark_done(done.id, result=None)
        live, _ = table.submit("run", "e" * 16, 1)
        table.clock.now = 500.0  # past ttl_s=100
        evicted = table.gc()
        assert evicted == [done.id]
        assert table.get(done.id) is None
        assert table.get(live.id) is not None  # live never evicted

    def test_overflow_evicts_oldest_finished_first(self, table):
        ids = []
        for i in range(6):  # max_jobs=4
            job, _ = table.submit("run", f"{i:x}" * 16, 1)
            table.mark_running(job.id)
            table.clock.now = float(i)
            table.mark_done(job.id, result=None)
            ids.append(job.id)
        evicted = table.gc()
        assert evicted == ids[:2]  # the two oldest-finished
        assert len(table.jobs()) == 4

    def test_gc_never_evicts_running_overflow(self, table):
        for i in range(6):
            table.submit("run", f"{i:x}" * 16, 1)  # all queued forever
        assert table.gc() == []
        assert len(table.jobs()) == 6
